// Lightweight logging and invariant-checking macros.
//
// BW_CHECK* abort on violation in all build modes: they guard structural
// invariants (page bounds, tree balance) whose violation would otherwise
// corrupt downstream results silently. BW_DCHECK* compile out in NDEBUG.

#ifndef BLOBWORLD_UTIL_LOGGING_H_
#define BLOBWORLD_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bw::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

}  // namespace bw::internal

#define BW_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::bw::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                               \
  } while (0)

#define BW_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream _bw_oss;                                      \
      _bw_oss << "(" << (msg) << ")";                                  \
      ::bw::internal::CheckFailed(__FILE__, __LINE__, #expr,           \
                                  _bw_oss.str());                      \
    }                                                                  \
  } while (0)

#define BW_CHECK_OP(op, a, b)                                          \
  do {                                                                 \
    auto _bw_a = (a);                                                  \
    auto _bw_b = (b);                                                  \
    if (!(_bw_a op _bw_b)) {                                           \
      std::ostringstream _bw_oss;                                      \
      _bw_oss << "(" << _bw_a << " vs " << _bw_b << ")";               \
      ::bw::internal::CheckFailed(__FILE__, __LINE__,                  \
                                  #a " " #op " " #b, _bw_oss.str());   \
    }                                                                  \
  } while (0)

#define BW_CHECK_EQ(a, b) BW_CHECK_OP(==, a, b)
#define BW_CHECK_NE(a, b) BW_CHECK_OP(!=, a, b)
#define BW_CHECK_LT(a, b) BW_CHECK_OP(<, a, b)
#define BW_CHECK_LE(a, b) BW_CHECK_OP(<=, a, b)
#define BW_CHECK_GT(a, b) BW_CHECK_OP(>, a, b)
#define BW_CHECK_GE(a, b) BW_CHECK_OP(>=, a, b)

// Checks that a bw::Status expression is OK.
#define BW_CHECK_OK(expr)                                                \
  do {                                                                   \
    ::bw::Status _bw_st = (expr);                                        \
    BW_CHECK_MSG(_bw_st.ok(), _bw_st.ToString());                        \
  } while (0)

#ifdef NDEBUG
#define BW_DCHECK(expr) \
  do {                  \
  } while (0)
#define BW_DCHECK_EQ(a, b) BW_DCHECK((a) == (b))
#define BW_DCHECK_LE(a, b) BW_DCHECK((a) <= (b))
#define BW_DCHECK_LT(a, b) BW_DCHECK((a) < (b))
#else
#define BW_DCHECK(expr) BW_CHECK(expr)
#define BW_DCHECK_EQ(a, b) BW_CHECK_EQ(a, b)
#define BW_DCHECK_LE(a, b) BW_CHECK_LE(a, b)
#define BW_DCHECK_LT(a, b) BW_CHECK_LT(a, b)
#endif

#endif  // BLOBWORLD_UTIL_LOGGING_H_
