#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace bw {

namespace {

// Canonical spelling used for registry keys: underscores only. Both
// registration and parsing funnel through this, so a binary that
// registers "queue-depth" and one that registers "queue_depth" expose
// the identical flag.
std::string Canonical(const std::string& name) {
  std::string canonical = name;
  for (char& c : canonical) {
    if (c == '-') c = '_';
  }
  return canonical;
}

}  // namespace

int64_t* Flags::AddInt64(const std::string& name, int64_t default_value,
                         const std::string& help) {
  Entry& e = entries_[Canonical(name)];
  e.type = Type::kInt64;
  e.help = help;
  e.int_value = default_value;
  return &e.int_value;
}

double* Flags::AddDouble(const std::string& name, double default_value,
                         const std::string& help) {
  Entry& e = entries_[Canonical(name)];
  e.type = Type::kDouble;
  e.help = help;
  e.double_value = default_value;
  return &e.double_value;
}

bool* Flags::AddBool(const std::string& name, bool default_value,
                     const std::string& help) {
  Entry& e = entries_[Canonical(name)];
  e.type = Type::kBool;
  e.help = help;
  e.bool_value = default_value;
  return &e.bool_value;
}

std::string* Flags::AddString(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  Entry& e = entries_[Canonical(name)];
  e.type = Type::kString;
  e.help = help;
  e.string_value = default_value;
  return &e.string_value;
}

Status Flags::SetFromString(Entry& entry, const std::string& value) {
  char* end = nullptr;
  switch (entry.type) {
    case Type::kInt64: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad integer value '" + value + "'");
      }
      entry.int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double value '" + value + "'");
      }
      entry.double_value = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        entry.bool_value = true;
      } else if (value == "false" || value == "0") {
        entry.bool_value = false;
      } else {
        return Status::InvalidArgument("bad bool value '" + value + "'");
      }
      return Status::OK();
    }
    case Type::kString:
      entry.string_value = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", Usage().c_str());
      return Status::NotFound("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument '" +
                                     arg + "'");
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    // Accept --queue-depth as a spelling of --queue_depth: names are
    // canonicalized to underscores on both registration and parse.
    name = Canonical(name);

    // Boolean negation: --no-foo / --no_foo.
    bool negated = false;
    if (!has_value && name.rfind("no_", 0) == 0 &&
        entries_.count(name.substr(3)) > 0) {
      name = name.substr(3);
      negated = true;
    }

    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::InvalidArgument("unknown flag '--" + name + "'\n" +
                                     Usage());
    }
    Entry& entry = it->second;

    if (entry.type == Type::kBool && !has_value) {
      entry.bool_value = !negated;
      continue;
    }
    if (negated) {
      return Status::InvalidArgument("--no- prefix only valid for bools");
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag '--" + name +
                                       "' expects a value");
      }
      value = argv[++i];
    }
    BW_RETURN_IF_ERROR(SetFromString(entry, value));
  }
  return Status::OK();
}

std::string Flags::Usage() const {
  std::ostringstream oss;
  oss << "Flags (hyphens and underscores are interchangeable, e.g. "
         "--queue-depth == --queue_depth):\n";
  for (const auto& [name, entry] : entries_) {
    oss << "  --" << name << "  ";
    switch (entry.type) {
      case Type::kInt64:
        oss << "(int, default " << entry.int_value << ")";
        break;
      case Type::kDouble:
        oss << "(double, default " << entry.double_value << ")";
        break;
      case Type::kBool:
        oss << "(bool, default " << (entry.bool_value ? "true" : "false")
            << ")";
        break;
      case Type::kString:
        oss << "(string, default '" << entry.string_value << "')";
        break;
    }
    oss << "  " << entry.help << "\n";
  }
  return oss.str();
}

}  // namespace bw
