// Plain-text table rendering for bench harness output. The bench binaries
// print the same rows/series the paper's tables and figures report; this
// formats them with aligned columns so the output is diffable run-to-run.

#ifndef BLOBWORLD_UTIL_TABLE_PRINTER_H_
#define BLOBWORLD_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace bw {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders header, separator, and all rows with column alignment.
  std::string ToString() const;

  /// Formats a double with the given number of decimal places.
  static std::string Num(double v, int decimals = 2);
  /// Formats an integer count.
  static std::string Count(long long v);
  /// Formats a ratio as a percentage string like "31.4%".
  static std::string Percent(double fraction, int decimals = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bw

#endif  // BLOBWORLD_UTIL_TABLE_PRINTER_H_
