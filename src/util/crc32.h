// CRC-32 (the IEEE 802.3 polynomial, reflected: 0xEDB88320) used for
// every on-disk integrity check in the storage engine: page frames in a
// DiskPageFile, WAL record framing, index snapshot trailers. One shared
// implementation so a checksum written by any layer can be verified by
// any other.

#ifndef BLOBWORLD_UTIL_CRC32_H_
#define BLOBWORLD_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace bw {

/// Extends a running CRC-32 with `n` more bytes. Start a fresh checksum
/// with `crc = 0`; feed chunks in order; the result is independent of
/// how the input was split.
uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC-32 of a buffer.
inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Extend(0, data, n);
}

}  // namespace bw

#endif  // BLOBWORLD_UTIL_CRC32_H_
