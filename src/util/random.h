// Deterministic pseudo-random number generation for reproducible
// experiments. All randomized components of the library (data generators,
// aMAP partition sampling, workload selection) take an explicit Rng so
// that every run of a bench or test is bit-reproducible.

#ifndef BLOBWORLD_UTIL_RANDOM_H_
#define BLOBWORLD_UTIL_RANDOM_H_

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bw {

/// A seedable, thread-safe stream of jitter draws for retry backoff,
/// probe scheduling, and hedge delays. Each component owns its own
/// stream, seeded explicitly (mix in a per-component salt so two
/// components with the same policy seed still draw different
/// schedules), so chaos tests can pin every schedule exactly while a
/// fleet of routers hammering one recovering server desynchronizes
/// without any global clock. Draw k is splitmix64(seed + k·golden):
/// concurrent callers interleave counter values but every draw is a
/// pure function of (seed, k), so the multiset of values is
/// deterministic.
class JitterStream {
 public:
  explicit JitterStream(uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : seed_(seed) {}

  /// Restarts the stream from a new seed (draw counter resets too).
  void Reseed(uint64_t seed) {
    seed_ = seed;
    counter_.store(0, std::memory_order_relaxed);
  }

  /// Uniform 64-bit draw.
  uint64_t Next() {
    const uint64_t k = counter_.fetch_add(1, std::memory_order_relaxed);
    uint64_t z = seed_ + (k + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); 0 when n == 0 (callers pass computed spans).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform double in [0, 1).
  double NextUnit() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t seed_;
  std::atomic<uint64_t> counter_{0};
};

/// xoshiro256**: small, fast, high-quality, reproducible across platforms
/// (unlike std::mt19937's distribution wrappers, whose outputs are not
/// specified identically across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    for (auto& s : state_) {
      // splitmix64 step
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) {
    assert(n > 0);
    // Debiased modulo via rejection on the tail.
    const uint64_t threshold = -n % n;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (no cached second value, for
  /// reproducibility simplicity).
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir sampling); result is
  /// in ascending order of selection position, not sorted numerically.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    assert(k <= n);
    std::vector<size_t> reservoir(k);
    for (size_t i = 0; i < k; ++i) reservoir[i] = i;
    for (size_t i = k; i < n; ++i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      if (j < k) reservoir[j] = i;
    }
    return reservoir;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace bw

#endif  // BLOBWORLD_UTIL_RANDOM_H_
