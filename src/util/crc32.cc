#include "util/crc32.h"

namespace bw {

namespace {

struct Crc32Table {
  uint32_t entries[256];

  constexpr Crc32Table() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32Table kTable;

}  // namespace

uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.entries[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace bw
