#include "util/status.h"

namespace bw {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bw
