#include "util/status.h"

namespace bw {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

uint16_t StatusCodeToWire(StatusCode code) {
  // Frozen registry: append-only, never renumber. 0..63 are reserved
  // for StatusCode values; protocol layers start at 64.
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kCorruption:
      return 3;
    case StatusCode::kNoSpace:
      return 4;
    case StatusCode::kNotSupported:
      return 5;
    case StatusCode::kInternal:
      return 6;
    case StatusCode::kIoError:
      return 7;
    case StatusCode::kUnavailable:
      return 8;
    case StatusCode::kDataLoss:
      return 9;
    case StatusCode::kAborted:
      return 10;
    case StatusCode::kResourceExhausted:
      return 11;
  }
  return 6;  // kInternal
}

StatusCode StatusCodeFromWire(uint16_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kCorruption;
    case 4:
      return StatusCode::kNoSpace;
    case 5:
      return StatusCode::kNotSupported;
    case 6:
      return StatusCode::kInternal;
    case 7:
      return StatusCode::kIoError;
    case 8:
      return StatusCode::kUnavailable;
    case 9:
      return StatusCode::kDataLoss;
    case 10:
      return StatusCode::kAborted;
    case 11:
      return StatusCode::kResourceExhausted;
    default:
      return StatusCode::kInternal;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bw
