// Lock-cheap latency histogram for the concurrent query service: fixed
// log-spaced buckets with relaxed atomic counters, so many worker
// threads can record latencies without contending on a mutex, and a
// monitoring thread can read p50/p95/p99 concurrently. Percentiles are
// exact to within one bucket (buckets are ~1/8 apart in log scale, i.e.
// <= ~12.5% relative error), which is plenty for tail-latency tables.

#ifndef BLOBWORLD_UTIL_HISTOGRAM_H_
#define BLOBWORLD_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace bw {

/// Concurrent histogram of non-negative values (microseconds by
/// convention). Record() is wait-free (two relaxed atomic adds); reads
/// (Percentile, Mean, Count) may run concurrently with writers and see a
/// slightly stale but internally consistent-enough view — fine for
/// monitoring, not for exact accounting.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample. Values are clamped to the top bucket beyond
  /// ~2^32 us (~1.2 hours), far outside any query latency.
  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  double Mean() const {
    const uint64_t n = Count();
    if (n == 0) return 0.0;
    return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
           static_cast<double>(n);
  }

  /// Value at quantile `q` in [0, 1] (0.5 = median). Returns the upper
  /// bound of the bucket containing the q-th sample; 0 when empty.
  uint64_t Percentile(double q) const {
    const uint64_t n = Count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target sample, 1-based.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen >= rank) return BucketUpperBound(b);
    }
    return BucketUpperBound(kNumBuckets - 1);
  }

  /// One coherent-enough read of the monitoring percentiles, p99.9
  /// included (tail work needs tail visibility: a hedge or breaker
  /// decision made on p99 alone is blind to the 1-in-1000 stall it
  /// exists to fix).
  struct Snapshot {
    uint64_t count = 0;
    double mean = 0.0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
  };

  Snapshot TakeSnapshot() const {
    Snapshot snap;
    snap.count = Count();
    snap.mean = Mean();
    snap.p50 = Percentile(0.50);
    snap.p95 = Percentile(0.95);
    snap.p99 = Percentile(0.99);
    snap.p999 = Percentile(0.999);
    return snap;
  }

  /// Zeroes all counters (not atomic with respect to in-flight Records;
  /// call when writers are quiescent or accept a few lost samples).
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  // Bucketing: values 0..kLinearMax are exact (one bucket per value);
  // above that, each power of two is split into kSubBuckets linear
  // sub-buckets (HdrHistogram-style), giving bounded relative error.
  static constexpr uint64_t kSubBuckets = 8;       // resolution ~12.5%.
  static constexpr uint64_t kLinearMax = 16;       // exact small values.
  static constexpr size_t kLogGroups = 29;         // up to ~2^33.
  static constexpr size_t kNumBuckets =
      kLinearMax + 1 + kLogGroups * kSubBuckets;

  static size_t BucketFor(uint64_t v) {
    if (v <= kLinearMax) return static_cast<size_t>(v);
    // Group g covers [2^(g+4), 2^(g+5)) split into kSubBuckets ranges.
    size_t bit = 63 - static_cast<size_t>(__builtin_clzll(v));
    size_t group = bit - 4;  // v > 16 implies bit >= 4.
    if (group >= kLogGroups) {
      group = kLogGroups - 1;
      return kLinearMax + 1 + group * kSubBuckets + (kSubBuckets - 1);
    }
    const uint64_t base = uint64_t{1} << bit;
    const uint64_t sub = (v - base) / ((base + kSubBuckets - 1) / kSubBuckets);
    return kLinearMax + 1 + group * kSubBuckets +
           static_cast<size_t>(sub < kSubBuckets ? sub : kSubBuckets - 1);
  }

  static uint64_t BucketUpperBound(size_t b) {
    if (b <= kLinearMax) return static_cast<uint64_t>(b);
    const size_t rel = b - kLinearMax - 1;
    const size_t group = rel / kSubBuckets;
    const size_t sub = rel % kSubBuckets;
    const uint64_t base = uint64_t{1} << (group + 4);
    const uint64_t width = (base + kSubBuckets - 1) / kSubBuckets;
    return base + width * (sub + 1);
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace bw

#endif  // BLOBWORLD_UTIL_HISTOGRAM_H_
