// Status and Result<T>: exception-free error handling in the style of
// RocksDB's Status / Arrow's Result. All fallible public APIs in this
// project return one of these two types.

#ifndef BLOBWORLD_UTIL_STATUS_H_
#define BLOBWORLD_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace bw {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kNoSpace,
  kNotSupported,
  kInternal,
  kIoError,
  kUnavailable,
  kDataLoss,
  kAborted,
  kResourceExhausted,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// Stable on-the-wire numbering for StatusCode, used by the network
/// protocol (src/net/wire.h) and any other surface that persists or
/// transmits status codes between processes. The enum declaration order
/// above is NOT a wire contract — this mapping is. Codes 0..63 are
/// reserved for StatusCode; 64+ belong to protocol layers (the net tier
/// defines its own verdicts there, e.g. quota-exceeded).
uint16_t StatusCodeToWire(StatusCode code);

/// Inverse of StatusCodeToWire. Unknown wire values (a newer peer, a
/// corrupted frame that passed its CRC) map to kInternal rather than
/// asserting, so a response can always be surfaced to the caller.
StatusCode StatusCodeFromWire(uint16_t wire);

/// True for codes that describe a transient condition where the same
/// operation, retried later (possibly after backoff or repair), may
/// succeed: kUnavailable (admission control, quarantined page, transient
/// I/O fault). Everything else — including kAborted, which means the
/// caller's own budget expired, and kResourceExhausted, which means a
/// finite resource (disk space, a bounded write queue) ran out — is
/// permanent from the retrier's point of view. kResourceExhausted is
/// deliberately not retryable at the read-path/retry-loop layer: backoff
/// cannot create disk space, so the in-line retry loop must surface it
/// immediately. It is *sheddable at admission* instead — the write path
/// rejects new work with it while degraded, and the client may resubmit
/// once the operator (or the disk-space watchdog clearing) restores
/// capacity.
constexpr bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// Success-or-error result of an operation, carrying an error message on
/// failure. Cheap to copy on the success path (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(StatusCode::kNoSpace, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Transient overload: the operation was refused by admission control
  /// (e.g. a full query queue) and may be retried later.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Durable state failed an integrity check (checksum mismatch on a
  /// page, WAL record, or snapshot): the bytes on disk are not the bytes
  /// that were written, and serving them would silently return wrong
  /// results. Unlike kCorruption (malformed logical structure), this is
  /// the storage engine's "detected bit rot / torn write" verdict.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// The operation was deliberately cut short by the caller's own limits
  /// (deadline watchdog, cancellation) rather than by the system being
  /// busy or broken. Retrying with the same limits will fail the same
  /// way, so kAborted is not retryable; the caller must raise its budget
  /// first.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// A finite system resource ran out: the disk is full (ENOSPC), a
  /// quota was exceeded, or the bounded write queue is shedding load.
  /// Unlike kNoSpace (a logical "this page/node has no room" condition
  /// the caller handles structurally, e.g. by splitting), this is an
  /// operational verdict about the machine. Not retryable by in-line
  /// retry loops — backoff does not free disk space — but sheddable at
  /// admission: submitters may resubmit after capacity is restored (the
  /// watchdog clears, segments are archived, an operator intervenes).
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

  /// IsRetryable(code()) — see the free function above.
  bool IsRetryable() const { return ::bw::IsRetryable(code_); }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Access to the value when the
/// result holds an error is a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, enabling
  /// `return value;` and `return Status::...;` in the same function.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

// Propagates a non-OK Status from an expression, RocksDB-style.
#define BW_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::bw::Status _bw_status = (expr);            \
    if (!_bw_status.ok()) return _bw_status;     \
  } while (0)

// Evaluates a Result expression; on error returns its Status, otherwise
// assigns the value to `lhs` (which must be declared by the caller, e.g.
// `BW_ASSIGN_OR_RETURN(auto x, MakeX());`).
#define BW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()
#define BW_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define BW_ASSIGN_OR_RETURN_NAME(a, b) BW_ASSIGN_OR_RETURN_CONCAT(a, b)
#define BW_ASSIGN_OR_RETURN(lhs, expr) \
  BW_ASSIGN_OR_RETURN_IMPL(BW_ASSIGN_OR_RETURN_NAME(_bw_result_, __LINE__), \
                           lhs, expr)

/// Status overload of the code classifier, for call sites holding a
/// Status: `if (IsRetryable(status)) backoff_and_retry();`.
inline bool IsRetryable(const Status& status) {
  return IsRetryable(status.code());
}

}  // namespace bw

#endif  // BLOBWORLD_UTIL_STATUS_H_
