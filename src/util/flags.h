// Minimal command-line flag parsing for bench and example binaries.
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms; hyphens and underscores in flag names are
// interchangeable (`--queue-depth` == `--queue_depth`). Unknown flags
// are reported as errors so that typos in experiment sweeps do not
// silently run the default configuration.

#ifndef BLOBWORLD_UTIL_FLAGS_H_
#define BLOBWORLD_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace bw {

/// Registry of typed flags for one binary. Typical use:
///
///   bw::Flags flags;
///   int64_t* blobs = flags.AddInt64("blobs", 20000, "number of blobs");
///   BW_CHECK_OK(flags.Parse(argc, argv));
class Flags {
 public:
  Flags() = default;
  Flags(const Flags&) = delete;
  Flags& operator=(const Flags&) = delete;

  /// Registers a flag; the returned pointer stays valid for the lifetime
  /// of this Flags object and holds the parsed (or default) value.
  int64_t* AddInt64(const std::string& name, int64_t default_value,
                    const std::string& help);
  double* AddDouble(const std::string& name, double default_value,
                    const std::string& help);
  bool* AddBool(const std::string& name, bool default_value,
                const std::string& help);
  std::string* AddString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown flags or malformed
  /// values. `--help` prints usage and returns NotFound (callers should
  /// exit 0 on that code).
  Status Parse(int argc, char** argv);

  /// One usage line per registered flag.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Entry {
    Type type;
    std::string help;
    // Owned storage; exactly one is used per Type.
    int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
  };

  Status SetFromString(Entry& entry, const std::string& value);

  std::map<std::string, Entry> entries_;
};

}  // namespace bw

#endif  // BLOBWORLD_UTIL_FLAGS_H_
