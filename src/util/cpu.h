// Runtime ISA dispatch for the hand-written SIMD kernel variants.
//
// The build compiles AVX2/FMA kernel translation units per-file with
// -mavx2 -mfma (CMake option BW_ENABLE_AVX2, default auto-detect) and
// defines BW_HAVE_AVX2 when they are present; this header decides at
// runtime whether those variants actually run. Dispatch resolves once
// per process from, in priority order:
//
//   1. the BW_KERNEL_ISA environment variable ("scalar", "avx2", or
//      "auto"; anything else is ignored),
//   2. CPU support (AVX2 and FMA must both be present),
//   3. the build (no BW_HAVE_AVX2 => always scalar).
//
// Tests pin a specific path with ScopedKernelIsa; the scalar path is the
// bit-identity reference (see am/bp_kernels.h), the AVX2 path carries a
// ULP-bounded contract for the FMA-fused kernels and remains
// bit-identical for the compare-only kernels (covering scans, clamps).

#ifndef BLOBWORLD_UTIL_CPU_H_
#define BLOBWORLD_UTIL_CPU_H_

namespace bw::util {

enum class KernelIsa {
  kScalar,
  kAvx2,
};

/// Read-prefetch hint into all cache levels; no-op where unsupported.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// True when the host CPU executes AVX2 and FMA (independent of whether
/// this build contains the variants).
bool CpuSupportsAvx2Fma();

/// The ISA the SIMD-dispatched kernels will use right now (override
/// first, then the process-wide resolution described above).
KernelIsa ActiveKernelIsa();

/// Scoped dispatch override for tests: forces every SIMD-dispatched
/// kernel onto `isa` until destruction, then restores the previous
/// state. Forcing kAvx2 in a build or on a host without AVX2+FMA is a
/// no-op (dispatch stays scalar) so parity suites can run everywhere.
/// Not meant to be raced against concurrent kernel calls; use from
/// single-threaded test setup.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(KernelIsa isa);
  ~ScopedKernelIsa();
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;

 private:
  int previous_;
};

}  // namespace bw::util

#endif  // BLOBWORLD_UTIL_CPU_H_
