#include "util/cpu.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bw::util {

namespace {

// -1 = no override; otherwise a KernelIsa value forced by ScopedKernelIsa.
std::atomic<int> g_override{-1};

bool HostHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelIsa ResolveOnce() {
#if defined(BW_HAVE_AVX2)
  const char* env = std::getenv("BW_KERNEL_ISA");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return KernelIsa::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return HostHasAvx2Fma() ? KernelIsa::kAvx2 : KernelIsa::kScalar;
    }
    // "auto" or anything unrecognized falls through to detection.
  }
  return HostHasAvx2Fma() ? KernelIsa::kAvx2 : KernelIsa::kScalar;
#else
  return KernelIsa::kScalar;
#endif
}

KernelIsa Resolved() {
  static const KernelIsa isa = ResolveOnce();
  return isa;
}

}  // namespace

bool CpuSupportsAvx2Fma() { return HostHasAvx2Fma(); }

KernelIsa ActiveKernelIsa() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const KernelIsa isa = static_cast<KernelIsa>(forced);
#if defined(BW_HAVE_AVX2)
    if (isa == KernelIsa::kAvx2 && !HostHasAvx2Fma()) return KernelIsa::kScalar;
    return isa;
#else
    (void)isa;
    return KernelIsa::kScalar;
#endif
  }
  return Resolved();
}

ScopedKernelIsa::ScopedKernelIsa(KernelIsa isa)
    : previous_(g_override.exchange(static_cast<int>(isa),
                                    std::memory_order_relaxed)) {}

ScopedKernelIsa::~ScopedKernelIsa() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace bw::util
