#include "net/backend.h"

#include "gist/extension.h"
#include "service/snapshot_export.h"

namespace bw::net {

size_t QueryServiceBackend::dim() const {
  return service_->tree().extension().dim();
}

uint32_t QueryServiceBackend::features() const {
  uint32_t features = kFeatureStreaming | kFeatureCatchup;
  if (service_->Snapshot().writes_enabled) features |= kFeatureWrites;
  return features;
}

Result<service::QueryResponse> QueryServiceBackend::Knn(
    const geom::Vec& query, const service::StreamOptions& stream) {
  BW_ASSIGN_OR_RETURN(service::QueryService::ResponseFuture future,
                      service_->SubmitStream(query, stream));
  return future.get();
}

Result<service::QueryResponse> QueryServiceBackend::Range(
    const geom::Vec& query, double radius, uint32_t deadline_us) {
  if (deadline_us == 0) {
    BW_ASSIGN_OR_RETURN(service::QueryService::ResponseFuture future,
                        service_->SubmitRange(query, radius));
    return future.get();
  }
  // Range-with-deadline rides the stream path: a radius budget returns
  // exactly the in-range set, and only streams carry the deadline/
  // I/O-watchdog machinery.
  service::StreamOptions stream;
  stream.budget_radius = radius;
  stream.max_results = 0;
  stream.deadline_us = static_cast<double>(deadline_us);
  BW_ASSIGN_OR_RETURN(service::QueryService::ResponseFuture future,
                      service_->SubmitStream(query, stream));
  return future.get();
}

Result<service::MutationOutcome> QueryServiceBackend::Insert(
    const geom::Vec& point, uint64_t rid) {
  BW_ASSIGN_OR_RETURN(service::QueryService::MutationFuture future,
                      service_->SubmitInsert(point, rid));
  return future.get();
}

Result<service::MutationOutcome> QueryServiceBackend::Remove(
    const geom::Vec& point, uint64_t rid) {
  BW_ASSIGN_OR_RETURN(service::QueryService::MutationFuture future,
                      service_->SubmitDelete(point, rid));
  return future.get();
}

std::vector<std::pair<std::string, double>> QueryServiceBackend::StatsFields()
    const {
  return service::ExportSnapshotFields(service_->Snapshot());
}

Result<service::CatchupPosition> QueryServiceBackend::CatchupPosition()
    const {
  return service_->Position();
}

Result<service::WalTail> QueryServiceBackend::ReadWalTail(uint64_t after_tag,
                                                          size_t max_batches,
                                                          size_t max_bytes) {
  return service_->ReadWalTail(after_tag, max_batches, max_bytes);
}

Status QueryServiceBackend::ApplyWalBatch(
    const storage::ShippedBatch& batch) {
  return service_->ApplyWalBatch(batch);
}

Result<service::SnapshotChunk> QueryServiceBackend::ReadSnapshotChunk(
    uint32_t start_page, size_t max_bytes) {
  return service_->ReadSnapshotChunk(start_page, max_bytes);
}

Status QueryServiceBackend::ApplySnapshotChunk(
    const service::SnapshotChunk& chunk, bool first, bool last) {
  return service_->ApplySnapshotChunk(chunk, first, last);
}

Result<service::TreeSum> QueryServiceBackend::TreeChecksum() const {
  return service_->TreeChecksum();
}

HealthReply QueryServiceBackend::Health() const {
  const service::ServiceSnapshot snap = service_->Snapshot();
  HealthReply reply;
  reply.write_state = static_cast<uint8_t>(snap.write_state);
  reply.writes_enabled = snap.writes_enabled;
  reply.write_degraded = snap.write_degraded;
  reply.generation = snap.generation;
  reply.completed = snap.completed;
  reply.pages_quarantined = snap.store_pages_quarantined;
  return reply;
}

}  // namespace bw::net
