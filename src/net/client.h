// bw::net::Client — the client half of the wire protocol: a blocking
// TCP connection with request pipelining. Submit*() sends a frame and
// returns immediately with the request id; Await*() pumps the socket
// until that request's terminal frame arrives, parking frames for other
// in-flight ids so awaits may happen in any order. The synchronous
// wrappers (Knn, Range, Insert, ...) are Submit+Await in one call.
//
// Not thread-safe: one Client per thread (open several connections for
// concurrent load — that is what the server's accept loop is for).
// A framing error or socket failure poisons the client permanently;
// every later call returns the same error. Reconnect by constructing a
// new Client.

#ifndef BLOBWORLD_NET_CLIENT_H_
#define BLOBWORLD_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/connection.h"
#include "net/wire.h"
#include "util/status.h"

namespace bw::net {

struct ClientOptions {
  /// Socket-level receive/send timeout; an await past this without any
  /// bytes from the server fails with IoError.
  std::chrono::milliseconds io_timeout{30000};
  uint32_t max_payload_bytes = kMaxPayloadBytes;
  /// Run the kHello version/feature handshake inside Connect(). On a
  /// major-version mismatch Connect fails with NotSupported (the
  /// server's version is in the message) — no mis-decoded frames, ever.
  /// Off restores the pre-handshake wire exchange byte for byte.
  bool handshake = true;
  /// Self-description sent in the hello (surfaced in server logs).
  std::string peer = "bwclient";
  /// Feature bits to claim in the hello (kFeature* in wire.h).
  uint32_t features = kFeatureStreaming;
};

/// Per-query limits, mirrored into the request frame.
struct QueryLimits {
  /// Execution budget in microseconds (frame header field, propagated
  /// into the server's stream deadline / I/O watchdog); 0 = none.
  uint32_t deadline_us = 0;
  /// k-NN only: stop once everything within this radius was returned.
  double budget_radius = std::numeric_limits<double>::infinity();
  /// Results per streamed batch frame (0 = server default).
  uint32_t batch_size = 0;
};

/// Outcome of a k-NN/range query over the wire.
struct QueryReply {
  std::vector<gist::Neighbor> neighbors;
  uint16_t wire_status = 0;  // raw protocol verdict (distinct shed codes).
  Status status;             // WireStatusToStatus(wire_status, message).
  bool degraded = false;     // answer is a genuine subset (fault budget).
  bool truncated = false;    // deadline cut the stream off.
  uint64_t pages_skipped = 0;
  double server_latency_us = 0;

  bool ok() const { return wire_status == 0; }
};

/// Outcome of an insert/delete over the wire.
struct MutateReply {
  uint16_t wire_status = 0;
  Status status;
  uint64_t tag = 0;  // durable commit tag (ack implies recoverable).

  bool ok() const { return wire_status == 0; }
};

class Client {
 public:
  /// Connects to `host:port` (IPv4 dotted quad or "localhost").
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      ClientOptions options = ClientOptions());

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Pipelined interface ----------------------------------------------
  // Submit returns the request id; Await blocks until that id's
  // terminal frame. Ids may be awaited in any order.

  Result<uint64_t> SubmitKnn(const geom::Vec& query, size_t k,
                             QueryLimits limits = QueryLimits());
  Result<uint64_t> SubmitRange(const geom::Vec& query, double radius,
                               uint32_t deadline_us = 0);
  Result<uint64_t> SubmitInsert(const geom::Vec& point, uint64_t rid);
  Result<uint64_t> SubmitDelete(const geom::Vec& point, uint64_t rid);
  Result<uint64_t> SubmitStats();
  Result<uint64_t> SubmitHealth();

  // --- Replica catch-up (kFeatureCatchup; wire 1.2) ---------------------
  // Used by the shard router's catch-up driver: read a lagging
  // replica's position, ship it the healthy sibling's WAL suffix (or a
  // full-store snapshot when the suffix was retired), and compare
  // checksums before readmission. Every reply is a single terminal
  // frame. Servers predating 1.2 answer NotSupported.

  Result<uint64_t> SubmitCatchupPos();
  Result<uint64_t> SubmitWalPull(uint64_t after_tag, uint32_t max_batches,
                                 uint32_t max_bytes);
  Result<uint64_t> SubmitWalApply(const storage::ShippedBatch& batch);
  Result<uint64_t> SubmitSnapshotPull(uint32_t start_page,
                                      uint32_t max_bytes);
  Result<uint64_t> SubmitSnapshotApply(const service::SnapshotChunk& chunk,
                                       bool first, bool last);
  Result<uint64_t> SubmitTreeSum();

  /// Await a query (kKnn/kRange) reply. The Result is an error only for
  /// transport-level failures; server-side verdicts (quota, shedding,
  /// bad request) come back as a QueryReply with wire_status != 0.
  Result<QueryReply> AwaitQuery(uint64_t request_id);
  Result<MutateReply> AwaitMutation(uint64_t request_id);
  Result<std::vector<std::pair<std::string, double>>> AwaitStats(
      uint64_t request_id);
  Result<HealthReply> AwaitHealth(uint64_t request_id);

  Result<service::CatchupPosition> AwaitCatchupPos(uint64_t request_id);
  Result<service::WalTail> AwaitWalTail(uint64_t request_id);
  /// Terminal ack for kWalApply and kSnapshotApply alike.
  Result<CatchupAck> AwaitCatchupAck(uint64_t request_id);
  Result<service::SnapshotChunk> AwaitSnapshotChunk(uint64_t request_id);
  Result<service::TreeSum> AwaitTreeSum(uint64_t request_id);

  // --- Incremental streaming ---------------------------------------------
  // The shard router's remote frontier: consume a query's results one
  // at a time as batch frames arrive, instead of waiting for the
  // terminal frame. NextResult returns the next unconsumed neighbor
  // (pumping the socket only when none is buffered), or nullopt once
  // the stream's terminal frame arrived and every result was consumed.
  // FinishQuery then (or at any point: it drains the rest) retires the
  // request and returns the terminal accounting; its reply carries only
  // the *unconsumed* neighbors.

  Result<std::optional<gist::Neighbor>> NextResult(uint64_t request_id);
  Result<QueryReply> FinishQuery(uint64_t request_id);

  // --- Synchronous wrappers ---------------------------------------------

  Result<QueryReply> Knn(const geom::Vec& query, size_t k,
                         QueryLimits limits = QueryLimits());
  Result<QueryReply> Range(const geom::Vec& query, double radius,
                           uint32_t deadline_us = 0);
  Result<MutateReply> Insert(const geom::Vec& point, uint64_t rid);
  Result<MutateReply> Remove(const geom::Vec& point, uint64_t rid);
  Result<std::vector<std::pair<std::string, double>>> Stats();
  Result<HealthReply> Health();

  Result<service::CatchupPosition> CatchupPos();
  Result<service::WalTail> PullWal(uint64_t after_tag, uint32_t max_batches,
                                   uint32_t max_bytes);
  Result<CatchupAck> ApplyWal(const storage::ShippedBatch& batch);
  Result<service::SnapshotChunk> PullSnapshot(uint32_t start_page,
                                              uint32_t max_bytes);
  Result<CatchupAck> ApplySnapshot(const service::SnapshotChunk& chunk,
                                   bool first, bool last);
  Result<service::TreeSum> TreeSum();

  /// The server's side of the handshake (valid when
  /// ClientOptions::handshake ran; a default-constructed reply with
  /// features == 0 otherwise).
  const HelloReply& server_hello() const { return server_hello_; }

  /// True when no request is awaiting its terminal frame: the
  /// connection can be reused for another request stream.
  bool idle() const { return pending_.empty() && broken_.ok(); }

  /// Raw socket fd — tests use this to simulate rude disconnects and
  /// stalled readers.
  int fd() const { return fd_; }

 private:
  Client(int fd, ClientOptions options)
      : fd_(fd), options_(options), parser_(options.max_payload_bytes) {}

  struct Pending {
    bool done = false;
    FrameHeader final_header;   // terminal frame's header.
    std::string final_payload;  // terminal frame's payload.
    std::vector<gist::Neighbor> neighbors;  // accumulated batches.
    size_t consumed = 0;  // NextResult cursor into neighbors.
  };

  Status SendFrame(MsgType type, uint64_t request_id, uint32_t deadline_us,
                   std::string_view payload);
  /// Reads until `request_id` is done, parking other ids' frames.
  Status PumpUntilDone(uint64_t request_id);
  /// One blocking read + parse, routing frames to their pending ids.
  Status PumpOnce();
  Status Handshake();
  Status Poison(Status status);

  int fd_;
  ClientOptions options_;
  FrameParser parser_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Pending> pending_;
  Status broken_;  // non-OK once the connection is poisoned.
  HelloReply server_hello_;
};

}  // namespace bw::net

#endif  // BLOBWORLD_NET_CLIENT_H_
