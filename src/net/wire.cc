#include "net/wire.h"

#include <cmath>
#include <limits>

#include "util/crc32.h"

namespace bw::net {
namespace {

// Little-endian scalar writes, independent of host byte order.
void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace

const char* WireStatusName(uint16_t status) {
  switch (status) {
    case kWireQuotaExceeded:
      return "QuotaExceeded";
    case kWireShuttingDown:
      return "ShuttingDown";
    case kWireBadFrame:
      return "BadFrame";
    case kWireVersionMismatch:
      return "VersionMismatch";
    default:
      return status < 64 ? StatusCodeName(StatusCodeFromWire(status))
                         : "UnknownWireStatus";
  }
}

Status WireStatusToStatus(uint16_t status, const std::string& message) {
  if (status == 0) return Status::OK();
  const std::string text =
      message.empty() ? std::string(WireStatusName(status)) : message;
  switch (status) {
    case kWireQuotaExceeded:
    case kWireShuttingDown:
      return Status::Unavailable(text);
    case kWireBadFrame:
      return Status::DataLoss(text);
    case kWireVersionMismatch:
      // Not retryable: the peer will keep speaking the wrong major.
      return Status::NotSupported(text);
    default:
      break;
  }
  if (status < 64) {
    const StatusCode code = StatusCodeFromWire(status);
    switch (code) {
      case StatusCode::kOk:  // status != 0 but maps to OK: corrupt peer.
        return Status::Internal("non-zero wire status decoded as OK");
      case StatusCode::kInvalidArgument:
        return Status::InvalidArgument(text);
      case StatusCode::kNotFound:
        return Status::NotFound(text);
      case StatusCode::kCorruption:
        return Status::Corruption(text);
      case StatusCode::kNoSpace:
        return Status::NoSpace(text);
      case StatusCode::kNotSupported:
        return Status::NotSupported(text);
      case StatusCode::kInternal:
        return Status::Internal(text);
      case StatusCode::kIoError:
        return Status::IoError(text);
      case StatusCode::kUnavailable:
        return Status::Unavailable(text);
      case StatusCode::kDataLoss:
        return Status::DataLoss(text);
      case StatusCode::kAborted:
        return Status::Aborted(text);
      case StatusCode::kResourceExhausted:
        return Status::ResourceExhausted(text);
    }
  }
  return Status::Internal("unknown wire status " + std::to_string(status) +
                          ": " + text);
}

std::string EncodeFrame(const FrameHeader& header, std::string_view payload) {
  std::string frame;
  frame.resize(kFrameHeaderBytes + payload.size());
  uint8_t* p = reinterpret_cast<uint8_t*>(frame.data());
  PutU32(p + 0, kWireMagic);
  p[4] = static_cast<uint8_t>(header.type);
  p[5] = header.flags;
  PutU16(p + 6, header.status);
  PutU64(p + 8, header.request_id);
  PutU32(p + 16, header.deadline_us);
  PutU32(p + 20, static_cast<uint32_t>(payload.size()));
  PutU32(p + 24,
         payload.empty() ? 0 : Crc32(payload.data(), payload.size()));
  PutU32(p + 28, Crc32(p, 28));
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

HeaderVerdict DecodeFrameHeader(const uint8_t* bytes, uint32_t max_payload,
                                FrameHeader* out) {
  if (GetU32(bytes) != kWireMagic) return HeaderVerdict::kBadMagic;
  if (GetU32(bytes + 28) != Crc32(bytes, 28)) return HeaderVerdict::kBadCrc;
  out->type = static_cast<MsgType>(bytes[4]);
  out->flags = bytes[5];
  out->status = GetU16(bytes + 6);
  out->request_id = GetU64(bytes + 8);
  out->deadline_us = GetU32(bytes + 16);
  out->payload_len = GetU32(bytes + 20);
  out->payload_crc = GetU32(bytes + 24);
  if (out->payload_len > max_payload) return HeaderVerdict::kOversized;
  return HeaderVerdict::kOk;
}

bool PayloadCrcOk(const FrameHeader& header, std::string_view payload) {
  const uint32_t crc =
      payload.empty() ? 0 : Crc32(payload.data(), payload.size());
  return payload.size() == header.payload_len && crc == header.payload_crc;
}

// ---------------------------------------------------------------------------
// PayloadWriter / PayloadReader
// ---------------------------------------------------------------------------

void PayloadWriter::Raw(const void* data, size_t n) {
  // All scalar types come through here; emit little-endian explicitly.
  const uint8_t* src = static_cast<const uint8_t*>(data);
  uint64_t bits = 0;
  std::memcpy(&bits, src, n);  // host order...
  uint8_t tmp[8];
  for (size_t i = 0; i < n; ++i) {
    tmp[i] = static_cast<uint8_t>(bits >> (8 * i));  // ...to LE bytes.
  }
  out_->append(reinterpret_cast<const char*>(tmp), n);
}

void PayloadWriter::String(std::string_view s) {
  const size_t n = std::min<size_t>(s.size(), 0xFFFF);
  U16(static_cast<uint16_t>(n));
  out_->append(s.data(), n);
}

void PayloadWriter::Vec(const geom::Vec& v) {
  U16(static_cast<uint16_t>(v.dim()));
  for (size_t d = 0; d < v.dim(); ++d) F32(v[d]);
}

bool PayloadReader::Take(void* out, size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    std::memset(out, 0, n);
    return false;
  }
  uint64_t bits = 0;
  for (size_t i = 0; i < n; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
  }
  std::memcpy(out, &bits, n);
  pos_ += n;
  return true;
}

uint8_t PayloadReader::U8() {
  uint8_t v = 0;
  Take(&v, 1);
  return v;
}

uint16_t PayloadReader::U16() {
  uint16_t v = 0;
  Take(&v, 2);
  return v;
}

uint32_t PayloadReader::U32() {
  uint32_t v = 0;
  Take(&v, 4);
  return v;
}

uint64_t PayloadReader::U64() {
  uint64_t v = 0;
  Take(&v, 8);
  return v;
}

double PayloadReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

float PayloadReader::F32() {
  uint32_t bits = U32();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

std::string PayloadReader::String() {
  const uint16_t n = U16();
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

geom::Vec PayloadReader::Vec(size_t max_dim) {
  const uint16_t dim = U16();
  if (!ok_ || dim > max_dim || data_.size() - pos_ < size_t{dim} * 4) {
    ok_ = false;
    return geom::Vec();
  }
  geom::Vec v(dim);
  for (size_t d = 0; d < dim; ++d) v[d] = F32();
  return v;
}

// ---------------------------------------------------------------------------
// Request/response payload codecs
// ---------------------------------------------------------------------------

void EncodeKnnRequest(const KnnRequest& req, std::string* out) {
  PayloadWriter w(out);
  w.U32(req.k);
  w.U32(req.batch_size);
  w.F64(req.budget_radius);
  w.Vec(req.query);
}

bool DecodeKnnRequest(std::string_view payload, KnnRequest* out) {
  PayloadReader r(payload);
  out->k = r.U32();
  out->batch_size = r.U32();
  out->budget_radius = r.F64();
  out->query = r.Vec();
  return r.exhausted() && out->k > 0 && !std::isnan(out->budget_radius);
}

void EncodeRangeRequest(const RangeRequest& req, std::string* out) {
  PayloadWriter w(out);
  w.F64(req.radius);
  w.Vec(req.query);
}

bool DecodeRangeRequest(std::string_view payload, RangeRequest* out) {
  PayloadReader r(payload);
  out->radius = r.F64();
  out->query = r.Vec();
  return r.exhausted() && std::isfinite(out->radius) && out->radius >= 0;
}

void EncodeMutateRequest(const MutateRequest& req, std::string* out) {
  PayloadWriter w(out);
  w.U64(req.rid);
  w.Vec(req.point);
}

bool DecodeMutateRequest(std::string_view payload, MutateRequest* out) {
  PayloadReader r(payload);
  out->rid = r.U64();
  out->point = r.Vec();
  return r.exhausted() && out->point.dim() > 0;
}

void EncodeResultBatch(const std::vector<gist::Neighbor>& neighbors,
                       size_t begin, size_t count, std::string* out) {
  PayloadWriter w(out);
  w.U32(static_cast<uint32_t>(count));
  for (size_t i = begin; i < begin + count; ++i) {
    w.U64(neighbors[i].rid);
    w.F64(neighbors[i].distance);
  }
}

bool DecodeResultBatch(std::string_view payload,
                       std::vector<gist::Neighbor>* out) {
  PayloadReader r(payload);
  const uint32_t count = r.U32();
  // 16 bytes per neighbor: reject counts the payload cannot hold before
  // reserving anything.
  if (count > payload.size() / 16) return false;
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    gist::Neighbor n;
    n.rid = r.U64();
    n.distance = r.F64();
    if (!r.ok()) return false;
    out->push_back(n);
  }
  return r.exhausted();
}

void EncodeFinalInfo(const FinalInfo& info, std::string* out) {
  PayloadWriter w(out);
  w.U64(info.total_results);
  w.U64(info.pages_skipped);
  w.F64(info.server_latency_us);
  w.U64(info.mutation_tag);
  w.String(info.message);
}

bool DecodeFinalInfo(std::string_view payload, FinalInfo* out) {
  PayloadReader r(payload);
  out->total_results = r.U64();
  out->pages_skipped = r.U64();
  out->server_latency_us = r.F64();
  out->mutation_tag = r.U64();
  out->message = r.String();
  return r.exhausted();
}

void EncodeStatsReply(
    const std::vector<std::pair<std::string, double>>& fields,
    std::string* out) {
  PayloadWriter w(out);
  w.U32(static_cast<uint32_t>(fields.size()));
  for (const auto& [name, value] : fields) {
    w.String(name);
    w.F64(value);
  }
}

bool DecodeStatsReply(std::string_view payload,
                      std::vector<std::pair<std::string, double>>* out) {
  PayloadReader r(payload);
  const uint32_t count = r.U32();
  // >= 10 bytes per field (u16 len + f64).
  if (count > payload.size() / 10) return false;
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r.String();
    const double value = r.F64();
    if (!r.ok()) return false;
    out->emplace_back(std::move(name), value);
  }
  return r.exhausted();
}

void EncodeHealthReply(const HealthReply& reply, std::string* out) {
  PayloadWriter w(out);
  w.U8(reply.write_state);
  w.U8(reply.writes_enabled ? 1 : 0);
  w.U8(reply.write_degraded ? 1 : 0);
  w.U64(reply.generation);
  w.U64(reply.completed);
  w.U64(reply.pages_quarantined);
  w.F64(reply.uptime_seconds);
}

bool DecodeHealthReply(std::string_view payload, HealthReply* out) {
  PayloadReader r(payload);
  out->write_state = r.U8();
  out->writes_enabled = r.U8() != 0;
  out->write_degraded = r.U8() != 0;
  out->generation = r.U64();
  out->completed = r.U64();
  out->pages_quarantined = r.U64();
  out->uptime_seconds = r.F64();
  return r.exhausted();
}

void EncodeHelloRequest(const HelloRequest& req, std::string* out) {
  PayloadWriter w(out);
  w.U16(req.major);
  w.U16(req.minor);
  w.U32(req.features);
  w.String(req.peer);
}

bool DecodeHelloRequest(std::string_view payload, HelloRequest* out) {
  PayloadReader r(payload);
  out->major = r.U16();
  out->minor = r.U16();
  out->features = r.U32();
  out->peer = r.String();
  // Deliberately not exhausted(): future minors may append fields, and a
  // 1.x receiver must still accept their hellos (that is the point of
  // the handshake). Trailing bytes are ignored, not rejected.
  return r.ok() && out->major > 0;
}

void EncodeHelloReply(const HelloReply& reply, std::string* out) {
  PayloadWriter w(out);
  w.U16(reply.major);
  w.U16(reply.minor);
  w.U32(reply.features);
  w.String(reply.peer);
}

bool DecodeHelloReply(std::string_view payload, HelloReply* out) {
  PayloadReader r(payload);
  out->major = r.U16();
  out->minor = r.U16();
  out->features = r.U32();
  out->peer = r.String();
  return r.ok() && out->major > 0;  // forward-tolerant, as above.
}

// ---------------------------------------------------------------------------
// Replica catch-up payload codecs (minor 1.2)
// ---------------------------------------------------------------------------

namespace {

/// Shipped batches cross the wire as [u32 len][EncodeShippedBatch bytes]
/// so a reader can skip or bound-check each batch before decoding it.
void AppendShippedBatch(const storage::ShippedBatch& batch,
                        std::string* out) {
  std::vector<uint8_t> bytes;
  storage::EncodeShippedBatch(batch, &bytes);
  PayloadWriter w(out);
  w.U32(static_cast<uint32_t>(bytes.size()));
  out->append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

}  // namespace

void EncodeWalPullRequest(const WalPullRequest& req, std::string* out) {
  PayloadWriter w(out);
  w.U64(req.after_tag);
  w.U32(req.max_batches);
  w.U32(req.max_bytes);
}

bool DecodeWalPullRequest(std::string_view payload, WalPullRequest* out) {
  PayloadReader r(payload);
  out->after_tag = r.U64();
  out->max_batches = r.U32();
  out->max_bytes = r.U32();
  return r.exhausted();
}

void EncodeWalTail(const service::WalTail& tail, std::string* out) {
  PayloadWriter w(out);
  w.U8(tail.snapshot_needed ? 1 : 0);
  w.U8(tail.more ? 1 : 0);
  w.U64(tail.last_tag);
  w.U32(static_cast<uint32_t>(tail.batches.size()));
  for (const storage::ShippedBatch& batch : tail.batches) {
    AppendShippedBatch(batch, out);
  }
}

bool DecodeWalTail(std::string_view payload, service::WalTail* out) {
  PayloadReader r(payload);
  out->snapshot_needed = r.U8() != 0;
  out->more = r.U8() != 0;
  out->last_tag = r.U64();
  const uint32_t count = r.U32();
  if (!r.ok()) return false;
  // The fixed prefix above is 14 bytes; each batch costs at least its
  // 4-byte length prefix plus the 12-byte ShippedBatch header.
  if (count > (payload.size() - 14) / 16) return false;
  size_t pos = 14;
  out->batches.clear();
  out->batches.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (payload.size() - pos < 4) return false;
    const uint32_t len = static_cast<uint32_t>(
        static_cast<uint8_t>(payload[pos]) |
        (static_cast<uint8_t>(payload[pos + 1]) << 8) |
        (static_cast<uint8_t>(payload[pos + 2]) << 16) |
        (static_cast<uint8_t>(payload[pos + 3]) << 24));
    pos += 4;
    if (payload.size() - pos < len) return false;
    storage::ShippedBatch batch;
    if (!storage::DecodeShippedBatch(
            reinterpret_cast<const uint8_t*>(payload.data()) + pos, len,
            &batch)) {
      return false;
    }
    pos += len;
    out->batches.push_back(std::move(batch));
  }
  return pos == payload.size();
}

void EncodeWalApply(const storage::ShippedBatch& batch, std::string* out) {
  std::vector<uint8_t> bytes;
  storage::EncodeShippedBatch(batch, &bytes);
  out->append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

bool DecodeWalApply(std::string_view payload, storage::ShippedBatch* out) {
  return storage::DecodeShippedBatch(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
      out);
}

void EncodeSnapshotPullRequest(const SnapshotPullRequest& req,
                               std::string* out) {
  PayloadWriter w(out);
  w.U32(req.start_page);
  w.U32(req.max_bytes);
}

bool DecodeSnapshotPullRequest(std::string_view payload,
                               SnapshotPullRequest* out) {
  PayloadReader r(payload);
  out->start_page = r.U32();
  out->max_bytes = r.U32();
  return r.exhausted();
}

void EncodeSnapshotChunk(const service::SnapshotChunk& chunk,
                         std::string* out) {
  PayloadWriter w(out);
  w.U64(chunk.tag);
  w.U64(chunk.total_pages);
  w.U32(chunk.start_page);
  w.U32(static_cast<uint32_t>(chunk.pages.size()));
  for (const storage::ShippedRecord& rec : chunk.pages) {
    w.U32(rec.page_id);
    w.U32(static_cast<uint32_t>(rec.payload.size()));
    out->append(reinterpret_cast<const char*>(rec.payload.data()),
                rec.payload.size());
  }
}

bool DecodeSnapshotChunk(std::string_view payload,
                         service::SnapshotChunk* out) {
  PayloadReader r(payload);
  out->tag = r.U64();
  out->total_pages = r.U64();
  out->start_page = r.U32();
  const uint32_t count = r.U32();
  if (!r.ok()) return false;
  // 8 bytes of per-page framing minimum after the 24-byte prefix.
  if (count > (payload.size() - 24) / 8) return false;
  size_t pos = 24;
  out->pages.clear();
  out->pages.reserve(count);
  const uint8_t* base = reinterpret_cast<const uint8_t*>(payload.data());
  for (uint32_t i = 0; i < count; ++i) {
    if (payload.size() - pos < 8) return false;
    const uint32_t page_id = static_cast<uint32_t>(
        base[pos] | (base[pos + 1] << 8) | (base[pos + 2] << 16) |
        (static_cast<uint32_t>(base[pos + 3]) << 24));
    const uint32_t len = static_cast<uint32_t>(
        base[pos + 4] | (base[pos + 5] << 8) | (base[pos + 6] << 16) |
        (static_cast<uint32_t>(base[pos + 7]) << 24));
    pos += 8;
    if (payload.size() - pos < len) return false;
    storage::ShippedRecord rec;
    rec.type = storage::WalRecordType::kPageImage;
    rec.page_id = page_id;
    rec.payload.assign(base + pos, base + pos + len);
    pos += len;
    out->pages.push_back(std::move(rec));
  }
  return pos == payload.size();
}

void EncodeSnapshotApplyRequest(const SnapshotApplyRequest& req,
                                std::string* out) {
  PayloadWriter w(out);
  w.U8(req.first ? 1 : 0);
  w.U8(req.last ? 1 : 0);
  EncodeSnapshotChunk(req.chunk, out);
}

bool DecodeSnapshotApplyRequest(std::string_view payload,
                                SnapshotApplyRequest* out) {
  if (payload.size() < 2) return false;
  out->first = payload[0] != 0;
  out->last = payload[1] != 0;
  return DecodeSnapshotChunk(payload.substr(2), &out->chunk);
}

void EncodeCatchupAck(const CatchupAck& ack, std::string* out) {
  PayloadWriter w(out);
  w.U64(ack.last_tag);
}

bool DecodeCatchupAck(std::string_view payload, CatchupAck* out) {
  PayloadReader r(payload);
  out->last_tag = r.U64();
  return r.exhausted();
}

void EncodeTreeSumReply(const service::TreeSum& sum, std::string* out) {
  PayloadWriter w(out);
  w.U64(sum.tag);
  w.U64(sum.page_count);
  w.U32(sum.crc);
}

bool DecodeTreeSumReply(std::string_view payload, service::TreeSum* out) {
  PayloadReader r(payload);
  out->tag = r.U64();
  out->page_count = r.U64();
  out->crc = r.U32();
  return r.exhausted();
}

void EncodeCatchupPosReply(const service::CatchupPosition& pos,
                           std::string* out) {
  PayloadWriter w(out);
  w.U64(pos.last_tag);
  w.U64(pos.checkpoint_tag);
  w.U64(pos.page_count);
}

bool DecodeCatchupPosReply(std::string_view payload,
                           service::CatchupPosition* out) {
  PayloadReader r(payload);
  out->last_tag = r.U64();
  out->checkpoint_tag = r.U64();
  out->page_count = r.U64();
  return r.exhausted();
}

}  // namespace bw::net
