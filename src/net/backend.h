// bw::net::Backend — the seam between the wire front end and whatever
// executes requests behind it. PR 6's Server talked straight to a
// QueryService; the shard router needs to stand in the same place
// (same protocol, same shedding, same binaries' client code) while
// fanning each request out across a fleet. This interface is exactly
// the narrow surface the server ever used: dimensionality for request
// validation, blocking query/mutation execution (dispatch threads block
// by design), stats/health export, and the feature bits advertised in
// the kHello handshake.
//
// Calls arrive concurrently from every dispatch thread; implementations
// must be thread-safe. Knn/Range/Insert/Remove block until the answer
// is complete — the server's bounded dispatch tier is what keeps that
// from monopolizing I/O threads.

#ifndef BLOBWORLD_NET_BACKEND_H_
#define BLOBWORLD_NET_BACKEND_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "geom/vec.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "util/status.h"

namespace bw::net {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Dimensionality requests must match (checked before execution).
  virtual size_t dim() const = 0;

  /// Feature bits for the kHello handshake (kFeature* in wire.h).
  virtual uint32_t features() const = 0;

  /// Short self-description echoed in HelloReply.peer ("bwserver",
  /// "bwrouter"); human-facing only.
  virtual std::string peer_name() const = 0;

  /// Blocking k-NN with stream limits (count/radius/deadline).
  virtual Result<service::QueryResponse> Knn(
      const geom::Vec& query, const service::StreamOptions& stream) = 0;

  /// Blocking consistent-range search. A non-zero deadline bounds
  /// execution (including time stuck in storage reads).
  virtual Result<service::QueryResponse> Range(const geom::Vec& query,
                                               double radius,
                                               uint32_t deadline_us) = 0;

  /// Blocking mutations; resolve once durable (ack implies recoverable).
  virtual Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                                  uint64_t rid) = 0;
  virtual Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                                  uint64_t rid) = 0;

  /// Ordered (name, value) stats pairs — the kStats payload body (the
  /// server appends its own net.* counters after these).
  virtual std::vector<std::pair<std::string, double>> StatsFields()
      const = 0;

  /// Health summary; the server fills uptime_seconds itself.
  virtual HealthReply Health() const = 0;

  // --- Replica catch-up (kFeatureCatchup; wire minor 1.2) ---------------
  // Default to NotSupported so backends without a durable store (or a
  // router, which catches its replicas up itself) refuse cleanly with a
  // terminal error frame instead of a dead connection.

  virtual Result<service::CatchupPosition> CatchupPosition() const {
    return Status::NotSupported("backend does not serve replica catch-up");
  }
  virtual Result<service::WalTail> ReadWalTail(uint64_t after_tag,
                                               size_t max_batches,
                                               size_t max_bytes) {
    (void)after_tag;
    (void)max_batches;
    (void)max_bytes;
    return Status::NotSupported("backend does not serve replica catch-up");
  }
  virtual Status ApplyWalBatch(const storage::ShippedBatch& batch) {
    (void)batch;
    return Status::NotSupported("backend does not serve replica catch-up");
  }
  virtual Result<service::SnapshotChunk> ReadSnapshotChunk(
      uint32_t start_page, size_t max_bytes) {
    (void)start_page;
    (void)max_bytes;
    return Status::NotSupported("backend does not serve replica catch-up");
  }
  virtual Status ApplySnapshotChunk(const service::SnapshotChunk& chunk,
                                    bool first, bool last) {
    (void)chunk;
    (void)first;
    (void)last;
    return Status::NotSupported("backend does not serve replica catch-up");
  }
  virtual Result<service::TreeSum> TreeChecksum() const {
    return Status::NotSupported("backend does not serve replica catch-up");
  }
};

/// The PR-6 deployment: one QueryService behind the wire. The service
/// must outlive the backend.
class QueryServiceBackend : public Backend {
 public:
  explicit QueryServiceBackend(service::QueryService* service)
      : service_(service) {}

  size_t dim() const override;
  uint32_t features() const override;
  std::string peer_name() const override { return "bwserver"; }
  Result<service::QueryResponse> Knn(
      const geom::Vec& query, const service::StreamOptions& stream) override;
  Result<service::QueryResponse> Range(const geom::Vec& query, double radius,
                                       uint32_t deadline_us) override;
  Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                          uint64_t rid) override;
  Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                          uint64_t rid) override;
  std::vector<std::pair<std::string, double>> StatsFields() const override;
  HealthReply Health() const override;

  Result<service::CatchupPosition> CatchupPosition() const override;
  Result<service::WalTail> ReadWalTail(uint64_t after_tag,
                                       size_t max_batches,
                                       size_t max_bytes) override;
  Status ApplyWalBatch(const storage::ShippedBatch& batch) override;
  Result<service::SnapshotChunk> ReadSnapshotChunk(uint32_t start_page,
                                                   size_t max_bytes) override;
  Status ApplySnapshotChunk(const service::SnapshotChunk& chunk, bool first,
                            bool last) override;
  Result<service::TreeSum> TreeChecksum() const override;

 private:
  service::QueryService* service_;
};

}  // namespace bw::net

#endif  // BLOBWORLD_NET_BACKEND_H_
