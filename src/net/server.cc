#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace bw::net {
namespace {

constexpr int kEpollBatch = 64;
constexpr int kEpollWaitMs = 50;

uint16_t WireCodeFor(const Status& status) {
  return StatusCodeToWire(status.code());
}

}  // namespace

Server::Server(service::QueryService* service, ServerOptions options)
    : owned_backend_(std::make_unique<QueryServiceBackend>(service)),
      backend_(owned_backend_.get()),
      options_(std::move(options)) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  if (options_.dispatch_threads == 0) options_.dispatch_threads = 1;
  if (options_.results_per_frame == 0) options_.results_per_frame = 64;
}

Server::Server(Backend* backend, ServerOptions options)
    : backend_(backend), options_(std::move(options)) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  if (options_.dispatch_threads == 0) options_.dispatch_threads = 1;
  if (options_.results_per_frame == 0) options_.results_per_frame = 64;
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  tree_dim_ = backend_->dim();
  start_time_ = std::chrono::steady_clock::now();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  loops_.reserve(options_.io_threads);
  for (size_t i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->event_fd < 0) {
      return Status::IoError("epoll/eventfd creation failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->event_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.fd = listen_fd_;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    }
    loops_.push_back(std::move(loop));
  }
  for (size_t i = 0; i < options_.io_threads; ++i) {
    loops_[i]->thread = std::thread([this, i] { IoLoopMain(i); });
  }
  dispatchers_.reserve(options_.dispatch_threads);
  for (size_t i = 0; i < options_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoopMain(); });
  }
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_.load() || stop_.load()) return;
  draining_.store(true);

  // Stop accepting: retire the listener before closing it so I/O loop 0
  // never matches a ready event (or a reused fd number) against it.
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0 && !loops_.empty()) {
    ::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_DEL, lfd, nullptr);
    ::close(lfd);
  }

  // Drain: let dispatched requests finish and their streams flush.
  const auto deadline =
      std::chrono::steady_clock::now() + options_.drain_timeout;
  while (!Drained() && std::chrono::steady_clock::now() < deadline) {
    // Nudge the loops so pending outboxes keep flushing.
    for (auto& loop : loops_) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(loop->event_fd, &one, sizeof(one));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  stop_.store(true);
  dispatch_cv_.notify_all();
  for (auto& loop : loops_) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(loop->event_fd, &one, sizeof(one));
  }
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->event_fd >= 0) ::close(loop->event_fd);
  }
  // Resolve any tasks the dispatchers never picked up (drain timeout hit
  // with a backed-up queue): their connections are gone anyway.
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    for (auto& task : dispatch_queue_) {
      FinishRequest(task.conn, 0);
    }
    dispatch_queue_.clear();
  }
}

bool Server::Drained() {
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    if (!dispatch_queue_.empty()) return false;
  }
  return executing_.load() == 0 && inflight_total_.load() == 0 &&
         outbox_total_.load() == 0;
}

NetStats Server::stats() const {
  NetStats s;
  s.accepted = accepted_.load();
  s.refused = refused_.load();
  s.active_connections = active_.load();
  s.requests = requests_.load();
  s.responses = responses_.load();
  s.shed_quota = shed_quota_.load();
  s.shed_dispatch = shed_dispatch_.load();
  s.shed_shutdown = shed_shutdown_.load();
  s.bad_requests = bad_requests_.load();
  s.closed_eof = closed_eof_.load();
  s.closed_bad_frame = closed_bad_frame_.load();
  s.closed_overflow = closed_overflow_.load();
  s.closed_idle = closed_idle_.load();
  s.closed_error = closed_error_.load();
  s.bytes_in = bytes_in_.load();
  s.bytes_out = bytes_out_.load();
  return s;
}

std::vector<std::pair<std::string, double>> Server::StatsFields() const {
  const NetStats s = stats();
  return {
      {"net.accepted", static_cast<double>(s.accepted)},
      {"net.refused", static_cast<double>(s.refused)},
      {"net.active_connections", static_cast<double>(s.active_connections)},
      {"net.requests", static_cast<double>(s.requests)},
      {"net.responses", static_cast<double>(s.responses)},
      {"net.shed_quota", static_cast<double>(s.shed_quota)},
      {"net.shed_dispatch", static_cast<double>(s.shed_dispatch)},
      {"net.shed_shutdown", static_cast<double>(s.shed_shutdown)},
      {"net.bad_requests", static_cast<double>(s.bad_requests)},
      {"net.closed_eof", static_cast<double>(s.closed_eof)},
      {"net.closed_bad_frame", static_cast<double>(s.closed_bad_frame)},
      {"net.closed_overflow", static_cast<double>(s.closed_overflow)},
      {"net.closed_idle", static_cast<double>(s.closed_idle)},
      {"net.closed_error", static_cast<double>(s.closed_error)},
      {"net.bytes_in", static_cast<double>(s.bytes_in)},
      {"net.bytes_out", static_cast<double>(s.bytes_out)},
  };
}

// ---------------------------------------------------------------------------
// I/O loops
// ---------------------------------------------------------------------------

void Server::IoLoopMain(size_t index) {
  IoLoop& loop = *loops_[index];
  epoll_event events[kEpollBatch];
  while (!stop_.load()) {
    const int n = ::epoll_wait(loop.epoll_fd, events, kEpollBatch,
                               kEpollWaitMs);
    for (int i = 0; i < n && !stop_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.event_fd) {
        uint64_t drained;
        while (::read(loop.event_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;  // inbox handled below.
      }
      if (index == 0 && fd == listen_fd_.load()) {
        AcceptReady(loop);
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;  // closed earlier this batch.
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Half-close / reset: try one last read to pick up the reason.
        ReadReady(loop, index, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) ReadReady(loop, index, conn);
      if (loop.conns.count(fd) && (events[i].events & EPOLLOUT)) {
        FlushConnection(loop, conn);
      }
    }
    if (stop_.load()) break;

    // Cross-thread inbox: adopt new fds, flush kicked connections.
    std::vector<int> pending_fds;
    std::vector<std::shared_ptr<Connection>> kicks;
    {
      std::lock_guard<std::mutex> lock(loop.mutex);
      pending_fds.swap(loop.pending_fds);
      kicks.swap(loop.kicks);
    }
    for (int fd : pending_fds) AdoptConnection(loop, index, fd);
    for (const auto& conn : kicks) {
      bool closed;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        closed = conn->closed;
      }
      if (!closed) FlushConnection(loop, conn);
    }

    // Idle/read-timeout reaping.
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<Connection>> idle;
    for (const auto& [fd, conn] : loop.conns) {
      if (now - conn->last_activity > options_.idle_timeout) {
        idle.push_back(conn);
      }
    }
    for (const auto& conn : idle) {
      CloseConnection(loop, conn, CloseReason::kIdleTimeout);
    }
  }

  // Shutdown: close everything this loop still owns.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(loop.conns.size());
  for (const auto& [fd, conn] : loop.conns) remaining.push_back(conn);
  for (const auto& conn : remaining) {
    CloseConnection(loop, conn, CloseReason::kServerShutdown);
  }
  // epoll_fd/event_fd are closed by Shutdown() after the join: closing
  // them here would race Shutdown's wake-up writes.
}

void Server::AcceptReady(IoLoop& loop) {
  const int lfd = listen_fd_.load();
  if (lfd < 0) return;
  for (;;) {
    const int fd = ::accept4(lfd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: wait for epoll.
    }
    if (active_.load() >= options_.max_connections || draining_.load()) {
      refused_.fetch_add(1);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1);
    active_.fetch_add(1);
    const size_t target = accepted_.load() % options_.io_threads;
    if (target == 0) {
      AdoptConnection(loop, 0, fd);
    } else {
      {
        std::lock_guard<std::mutex> lock(loops_[target]->mutex);
        loops_[target]->pending_fds.push_back(fd);
      }
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(loops_[target]->event_fd, &one, sizeof(one));
    }
  }
}

void Server::AdoptConnection(IoLoop& loop, size_t index, int fd) {
  (void)index;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_shared<Connection>(fd, options_.max_payload_bytes);
  conn->limiter.Configure(options_.quota.max_results_per_sec);
  conn->last_activity = std::chrono::steady_clock::now();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    active_.fetch_sub(1);
    return;
  }
  loop.conns.emplace(fd, std::move(conn));
}

void Server::ReadReady(IoLoop& loop, size_t index,
                       const std::shared_ptr<Connection>& conn) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      std::vector<FrameParser::Frame> frames;
      const bool intact = conn->parser.Feed(buf, static_cast<size_t>(n),
                                            &frames);
      for (auto& frame : frames) {
        bool gone;
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          gone = conn->closed || conn->doomed;
        }
        if (gone) break;
        HandleFrame(loop, index, conn, std::move(frame));
      }
      if (!intact) {
        // Framing integrity failure: best-effort error frame, then
        // close once it (and anything queued before it) flushes.
        QueueErrorFinal(conn, 0, kWireBadFrame, conn->parser.error());
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          conn->doomed = true;
          if (conn->close_reason == CloseReason::kNone) {
            conn->close_reason = CloseReason::kBadFrame;
          }
        }
        FlushConnection(loop, conn);
        return;
      }
      if (!loop.conns.count(conn->fd)) return;  // closed while handling.
      continue;
    }
    if (n == 0) {
      CloseConnection(loop, conn, CloseReason::kClientEof);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(loop, conn, CloseReason::kReadError);
    return;
  }
}

void Server::HandleFrame(IoLoop& loop, size_t index,
                         const std::shared_ptr<Connection>& conn,
                         FrameParser::Frame frame) {
  requests_.fetch_add(1);
  const FrameHeader& h = frame.header;
  if (!IsRequestType(static_cast<uint8_t>(h.type))) {
    // Semantic error: the frame boundary is sound, so answer and keep
    // the connection.
    bad_requests_.fetch_add(1);
    QueueErrorFinal(conn, h.request_id,
                    StatusCodeToWire(StatusCode::kNotSupported),
                    "unknown request type " +
                        std::to_string(static_cast<unsigned>(h.type)));
    FlushConnection(loop, conn);
    return;
  }
  if (draining_.load()) {
    shed_shutdown_.fetch_add(1);
    QueueErrorFinal(conn, h.request_id, kWireShuttingDown,
                    "server shutting down");
    FlushConnection(loop, conn);
    return;
  }
  if (h.type == MsgType::kStats) {
    QueueStatsReply(conn, h.request_id);
    FlushConnection(loop, conn);
    return;
  }
  if (h.type == MsgType::kHealth) {
    QueueHealthReply(conn, h.request_id);
    FlushConnection(loop, conn);
    return;
  }
  if (h.type == MsgType::kHello) {
    HandleHello(loop, conn, frame);
    return;
  }

  // Per-connection quotas, enforced before the request costs anything.
  bool quota_ok = true;
  const char* quota_reason = "";
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->inflight >= options_.quota.max_inflight) {
      quota_ok = false;
      quota_reason = "per-connection in-flight request cap";
    } else if (!conn->limiter.Admit(std::chrono::steady_clock::now())) {
      quota_ok = false;
      quota_reason = "per-connection results/sec quota";
    } else {
      ++conn->inflight;
    }
  }
  if (!quota_ok) {
    shed_quota_.fetch_add(1);
    QueueErrorFinal(conn, h.request_id, kWireQuotaExceeded, quota_reason);
    FlushConnection(loop, conn);
    return;
  }
  inflight_total_.fetch_add(1);

  // Hand off to the dispatch tier; its bounded queue is the net-side
  // admission control.
  {
    std::unique_lock<std::mutex> lock(dispatch_mutex_);
    if (dispatch_queue_.size() >= options_.dispatch_queue_capacity) {
      lock.unlock();
      shed_dispatch_.fetch_add(1);
      FinishRequest(conn, 0);
      QueueErrorFinal(conn, h.request_id,
                      StatusCodeToWire(StatusCode::kResourceExhausted),
                      "dispatch queue full");
      FlushConnection(loop, conn);
      return;
    }
    DispatchTask task;
    task.conn = conn;
    task.io_index = index;
    task.frame = std::move(frame);
    dispatch_queue_.push_back(std::move(task));
  }
  dispatch_cv_.notify_one();
}

void Server::HandleHello(IoLoop& loop,
                         const std::shared_ptr<Connection>& conn,
                         const FrameParser::Frame& frame) {
  HelloRequest req;
  if (!DecodeHelloRequest(frame.payload, &req)) {
    // Semantic failure: the framing is sound, so answer and keep the
    // connection (a pre-handshake client never sends kHello at all).
    bad_requests_.fetch_add(1);
    QueueErrorFinal(conn, frame.header.request_id,
                    StatusCodeToWire(StatusCode::kInvalidArgument),
                    "malformed hello payload");
    FlushConnection(loop, conn);
    return;
  }
  HelloReply reply;
  reply.major = kWireVersionMajor;
  reply.minor = kWireVersionMinor;
  reply.features = backend_->features();
  reply.peer = backend_->peer_name();
  const bool mismatch = req.major != kWireVersionMajor;
  std::string payload;
  EncodeHelloReply(reply, &payload);
  FrameHeader h;
  h.type = MsgType::kHelloReply;
  h.flags = kFlagFinal;
  h.status = mismatch ? kWireVersionMismatch : 0;
  h.request_id = frame.header.request_id;
  Enqueue(conn, EncodeFrame(h, payload));
  responses_.fetch_add(1);
  if (mismatch) {
    // Incompatible peers exchange exactly one frame pair: the reply
    // (carrying our version so the client can report what it hit)
    // flushes, then the connection closes.
    bad_requests_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->doomed = true;
    if (conn->close_reason == CloseReason::kNone) {
      conn->close_reason = CloseReason::kBadFrame;
    }
  }
  FlushConnection(loop, conn);
}

void Server::QueueErrorFinal(const std::shared_ptr<Connection>& conn,
                             uint64_t request_id, uint16_t wire_status,
                             const std::string& message) {
  FinalInfo info;
  info.message = message;
  std::string payload;
  EncodeFinalInfo(info, &payload);
  FrameHeader h;
  h.type = MsgType::kFinal;
  h.flags = kFlagFinal;
  h.status = wire_status;
  h.request_id = request_id;
  Enqueue(conn, EncodeFrame(h, payload));
  responses_.fetch_add(1);
}

void Server::QueueQueryResponse(const std::shared_ptr<Connection>& conn,
                                uint64_t request_id,
                                const service::QueryResponse& response,
                                size_t batch_size) {
  const auto& neighbors = response.neighbors;
  for (size_t begin = 0; begin < neighbors.size(); begin += batch_size) {
    const size_t count = std::min(batch_size, neighbors.size() - begin);
    std::string payload;
    EncodeResultBatch(neighbors, begin, count, &payload);
    FrameHeader h;
    h.type = MsgType::kResultBatch;
    h.request_id = request_id;
    if (!Enqueue(conn, EncodeFrame(h, payload))) return;  // doomed.
  }
  FinalInfo info;
  info.total_results = neighbors.size();
  info.pages_skipped = response.metrics.pages_skipped;
  info.server_latency_us = response.metrics.latency_us;
  std::string payload;
  EncodeFinalInfo(info, &payload);
  FrameHeader h;
  h.type = MsgType::kFinal;
  h.flags = kFlagFinal;
  if (response.degraded()) h.flags |= kFlagDegraded;
  if (response.metrics.truncated) h.flags |= kFlagTruncated;
  h.request_id = request_id;
  Enqueue(conn, EncodeFrame(h, payload));
  responses_.fetch_add(1);
}

bool Server::Enqueue(const std::shared_ptr<Connection>& conn,
                     std::string frame) {
  const size_t bytes = frame.size();
  std::lock_guard<std::mutex> lock(conn->mutex);
  if (!conn->EnqueueLocked(std::move(frame), options_.max_outbox_bytes)) {
    return false;
  }
  outbox_total_.fetch_add(bytes);
  return true;
}

void Server::FinishRequest(const std::shared_ptr<Connection>& conn,
                           double results_charged) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->inflight > 0) --conn->inflight;
    conn->limiter.Charge(results_charged);
  }
  inflight_total_.fetch_sub(1);
}

void Server::FlushConnection(IoLoop& loop,
                             const std::shared_ptr<Connection>& conn) {
  bool want_write = false;
  bool close_now = false;
  CloseReason reason = CloseReason::kNone;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    while (!conn->outbox.empty()) {
      const std::string& front = conn->outbox.front();
      const ssize_t n =
          ::send(conn->fd, front.data() + conn->outbox_offset,
                 front.size() - conn->outbox_offset, MSG_NOSIGNAL);
      if (n > 0) {
        bytes_out_.fetch_add(static_cast<uint64_t>(n));
        outbox_total_.fetch_sub(static_cast<size_t>(n));
        conn->outbox_offset += static_cast<size_t>(n);
        conn->last_activity = std::chrono::steady_clock::now();
        if (conn->outbox_offset == front.size()) {
          conn->outbox_bytes -= front.size();
          conn->outbox.pop_front();
          conn->outbox_offset = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      // Broken pipe / reset: nothing more to deliver.
      close_now = true;
      reason = CloseReason::kReadError;
      break;
    }
    if (!close_now && conn->outbox.empty() && conn->doomed) {
      close_now = true;
      reason = conn->close_reason != CloseReason::kNone
                   ? conn->close_reason
                   : CloseReason::kBadFrame;
    }
    if (!close_now) {
      // Read backpressure: stop pulling requests off a connection whose
      // responses the client is not draining.
      if (conn->outbox_bytes > options_.max_outbox_bytes / 2) {
        conn->read_paused = true;
      } else if (conn->outbox_bytes < options_.max_outbox_bytes / 4) {
        conn->read_paused = false;
      }
      conn->want_write = want_write;
    }
  }
  if (close_now) {
    CloseConnection(loop, conn, reason);
    return;
  }
  epoll_event ev{};
  ev.events = 0;
  bool paused;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    paused = conn->read_paused;
    want_write = conn->want_write || !conn->outbox.empty();
  }
  if (!paused) ev.events |= EPOLLIN;
  if (want_write) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConnection(IoLoop& loop,
                             const std::shared_ptr<Connection>& conn,
                             CloseReason reason) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
    outbox_total_.fetch_sub(conn->outbox_bytes);
    conn->outbox.clear();
    conn->outbox_bytes = 0;
    conn->outbox_offset = 0;
  }
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  loop.conns.erase(conn->fd);
  active_.fetch_sub(1);
  switch (reason) {
    case CloseReason::kClientEof:
      closed_eof_.fetch_add(1);
      break;
    case CloseReason::kBadFrame:
      closed_bad_frame_.fetch_add(1);
      break;
    case CloseReason::kOutboxOverflow:
      closed_overflow_.fetch_add(1);
      break;
    case CloseReason::kIdleTimeout:
      closed_idle_.fetch_add(1);
      break;
    case CloseReason::kReadError:
      closed_error_.fetch_add(1);
      break;
    case CloseReason::kNone:
    case CloseReason::kServerShutdown:
      break;
  }
}

void Server::KickIo(size_t io_index, const std::shared_ptr<Connection>& conn) {
  IoLoop& loop = *loops_[io_index];
  {
    std::lock_guard<std::mutex> lock(loop.mutex);
    loop.kicks.push_back(conn);
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(loop.event_fd, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// Dispatch tier
// ---------------------------------------------------------------------------

void Server::DispatchLoopMain() {
  for (;;) {
    DispatchTask task;
    {
      std::unique_lock<std::mutex> lock(dispatch_mutex_);
      dispatch_cv_.wait(lock, [this] {
        return stop_.load() || !dispatch_queue_.empty();
      });
      if (dispatch_queue_.empty()) {
        if (stop_.load()) return;
        continue;
      }
      task = std::move(dispatch_queue_.front());
      dispatch_queue_.pop_front();
      executing_.fetch_add(1);
    }
    bool gone;
    {
      std::lock_guard<std::mutex> lock(task.conn->mutex);
      gone = task.conn->closed || task.conn->doomed;
    }
    if (gone) {
      FinishRequest(task.conn, 0);
    } else {
      switch (task.frame.header.type) {
        case MsgType::kKnn:
        case MsgType::kRange:
          ExecuteQuery(task);
          break;
        case MsgType::kInsert:
        case MsgType::kDelete:
          ExecuteMutation(task);
          break;
        case MsgType::kWalPull:
        case MsgType::kWalApply:
        case MsgType::kSnapshotPull:
        case MsgType::kSnapshotApply:
        case MsgType::kTreeSum:
        case MsgType::kCatchupPos:
          ExecuteCatchup(task);
          break;
        default:  // unreachable: HandleFrame only dispatches the above.
          FinishRequest(task.conn, 0);
          break;
      }
    }
    executing_.fetch_sub(1);
  }
}

void Server::ExecuteQuery(const DispatchTask& task) {
  const FrameHeader& h = task.frame.header;
  geom::Vec query;
  service::StreamOptions stream;
  size_t batch_size = options_.results_per_frame;
  bool use_range = false;
  double radius = 0;

  if (h.type == MsgType::kKnn) {
    KnnRequest req;
    if (!DecodeKnnRequest(task.frame.payload, &req)) {
      bad_requests_.fetch_add(1);
      FinishRequest(task.conn, 0);
      QueueErrorFinal(task.conn, h.request_id,
                      StatusCodeToWire(StatusCode::kInvalidArgument),
                      "malformed k-NN request payload");
      KickIo(task.io_index, task.conn);
      return;
    }
    query = std::move(req.query);
    stream.max_results = req.k;
    stream.budget_radius = req.budget_radius;
    if (req.batch_size > 0) {
      batch_size = std::min<size_t>(req.batch_size, 4096);
    }
  } else {
    RangeRequest req;
    if (!DecodeRangeRequest(task.frame.payload, &req)) {
      bad_requests_.fetch_add(1);
      FinishRequest(task.conn, 0);
      QueueErrorFinal(task.conn, h.request_id,
                      StatusCodeToWire(StatusCode::kInvalidArgument),
                      "malformed range request payload");
      KickIo(task.io_index, task.conn);
      return;
    }
    query = std::move(req.query);
    radius = req.radius;
    use_range = true;
  }
  if (query.dim() != tree_dim_) {
    bad_requests_.fetch_add(1);
    FinishRequest(task.conn, 0);
    QueueErrorFinal(task.conn, h.request_id,
                    StatusCodeToWire(StatusCode::kInvalidArgument),
                    "query dimensionality " + std::to_string(query.dim()) +
                        " != index dimensionality " +
                        std::to_string(tree_dim_));
    KickIo(task.io_index, task.conn);
    return;
  }
  stream.deadline_us = static_cast<double>(h.deadline_us);

  Result<service::QueryResponse> response =
      use_range ? backend_->Range(query, radius, h.deadline_us)
                : backend_->Knn(query, stream);
  if (!response.ok()) {
    FinishRequest(task.conn, 0);
    QueueErrorFinal(task.conn, h.request_id, WireCodeFor(response.status()),
                    response.status().message());
    KickIo(task.io_index, task.conn);
    return;
  }
  FinishRequest(task.conn, static_cast<double>(response->neighbors.size()));
  QueueQueryResponse(task.conn, h.request_id, *response, batch_size);
  KickIo(task.io_index, task.conn);
}

void Server::ExecuteMutation(const DispatchTask& task) {
  const FrameHeader& h = task.frame.header;
  MutateRequest req;
  if (!DecodeMutateRequest(task.frame.payload, &req)) {
    bad_requests_.fetch_add(1);
    FinishRequest(task.conn, 0);
    QueueErrorFinal(task.conn, h.request_id,
                    StatusCodeToWire(StatusCode::kInvalidArgument),
                    "malformed mutation request payload");
    KickIo(task.io_index, task.conn);
    return;
  }
  if (req.point.dim() != tree_dim_) {
    bad_requests_.fetch_add(1);
    FinishRequest(task.conn, 0);
    QueueErrorFinal(task.conn, h.request_id,
                    StatusCodeToWire(StatusCode::kInvalidArgument),
                    "point dimensionality mismatch");
    KickIo(task.io_index, task.conn);
    return;
  }
  // This is where the write-state machine reaches the wire: kReadOnly
  // -> kResourceExhausted (retry later), kFailed -> kIoError
  // (fail-stop), full queue -> kUnavailable (transient).
  Result<service::MutationOutcome> outcome =
      h.type == MsgType::kInsert ? backend_->Insert(req.point, req.rid)
                                 : backend_->Remove(req.point, req.rid);
  FinishRequest(task.conn, outcome.ok() ? 1 : 0);
  if (!outcome.ok()) {
    QueueErrorFinal(task.conn, h.request_id, WireCodeFor(outcome.status()),
                    outcome.status().message());
    KickIo(task.io_index, task.conn);
    return;
  }
  FinalInfo info;
  info.mutation_tag = outcome->tag;
  info.server_latency_us = outcome->apply_us;
  std::string payload;
  EncodeFinalInfo(info, &payload);
  FrameHeader reply;
  reply.type = MsgType::kMutateAck;
  reply.flags = kFlagFinal;
  reply.request_id = h.request_id;
  Enqueue(task.conn, EncodeFrame(reply, payload));
  responses_.fetch_add(1);
  KickIo(task.io_index, task.conn);
}

void Server::ExecuteCatchup(const DispatchTask& task) {
  const FrameHeader& h = task.frame.header;
  const auto fail = [&](const std::string& msg) {
    bad_requests_.fetch_add(1);
    FinishRequest(task.conn, 0);
    QueueErrorFinal(task.conn, h.request_id,
                    StatusCodeToWire(StatusCode::kInvalidArgument), msg);
    KickIo(task.io_index, task.conn);
  };
  const auto error = [&](const Status& status) {
    FinishRequest(task.conn, 0);
    QueueErrorFinal(task.conn, h.request_id, WireCodeFor(status),
                    status.message());
    KickIo(task.io_index, task.conn);
  };
  const auto reply = [&](MsgType type, const std::string& payload) {
    FinishRequest(task.conn, 0);
    FrameHeader rh;
    rh.type = type;
    rh.flags = kFlagFinal;
    rh.request_id = h.request_id;
    Enqueue(task.conn, EncodeFrame(rh, payload));
    responses_.fetch_add(1);
    KickIo(task.io_index, task.conn);
  };
  // Replies must fit the smaller of our outgoing cap and the protocol
  // cap a default client enforces; the slack covers codec framing.
  const size_t wire_budget =
      std::min<size_t>(options_.max_payload_bytes, kMaxPayloadBytes) - 4096;

  switch (h.type) {
    case MsgType::kCatchupPos: {
      Result<service::CatchupPosition> pos = backend_->CatchupPosition();
      if (!pos.ok()) return error(pos.status());
      std::string payload;
      EncodeCatchupPosReply(*pos, &payload);
      return reply(MsgType::kCatchupPosReply, payload);
    }
    case MsgType::kTreeSum: {
      Result<service::TreeSum> sum = backend_->TreeChecksum();
      if (!sum.ok()) return error(sum.status());
      std::string payload;
      EncodeTreeSumReply(*sum, &payload);
      return reply(MsgType::kTreeSumReply, payload);
    }
    case MsgType::kWalPull: {
      WalPullRequest req;
      if (!DecodeWalPullRequest(task.frame.payload, &req)) {
        return fail("malformed WAL pull payload");
      }
      const size_t max_batches = req.max_batches > 0 ? req.max_batches : 16;
      const size_t max_bytes = std::min<size_t>(
          req.max_bytes > 0 ? req.max_bytes : (1u << 20), wire_budget);
      Result<service::WalTail> tail =
          backend_->ReadWalTail(req.after_tag, max_batches, max_bytes);
      if (!tail.ok()) return error(tail.status());
      std::string payload;
      EncodeWalTail(*tail, &payload);
      // The storage-side byte budget counts raw payloads; the wire adds
      // framing. Shed newest-first until the reply frames, and if even
      // one batch cannot cross the wire, escalate to the snapshot path.
      while (payload.size() > wire_budget && tail->batches.size() > 1) {
        tail->batches.pop_back();
        tail->more = true;
        payload.clear();
        EncodeWalTail(*tail, &payload);
      }
      if (payload.size() > wire_budget) {
        tail->batches.clear();
        tail->more = false;
        tail->snapshot_needed = true;
        payload.clear();
        EncodeWalTail(*tail, &payload);
      }
      return reply(MsgType::kWalBatchReply, payload);
    }
    case MsgType::kWalApply: {
      storage::ShippedBatch batch;
      if (!DecodeWalApply(task.frame.payload, &batch)) {
        return fail("malformed shipped batch payload");
      }
      const Status applied = backend_->ApplyWalBatch(batch);
      if (!applied.ok()) return error(applied);
      CatchupAck ack;
      ack.last_tag = batch.tag;
      if (Result<service::CatchupPosition> pos = backend_->CatchupPosition();
          pos.ok()) {
        ack.last_tag = pos->last_tag;
      }
      std::string payload;
      EncodeCatchupAck(ack, &payload);
      return reply(MsgType::kCatchupAck, payload);
    }
    case MsgType::kSnapshotPull: {
      SnapshotPullRequest req;
      if (!DecodeSnapshotPullRequest(task.frame.payload, &req)) {
        return fail("malformed snapshot pull payload");
      }
      const size_t max_bytes = std::min<size_t>(
          req.max_bytes > 0 ? req.max_bytes : (1u << 20), wire_budget);
      Result<service::SnapshotChunk> chunk =
          backend_->ReadSnapshotChunk(req.start_page, max_bytes);
      if (!chunk.ok()) return error(chunk.status());
      std::string payload;
      EncodeSnapshotChunk(*chunk, &payload);
      if (payload.size() > wire_budget + 4096) {
        // A single page image too large to frame: no transfer path
        // exists for this store over this wire configuration.
        return error(Status::NotSupported(
            "a single page image exceeds the frame payload cap"));
      }
      return reply(MsgType::kSnapshotChunk, payload);
    }
    case MsgType::kSnapshotApply: {
      SnapshotApplyRequest req;
      if (!DecodeSnapshotApplyRequest(task.frame.payload, &req)) {
        return fail("malformed snapshot apply payload");
      }
      const Status applied =
          backend_->ApplySnapshotChunk(req.chunk, req.first, req.last);
      if (!applied.ok()) return error(applied);
      CatchupAck ack;
      ack.last_tag = req.chunk.tag;
      std::string payload;
      EncodeCatchupAck(ack, &payload);
      return reply(MsgType::kCatchupAck, payload);
    }
    default:
      return fail("not a catch-up request");
  }
}

void Server::QueueStatsReply(const std::shared_ptr<Connection>& conn,
                             uint64_t request_id) {
  auto fields = backend_->StatsFields();
  auto net_fields = StatsFields();
  fields.insert(fields.end(), net_fields.begin(), net_fields.end());
  std::string payload;
  EncodeStatsReply(fields, &payload);
  FrameHeader h;
  h.type = MsgType::kStatsReply;
  h.flags = kFlagFinal;
  h.request_id = request_id;
  Enqueue(conn, EncodeFrame(h, payload));
  responses_.fetch_add(1);
}

void Server::QueueHealthReply(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id) {
  HealthReply reply = backend_->Health();
  reply.uptime_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_time_)
                             .count();
  std::string payload;
  EncodeHealthReply(reply, &payload);
  FrameHeader h;
  h.type = MsgType::kHealthReply;
  h.flags = kFlagFinal;
  h.request_id = request_id;
  Enqueue(conn, EncodeFrame(h, payload));
  responses_.fetch_add(1);
}

}  // namespace bw::net
