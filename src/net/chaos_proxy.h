// bw::net::ChaosProxy — a deterministic fault-injecting TCP proxy for
// exercising the fleet's failure paths without root, tc, or iptables.
// Tests (and the CI chaos stage) park it between a client and a server
// and dial in byte-level mayhem: added latency, truncated-then-closed
// streams, one-way blackholes, and immediate connection resets. Every
// decision comes from a splitmix64 stream seeded by (options.seed,
// connection index), so a failing run replays bit-identically from its
// seed — chaos you can put in a regression test.
//
// Fault model (applied per relay direction, per read):
//   delay_prob      sleep delay_ms before forwarding the bytes read.
//   drop_frame_prob forward only a prefix of the bytes read (possibly
//                   none), then close both sides: a truncated frame.
//                   The wire protocol's CRCs must catch this.
//   blackhole_prob  stop forwarding this direction forever but keep
//                   reading (a one-way partition: peers see a stall,
//                   not an error, until their own timeouts fire).
//   reset_prob      decided at accept time: close the client socket
//                   immediately without contacting the target.
//   brownout_*      a timed window (relative to Start()) during which
//                   every read is forwarded late — a deterministic
//                   latency spike per read, drawn from the seeded
//                   per-connection stream, optionally trickled out in
//                   small chunks with a spike per chunk. The proxied
//                   server stays alive and correct, just slow: the
//                   failure mode health probes cannot see, which the
//                   router's hedging and circuit breakers exist for.
//
// Threading: one accept thread plus two relay threads per connection
// (client->target and target->client). Stop() closes the listener and
// every live socket, then joins everything. Counters are cumulative
// across the proxy's lifetime.

#ifndef BLOBWORLD_NET_CHAOS_PROXY_H_
#define BLOBWORLD_NET_CHAOS_PROXY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace bw::net {

struct ChaosOptions {
  /// Root of the deterministic fault schedule; two proxies with the
  /// same seed and the same connection order inject the same faults.
  uint64_t seed = 0;
  /// Probability a read's bytes are truncated and the connection torn
  /// down (per read, per direction). [0, 1].
  double drop_frame_prob = 0;
  /// Probability a read's bytes are delayed by delay_ms. [0, 1].
  double delay_prob = 0;
  uint32_t delay_ms = 20;
  /// Probability an accepted connection is reset before reaching the
  /// target. [0, 1].
  double reset_prob = 0;
  /// Probability a relay direction goes silent forever (one-way
  /// partition). [0, 1].
  double blackhole_prob = 0;
  /// Accept cap; connections beyond it are closed immediately.
  size_t max_connections = 256;

  /// Brownout window, relative to Start(): reads between
  /// [brownout_start_ms, brownout_start_ms + brownout_duration_ms) are
  /// browned out. duration 0 disables the mode.
  uint64_t brownout_start_ms = 0;
  uint64_t brownout_duration_ms = 0;
  /// Base latency spike added to every browned-out read (plus up to
  /// +25% drawn from the seeded per-connection stream, so spike
  /// schedules are pinned by the seed but decorrelated across
  /// connections).
  uint32_t brownout_delay_ms = 200;
  /// When nonzero, a browned-out read is forwarded in chunks of at
  /// most this many bytes with a spike before each chunk (slow
  /// trickle); 0 forwards the whole read after a single spike.
  size_t brownout_trickle_bytes = 0;
};

/// Cumulative fault counters (monotonic; readable while running).
struct ChaosStats {
  uint64_t connections = 0;
  uint64_t resets = 0;
  uint64_t delays = 0;
  uint64_t truncations = 0;
  uint64_t blackholes = 0;
  uint64_t brownout_reads = 0;  // reads forwarded through the brownout.
  uint64_t bytes_relayed = 0;
};

class ChaosProxy {
 public:
  ChaosProxy() = default;
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Listens on `listen_port` (0 picks an ephemeral port; see port())
  /// and relays every accepted connection to `target_host:target_port`
  /// through the fault schedule.
  Status Start(uint16_t listen_port, const std::string& target_host,
               uint16_t target_port, ChaosOptions options);

  /// Port actually bound (after Start()).
  uint16_t port() const { return port_; }

  /// Closes the listener and every proxied connection, joins threads.
  /// Idempotent.
  void Stop();

  ChaosStats stats() const;

 private:
  struct Relay;

  void AcceptLoop();
  void RelayLoop(std::shared_ptr<Relay> relay, bool client_to_target);
  /// Whether the brownout window covers "now".
  bool InBrownout() const;

  ChaosOptions options_;
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::string target_host_;
  uint16_t target_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point started_at_;

  std::mutex relays_mutex_;
  std::vector<std::shared_ptr<Relay>> relays_;
  uint64_t next_conn_index_ = 0;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> truncations_{0};
  std::atomic<uint64_t> blackholes_{0};
  std::atomic<uint64_t> brownout_reads_{0};
  std::atomic<uint64_t> bytes_relayed_{0};
};

}  // namespace bw::net

#endif  // BLOBWORLD_NET_CHAOS_PROXY_H_
