#include "net/chaos_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace bw::net {

namespace {

/// splitmix64: the deterministic per-connection fault stream.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform [0, 1) draw from the stream.
double NextUnit(uint64_t& state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

int DialTarget(const std::string& host, uint16_t port) {
  const std::string address = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Shuts both sockets down so the peer relay thread's blocking read
/// returns; the fds themselves are closed once by the Relay owner.
void SeverBoth(int a, int b) {
  if (a >= 0) ::shutdown(a, SHUT_RDWR);
  if (b >= 0) ::shutdown(b, SHUT_RDWR);
}

}  // namespace

/// One proxied connection: the two fds, a thread per direction, and a
/// fault-stream state per direction (so the directions draw
/// independently but deterministically).
struct ChaosProxy::Relay {
  int client_fd = -1;
  int target_fd = -1;
  uint64_t rng_c2t = 0;
  uint64_t rng_t2c = 0;
  std::thread c2t;
  std::thread t2c;
  std::atomic<bool> severed{false};
};

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start(uint16_t listen_port,
                         const std::string& target_host,
                         uint16_t target_port, ChaosOptions options) {
  if (listen_fd_.load() >= 0) {
    return Status::InvalidArgument("chaos proxy already started");
  }
  options_ = options;
  target_host_ = target_host;
  target_port_ = target_port;
  stop_.store(false);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listen_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(fd);
  started_at_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

bool ChaosProxy::InBrownout() const {
  if (options_.brownout_duration_ms == 0) return false;
  const uint64_t elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  return elapsed_ms >= options_.brownout_start_ms &&
         elapsed_ms <
             options_.brownout_start_ms + options_.brownout_duration_ms;
}

void ChaosProxy::Stop() {
  if (stop_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Relay>> relays;
  {
    std::lock_guard<std::mutex> lock(relays_mutex_);
    relays.swap(relays_);
  }
  for (auto& relay : relays) {
    SeverBoth(relay->client_fd, relay->target_fd);
  }
  for (auto& relay : relays) {
    if (relay->c2t.joinable()) relay->c2t.join();
    if (relay->t2c.joinable()) relay->t2c.join();
    if (relay->client_fd >= 0) ::close(relay->client_fd);
    if (relay->target_fd >= 0) ::close(relay->target_fd);
  }
}

ChaosStats ChaosProxy::stats() const {
  ChaosStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.resets = resets_.load(std::memory_order_relaxed);
  stats.delays = delays_.load(std::memory_order_relaxed);
  stats.truncations = truncations_.load(std::memory_order_relaxed);
  stats.blackholes = blackholes_.load(std::memory_order_relaxed);
  stats.brownout_reads = brownout_reads_.load(std::memory_order_relaxed);
  stats.bytes_relayed = bytes_relayed_.load(std::memory_order_relaxed);
  return stats;
}

void ChaosProxy::AcceptLoop() {
  while (!stop_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;
    const int client_fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal.
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t conn_index = next_conn_index_++;
    // The per-connection fault stream: every draw for this connection
    // (reset verdict, then per-direction schedules) derives from here.
    uint64_t rng = options_.seed ^ (conn_index * 0x9e3779b97f4a7c15ull + 1);
    if (NextUnit(rng) < options_.reset_prob) {
      resets_.fetch_add(1, std::memory_order_relaxed);
      ::close(client_fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(relays_mutex_);
      if (relays_.size() >= options_.max_connections) {
        ::close(client_fd);
        continue;
      }
    }
    const int target_fd = DialTarget(target_host_, target_port_);
    if (target_fd < 0) {
      ::close(client_fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto relay = std::make_shared<Relay>();
    relay->client_fd = client_fd;
    relay->target_fd = target_fd;
    relay->rng_c2t = SplitMix64(rng);
    relay->rng_t2c = SplitMix64(rng);
    relay->c2t = std::thread([this, relay] { RelayLoop(relay, true); });
    relay->t2c = std::thread([this, relay] { RelayLoop(relay, false); });
    std::lock_guard<std::mutex> lock(relays_mutex_);
    relays_.push_back(std::move(relay));
  }
}

void ChaosProxy::RelayLoop(std::shared_ptr<Relay> relay,
                           bool client_to_target) {
  const int from = client_to_target ? relay->client_fd : relay->target_fd;
  const int to = client_to_target ? relay->target_fd : relay->client_fd;
  uint64_t& rng = client_to_target ? relay->rng_c2t : relay->rng_t2c;
  bool blackholed = false;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(from, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (blackholed) continue;  // keep draining; forward nothing.
    if (options_.blackhole_prob > 0 &&
        NextUnit(rng) < options_.blackhole_prob) {
      blackholes_.fetch_add(1, std::memory_order_relaxed);
      blackholed = true;
      continue;
    }
    size_t forward = static_cast<size_t>(n);
    bool truncate = false;
    if (options_.drop_frame_prob > 0 &&
        NextUnit(rng) < options_.drop_frame_prob) {
      truncations_.fetch_add(1, std::memory_order_relaxed);
      truncate = true;
      forward = static_cast<size_t>(NextUnit(rng) * forward);
    }
    if (options_.delay_prob > 0 && NextUnit(rng) < options_.delay_prob) {
      delays_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.delay_ms));
    }
    size_t sent = 0;
    bool write_failed = false;
    const auto send_span = [&](size_t end) {
      while (sent < end) {
        const ssize_t w =
            ::send(to, buf + sent, end - sent, MSG_NOSIGNAL);
        if (w > 0) {
          sent += static_cast<size_t>(w);
          continue;
        }
        if (w < 0 && errno == EINTR) continue;
        write_failed = true;
        return;
      }
    };
    if (InBrownout()) {
      // Browned out: every read pays a latency spike (base + up to
      // +25% drawn from the seeded per-connection stream), optionally
      // trickled out in small chunks with a spike per chunk.
      brownout_reads_.fetch_add(1, std::memory_order_relaxed);
      const size_t chunk = options_.brownout_trickle_bytes > 0
                               ? options_.brownout_trickle_bytes
                               : forward;
      while (sent < forward && !write_failed && !stop_.load()) {
        const auto spike = std::chrono::microseconds(static_cast<uint64_t>(
            options_.brownout_delay_ms * 1000.0 * (1.0 + 0.25 * NextUnit(rng))));
        std::this_thread::sleep_for(spike);
        size_t end = sent + chunk;
        if (end > forward || chunk == 0) end = forward;
        send_span(end);
      }
    } else {
      send_span(forward);
    }
    bytes_relayed_.fetch_add(sent, std::memory_order_relaxed);
    if (truncate || write_failed) break;
  }
  // This direction is done (EOF, error, or an injected truncation):
  // sever both sockets so the peer thread unblocks too. First thread
  // here wins; Stop() closes the fds.
  if (!relay->severed.exchange(true)) {
    SeverBoth(relay->client_fd, relay->target_fd);
  }
}

}  // namespace bw::net
