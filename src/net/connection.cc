#include "net/connection.h"

#include <algorithm>

namespace bw::net {

bool FrameParser::Feed(const void* data, size_t n,
                       std::vector<Frame>* out) {
  if (broken_) return false;
  buffer_.append(static_cast<const char*>(data), n);
  for (;;) {
    if (!have_header_) {
      if (buffer_.size() < kFrameHeaderBytes) return true;
      const auto verdict = DecodeFrameHeader(
          reinterpret_cast<const uint8_t*>(buffer_.data()), max_payload_,
          &header_);
      switch (verdict) {
        case HeaderVerdict::kOk:
          break;
        case HeaderVerdict::kBadMagic:
          broken_ = true;
          error_ = "bad frame magic";
          return false;
        case HeaderVerdict::kBadCrc:
          broken_ = true;
          error_ = "header CRC mismatch";
          return false;
        case HeaderVerdict::kOversized:
          broken_ = true;
          error_ = "declared payload length " +
                   std::to_string(header_.payload_len) + " exceeds cap " +
                   std::to_string(max_payload_);
          return false;
      }
      have_header_ = true;
    }
    const size_t frame_bytes = kFrameHeaderBytes + header_.payload_len;
    if (buffer_.size() < frame_bytes) return true;
    Frame frame;
    frame.header = header_;
    frame.payload = buffer_.substr(kFrameHeaderBytes, header_.payload_len);
    if (!PayloadCrcOk(frame.header, frame.payload)) {
      broken_ = true;
      error_ = "payload CRC mismatch";
      return false;
    }
    buffer_.erase(0, frame_bytes);
    have_header_ = false;
    out->push_back(std::move(frame));
  }
}

bool ResultRateLimiter::Admit(std::chrono::steady_clock::time_point now) {
  if (rate_ <= 0) return true;
  if (!primed_) {
    primed_ = true;
    last_refill_ = now;
  }
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(rate_, tokens_ + elapsed * rate_);
  return tokens_ > 0;
}

bool Connection::EnqueueLocked(std::string frame, size_t max_bytes) {
  if (doomed || closed) return false;
  if (outbox_bytes + frame.size() > max_bytes) {
    doomed = true;
    close_reason = CloseReason::kOutboxOverflow;
    return false;
  }
  outbox_bytes += frame.size();
  outbox.push_back(std::move(frame));
  return true;
}

}  // namespace bw::net
