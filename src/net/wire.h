// Wire protocol for the Blobworld network front end: a length-prefixed
// binary framing with a CRC'd fixed header, request types for k-NN
// search, consistent-range search, insert/delete, stats, and health,
// and streamed responses (zero or more result-batch frames followed by
// one terminal frame carrying status + degraded/pages_skipped
// accounting). Both bwserver and net::Client speak exactly this codec;
// nothing socket-specific lives here, so the frame fuzzer in
// tests/net_test.cc can drive it byte-by-byte.
//
// Frame layout (all integers little-endian; this codec is explicit
// about byte order, not host-order memcpy):
//
//   offset size field
//        0    4 magic        'BWP1' (0x31505742 LE)
//        4    1 type         MsgType
//        5    1 flags        response bits: kFlagFinal/kFlagDegraded/...
//        6    2 status       wire status (responses; 0 in requests)
//        8    8 request_id   client-chosen; echoed on every response
//       16    4 deadline_us  request execution budget in us (0 = none);
//                            propagated into the service's stream
//                            deadline / I/O-watchdog path
//       20    4 payload_len  bytes following the header
//       24    4 payload_crc  CRC-32 of the payload bytes (0 if empty)
//       28    4 header_crc   CRC-32 of bytes [0, 28)
//
// A receiver validates magic and header_crc before trusting
// payload_len, and payload_crc before decoding the payload, so a
// flipped bit anywhere in the frame is detected instead of desyncing
// the stream. Integrity failures (bad magic, bad header CRC, declared
// length over the receiver's cap, bad payload CRC) are
// connection-fatal: there is no way to resynchronize a byte stream
// whose framing cannot be trusted. Semantic failures (unknown type,
// malformed payload, wrong dimensionality) are request-fatal only: the
// receiver still knows the frame boundary, answers with an error
// terminal frame, and keeps the connection.
//
// Wire status registry: values 0..63 are bw::StatusCode via
// StatusCodeToWire (util/status.h); values 64+ are protocol-level
// verdicts minted by the net tier (kWireQuotaExceeded & co below).
// Distinct conditions get distinct codes on purpose: a client seeing
// kWireQuotaExceeded backs off *itself*, kResourceExhausted (read-only
// write path, shed dispatch queue) retries later, kIoError (fail-stop
// write path) does not retry at all.

#ifndef BLOBWORLD_NET_WIRE_H_
#define BLOBWORLD_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "geom/vec.h"
#include "gist/tree.h"
#include "service/query_service.h"
#include "storage/wal_ship.h"
#include "util/status.h"

namespace bw::net {

constexpr uint32_t kWireMagic = 0x31505742;  // "BWP1"
constexpr size_t kFrameHeaderBytes = 32;

/// Hard cap a receiver applies to the *declared* payload length before
/// allocating anything. A frame declaring more is hostile or corrupt.
constexpr uint32_t kMaxPayloadBytes = 4u << 20;

/// Message types. Requests are < 64, responses >= 64.
enum class MsgType : uint8_t {
  // Requests.
  kKnn = 1,     // k-NN search, streamed reply.
  kRange = 2,   // consistent-range search, streamed reply.
  kInsert = 3,  // online insert (requires a write-enabled service).
  kDelete = 4,  // online delete.
  kStats = 5,   // full ServiceSnapshot + net-tier counters.
  kHealth = 6,  // cheap liveness + write-state probe.
  kHello = 7,   // version/feature handshake (optional, first frame).
  // Replica catch-up (minor 1.2, kFeatureCatchup). Pulls read from a
  // healthy source; applies land on the stale target. Every reply is a
  // single terminal frame, so pre-1.2 clients need no pump changes.
  kWalPull = 8,        // committed WAL batches after a tag -> kWalBatchReply.
  kWalApply = 9,       // apply one shipped batch -> kCatchupAck.
  kSnapshotPull = 10,  // page-image run from an offset -> kSnapshotChunk.
  kSnapshotApply = 11,  // apply one chunk (first/last flags) -> kCatchupAck.
  kTreeSum = 12,       // checksum-over-tree handshake -> kTreeSumReply.
  kCatchupPos = 13,    // cheap position poll -> kCatchupPosReply.
  // Responses.
  kResultBatch = 64,  // one batch of k-NN/range results; more follow.
  kFinal = 65,        // terminal frame of a streamed query reply.
  kMutateAck = 66,    // terminal frame of an insert/delete.
  kStatsReply = 67,
  kHealthReply = 68,
  kHelloReply = 69,
  kWalBatchReply = 70,
  kCatchupAck = 71,
  kSnapshotChunk = 72,
  kTreeSumReply = 73,
  kCatchupPosReply = 74,
};

/// True if `type` is a request a server accepts.
constexpr bool IsRequestType(uint8_t type) {
  return type >= 1 && type <= 13;
}

// ---------------------------------------------------------------------------
// Protocol versioning (the kHello handshake).
// ---------------------------------------------------------------------------
//
// The handshake is *optional* for backward compatibility: a client that
// never sends kHello gets pre-handshake behavior (everything in BWP1
// major 1). A client that does send it as its first frame learns the
// server's (major, minor, feature bits) and can gate optional behavior
// — the shard router uses this to refuse fan-out to shards speaking a
// different major instead of mis-decoding frames mid-query.
//
// Rules:
//   - major mismatch: the server answers kHelloReply carrying *its own*
//     version with status kWireVersionMismatch, then dooms the
//     connection. Incompatible peers exchange exactly one frame pair.
//   - minor skew: fine in both directions. Minors only add frame types
//     and feature bits; both sides mask features to the intersection.
//   - feature bits advertise optional capabilities; a bit the receiver
//     does not recognize is ignored (that is what makes minors cheap).

constexpr uint16_t kWireVersionMajor = 1;
constexpr uint16_t kWireVersionMinor = 2;  // 1.1 added kHello; 1.2 catch-up.

// Feature bits advertised in the handshake.
constexpr uint32_t kFeatureStreaming = 1u << 0;  // kResultBatch streams.
constexpr uint32_t kFeatureWrites = 1u << 1;     // insert/delete honored.
constexpr uint32_t kFeatureRouter = 1u << 2;     // peer is a shard router.
constexpr uint32_t kFeatureCatchup = 1u << 3;    // kWalPull & co honored.

/// Feature set a plain bwserver advertises (writes are masked off at
/// runtime when the service is read-only).
constexpr uint32_t kServerFeatures =
    kFeatureStreaming | kFeatureWrites | kFeatureCatchup;

// Response flag bits.
constexpr uint8_t kFlagFinal = 0x01;      // no more frames for this id.
constexpr uint8_t kFlagDegraded = 0x02;   // answer is a genuine subset.
constexpr uint8_t kFlagTruncated = 0x04;  // deadline cut the stream off.

// Protocol-level wire statuses (>= 64; see the registry note above).
constexpr uint16_t kWireQuotaExceeded = 64;  // per-client quota: back off.
constexpr uint16_t kWireShuttingDown = 65;   // server draining: reconnect.
constexpr uint16_t kWireBadFrame = 66;       // framing error: conn closing.
constexpr uint16_t kWireVersionMismatch = 67;  // major skew: do not retry.

/// Human-readable name for a wire status (falls back to the StatusCode
/// name for the 0..63 range).
const char* WireStatusName(uint16_t status);

/// Maps a wire status back to a local Status for client callers. The
/// net-tier verdicts map onto the closest StatusCode semantics:
/// quota-exceeded and shutting-down become kUnavailable (retryable by
/// policy), bad-frame becomes kDataLoss.
Status WireStatusToStatus(uint16_t status, const std::string& message);

/// Decoded frame header (see the layout comment above).
struct FrameHeader {
  MsgType type = MsgType::kKnn;
  uint8_t flags = 0;
  uint16_t status = 0;
  uint64_t request_id = 0;
  uint32_t deadline_us = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// Serializes header + payload into one contiguous wire frame.
std::string EncodeFrame(const FrameHeader& header, std::string_view payload);

/// Why a header failed to decode (connection-fatal conditions).
enum class HeaderVerdict {
  kOk,
  kBadMagic,
  kBadCrc,
  kOversized,  // declared payload_len > max_payload.
};

/// Decodes and validates one header from exactly kFrameHeaderBytes
/// bytes. payload_len is only trustworthy when the verdict is kOk.
HeaderVerdict DecodeFrameHeader(const uint8_t* bytes, uint32_t max_payload,
                                FrameHeader* out);

/// Verifies a complete payload against the header's CRC.
bool PayloadCrcOk(const FrameHeader& header, std::string_view payload);

// ---------------------------------------------------------------------------
// Payload codec: bounded little-endian reader/writer.
// ---------------------------------------------------------------------------

/// Appends little-endian scalars to a payload buffer.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void F32(float v) { Raw(&v, 4); }
  /// Length-prefixed (u16) byte string, truncated at 64 KiB.
  void String(std::string_view s);
  /// Dimension-prefixed (u16) float vector.
  void Vec(const geom::Vec& v);

 private:
  void Raw(const void* data, size_t n);  // little-endian on LE hosts.

  std::string* out_;
};

/// Reads little-endian scalars out of a payload; any out-of-bounds read
/// latches ok()==false and returns zeroes, so decoders can run straight
/// through hostile input and check once at the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  double F64();
  float F32();
  std::string String();
  geom::Vec Vec(size_t max_dim = 4096);

  bool ok() const { return ok_; }
  /// True when the whole payload was consumed (trailing garbage is a
  /// malformed request).
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Request/response payloads.
// ---------------------------------------------------------------------------

/// kKnn request payload. The frame header's deadline_us carries the
/// execution budget; everything else rides here.
struct KnnRequest {
  geom::Vec query;
  uint32_t k = 0;
  /// Results per kResultBatch frame the client wants (server clamps to
  /// its own configured maximum; 0 = server default).
  uint32_t batch_size = 0;
  /// Stop once everything within this distance has been returned
  /// (service::StreamOptions::budget_radius); inf = no radius budget.
  double budget_radius = std::numeric_limits<double>::infinity();
};

/// kRange request payload.
struct RangeRequest {
  geom::Vec query;
  double radius = 0;
};

/// kInsert / kDelete request payload.
struct MutateRequest {
  geom::Vec point;
  uint64_t rid = 0;
};

/// kFinal / kMutateAck terminal payload: per-request accounting the
/// client surfaces alongside the results. `message` is the error text
/// when status != 0.
struct FinalInfo {
  uint64_t total_results = 0;
  uint64_t pages_skipped = 0;
  double server_latency_us = 0;
  uint64_t mutation_tag = 0;  // kMutateAck only: durable commit tag.
  std::string message;
};

/// kHello request payload: the client's version and feature claims.
/// `peer` is a short, human-readable self-description ("bwrouter",
/// "net_smoke") surfaced in server logs/errors, never interpreted.
struct HelloRequest {
  uint16_t major = kWireVersionMajor;
  uint16_t minor = kWireVersionMinor;
  uint32_t features = 0;
  std::string peer;
};

/// kHelloReply payload. On kWireVersionMismatch the server still fills
/// its own version in so the client can report *what* it talked to.
struct HelloReply {
  uint16_t major = kWireVersionMajor;
  uint16_t minor = kWireVersionMinor;
  uint32_t features = 0;
  std::string peer;
};

/// kHealthReply payload.
struct HealthReply {
  uint8_t write_state = 0;  // service::WriteState as u8.
  bool writes_enabled = false;
  bool write_degraded = false;
  uint64_t generation = 0;
  uint64_t completed = 0;
  uint64_t pages_quarantined = 0;
  double uptime_seconds = 0;
};

void EncodeKnnRequest(const KnnRequest& req, std::string* out);
bool DecodeKnnRequest(std::string_view payload, KnnRequest* out);

void EncodeRangeRequest(const RangeRequest& req, std::string* out);
bool DecodeRangeRequest(std::string_view payload, RangeRequest* out);

void EncodeMutateRequest(const MutateRequest& req, std::string* out);
bool DecodeMutateRequest(std::string_view payload, MutateRequest* out);

/// Result batches carry (rid, distance) pairs; leaf page ids are a
/// server-local detail and do not cross the wire.
void EncodeResultBatch(const std::vector<gist::Neighbor>& neighbors,
                       size_t begin, size_t count, std::string* out);
bool DecodeResultBatch(std::string_view payload,
                       std::vector<gist::Neighbor>* out);

void EncodeFinalInfo(const FinalInfo& info, std::string* out);
bool DecodeFinalInfo(std::string_view payload, FinalInfo* out);

/// Stats cross the wire as ordered (name, value) pairs so the client
/// needs no knowledge of the snapshot struct layout.
void EncodeStatsReply(
    const std::vector<std::pair<std::string, double>>& fields,
    std::string* out);
bool DecodeStatsReply(std::string_view payload,
                      std::vector<std::pair<std::string, double>>* out);

void EncodeHealthReply(const HealthReply& reply, std::string* out);
bool DecodeHealthReply(std::string_view payload, HealthReply* out);

void EncodeHelloRequest(const HelloRequest& req, std::string* out);
bool DecodeHelloRequest(std::string_view payload, HelloRequest* out);

void EncodeHelloReply(const HelloReply& reply, std::string* out);
bool DecodeHelloReply(std::string_view payload, HelloReply* out);

// ---------------------------------------------------------------------------
// Replica catch-up payloads (minor 1.2). The bodies reuse the service
// and storage structs directly — the wire tier adds only the byte
// layout, and both ends of a catch-up RPC already speak those types.
// ---------------------------------------------------------------------------

/// kWalPull request: committed batches with tag > after_tag, bounded by
/// max_batches / max_bytes. The server additionally clamps the reply to
/// the frame payload cap; a single batch too big to frame turns the
/// reply into snapshot_needed.
struct WalPullRequest {
  uint64_t after_tag = 0;
  uint32_t max_batches = 0;  // 0 = server default.
  uint32_t max_bytes = 0;    // 0 = server default.
};

/// kSnapshotPull request: a run of page images starting at start_page.
struct SnapshotPullRequest {
  uint32_t start_page = 0;
  uint32_t max_bytes = 0;  // 0 = server default; server clamps to cap.
};

/// kSnapshotApply request: one chunk plus its position in the restore.
struct SnapshotApplyRequest {
  bool first = false;
  bool last = false;
  service::SnapshotChunk chunk;
};

/// kCatchupAck payload: the target's durable tag after the apply (also
/// what makes retried applies observable as no-ops).
struct CatchupAck {
  uint64_t last_tag = 0;
};

void EncodeWalPullRequest(const WalPullRequest& req, std::string* out);
bool DecodeWalPullRequest(std::string_view payload, WalPullRequest* out);

/// kWalBatchReply body: flags + last_tag + length-prefixed shipped
/// batches (storage::EncodeShippedBatch bytes, oldest first).
void EncodeWalTail(const service::WalTail& tail, std::string* out);
bool DecodeWalTail(std::string_view payload, service::WalTail* out);

/// kWalApply body is exactly one storage::EncodeShippedBatch image.
void EncodeWalApply(const storage::ShippedBatch& batch, std::string* out);
bool DecodeWalApply(std::string_view payload, storage::ShippedBatch* out);

void EncodeSnapshotPullRequest(const SnapshotPullRequest& req,
                               std::string* out);
bool DecodeSnapshotPullRequest(std::string_view payload,
                               SnapshotPullRequest* out);

void EncodeSnapshotChunk(const service::SnapshotChunk& chunk,
                         std::string* out);
bool DecodeSnapshotChunk(std::string_view payload,
                         service::SnapshotChunk* out);

void EncodeSnapshotApplyRequest(const SnapshotApplyRequest& req,
                                std::string* out);
bool DecodeSnapshotApplyRequest(std::string_view payload,
                                SnapshotApplyRequest* out);

void EncodeCatchupAck(const CatchupAck& ack, std::string* out);
bool DecodeCatchupAck(std::string_view payload, CatchupAck* out);

void EncodeTreeSumReply(const service::TreeSum& sum, std::string* out);
bool DecodeTreeSumReply(std::string_view payload, service::TreeSum* out);

void EncodeCatchupPosReply(const service::CatchupPosition& pos,
                           std::string* out);
bool DecodeCatchupPosReply(std::string_view payload,
                           service::CatchupPosition* out);

}  // namespace bw::net

#endif  // BLOBWORLD_NET_WIRE_H_
