#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bw::net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ClientOptions options) {
  const std::string address = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
                        options.io_timeout)
                        .count();
  tv.tv_sec = usec / 1000000;
  tv.tv_usec = usec % 1000000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  auto client = std::unique_ptr<Client>(new Client(fd, options));
  if (options.handshake) {
    BW_RETURN_IF_ERROR(client->Handshake());
  }
  return client;
}

Status Client::Handshake() {
  const uint64_t id = next_id_++;
  HelloRequest req;
  req.major = kWireVersionMajor;
  req.minor = kWireVersionMinor;
  req.features = options_.features;
  req.peer = options_.peer;
  std::string payload;
  EncodeHelloRequest(req, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kHello, id, 0, payload));
  BW_RETURN_IF_ERROR(PumpUntilDone(id));
  auto node = pending_.extract(id);
  Pending& p = node.mapped();
  if (p.final_header.type == MsgType::kFinal &&
      p.final_header.status == StatusCodeToWire(StatusCode::kNotSupported)) {
    // A server that predates the handshake answers "unknown request
    // type" and keeps the connection: fall back to pre-handshake
    // behavior (server_hello_ stays default, features == 0).
    return Status::OK();
  }
  if (p.final_header.type != MsgType::kHelloReply ||
      !DecodeHelloReply(p.final_payload, &server_hello_)) {
    return Poison(Status::DataLoss("malformed hello reply"));
  }
  if (p.final_header.status != 0) {
    return Poison(WireStatusToStatus(
        p.final_header.status,
        "server speaks protocol " + std::to_string(server_hello_.major) +
            "." + std::to_string(server_hello_.minor) + " (" +
            server_hello_.peer + "), this client speaks " +
            std::to_string(kWireVersionMajor) + "." +
            std::to_string(kWireVersionMinor)));
  }
  return Status::OK();
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::Poison(Status status) {
  if (broken_.ok()) broken_ = status;
  return broken_;
}

Status Client::SendFrame(MsgType type, uint64_t request_id,
                         uint32_t deadline_us, std::string_view payload) {
  if (!broken_.ok()) return broken_;
  FrameHeader h;
  h.type = type;
  h.request_id = request_id;
  h.deadline_us = deadline_us;
  const std::string frame = EncodeFrame(h, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Poison(
        Status::IoError(std::string("send: ") + std::strerror(errno)));
  }
  pending_.emplace(request_id, Pending{});
  return Status::OK();
}

Status Client::PumpOnce() {
  if (!broken_.ok()) return broken_;
  for (;;) {
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      return Poison(Status::IoError("server closed the connection"));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Poison(Status::IoError("receive timeout"));
      }
      return Poison(
          Status::IoError(std::string("read: ") + std::strerror(errno)));
    }
    std::vector<FrameParser::Frame> frames;
    const bool intact = parser_.Feed(buf, static_cast<size_t>(n), &frames);
    for (auto& frame : frames) {
      auto target = pending_.find(frame.header.request_id);
      if (target == pending_.end()) continue;  // stale/unknown id: drop.
      Pending& p = target->second;
      if (frame.header.type == MsgType::kResultBatch) {
        if (!DecodeResultBatch(frame.payload, &p.neighbors)) {
          return Poison(Status::DataLoss("malformed result batch frame"));
        }
        continue;
      }
      // Any other frame from the server is terminal for its id.
      p.final_header = frame.header;
      p.final_payload = std::move(frame.payload);
      p.done = true;
    }
    if (!intact) {
      return Poison(Status::DataLoss(parser_.error()));
    }
    return Status::OK();
  }
}

Status Client::PumpUntilDone(uint64_t request_id) {
  if (!broken_.ok()) return broken_;
  for (;;) {
    auto it = pending_.find(request_id);
    if (it == pending_.end()) {
      return Status::InvalidArgument("unknown request id " +
                                     std::to_string(request_id));
    }
    if (it->second.done) return Status::OK();
    BW_RETURN_IF_ERROR(PumpOnce());
  }
}

// ---------------------------------------------------------------------------
// Submissions
// ---------------------------------------------------------------------------

Result<uint64_t> Client::SubmitKnn(const geom::Vec& query, size_t k,
                                   QueryLimits limits) {
  const uint64_t id = next_id_++;
  KnnRequest req;
  req.query = query;
  req.k = static_cast<uint32_t>(k);
  req.batch_size = limits.batch_size;
  req.budget_radius = limits.budget_radius;
  std::string payload;
  EncodeKnnRequest(req, &payload);
  BW_RETURN_IF_ERROR(
      SendFrame(MsgType::kKnn, id, limits.deadline_us, payload));
  return id;
}

Result<uint64_t> Client::SubmitRange(const geom::Vec& query, double radius,
                                     uint32_t deadline_us) {
  const uint64_t id = next_id_++;
  RangeRequest req;
  req.query = query;
  req.radius = radius;
  std::string payload;
  EncodeRangeRequest(req, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kRange, id, deadline_us, payload));
  return id;
}

Result<uint64_t> Client::SubmitInsert(const geom::Vec& point, uint64_t rid) {
  const uint64_t id = next_id_++;
  MutateRequest req;
  req.point = point;
  req.rid = rid;
  std::string payload;
  EncodeMutateRequest(req, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kInsert, id, 0, payload));
  return id;
}

Result<uint64_t> Client::SubmitDelete(const geom::Vec& point, uint64_t rid) {
  const uint64_t id = next_id_++;
  MutateRequest req;
  req.point = point;
  req.rid = rid;
  std::string payload;
  EncodeMutateRequest(req, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kDelete, id, 0, payload));
  return id;
}

Result<uint64_t> Client::SubmitStats() {
  const uint64_t id = next_id_++;
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kStats, id, 0, {}));
  return id;
}

Result<uint64_t> Client::SubmitHealth() {
  const uint64_t id = next_id_++;
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kHealth, id, 0, {}));
  return id;
}

Result<uint64_t> Client::SubmitCatchupPos() {
  const uint64_t id = next_id_++;
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kCatchupPos, id, 0, {}));
  return id;
}

Result<uint64_t> Client::SubmitWalPull(uint64_t after_tag,
                                       uint32_t max_batches,
                                       uint32_t max_bytes) {
  const uint64_t id = next_id_++;
  WalPullRequest req;
  req.after_tag = after_tag;
  req.max_batches = max_batches;
  req.max_bytes = max_bytes;
  std::string payload;
  EncodeWalPullRequest(req, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kWalPull, id, 0, payload));
  return id;
}

Result<uint64_t> Client::SubmitWalApply(const storage::ShippedBatch& batch) {
  const uint64_t id = next_id_++;
  std::string payload;
  EncodeWalApply(batch, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kWalApply, id, 0, payload));
  return id;
}

Result<uint64_t> Client::SubmitSnapshotPull(uint32_t start_page,
                                            uint32_t max_bytes) {
  const uint64_t id = next_id_++;
  SnapshotPullRequest req;
  req.start_page = start_page;
  req.max_bytes = max_bytes;
  std::string payload;
  EncodeSnapshotPullRequest(req, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kSnapshotPull, id, 0, payload));
  return id;
}

Result<uint64_t> Client::SubmitSnapshotApply(
    const service::SnapshotChunk& chunk, bool first, bool last) {
  const uint64_t id = next_id_++;
  SnapshotApplyRequest req;
  req.first = first;
  req.last = last;
  req.chunk = chunk;
  std::string payload;
  EncodeSnapshotApplyRequest(req, &payload);
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kSnapshotApply, id, 0, payload));
  return id;
}

Result<uint64_t> Client::SubmitTreeSum() {
  const uint64_t id = next_id_++;
  BW_RETURN_IF_ERROR(SendFrame(MsgType::kTreeSum, id, 0, {}));
  return id;
}

// ---------------------------------------------------------------------------
// Awaits
// ---------------------------------------------------------------------------

Result<QueryReply> Client::AwaitQuery(uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  QueryReply reply;
  reply.neighbors = std::move(p.neighbors);
  reply.wire_status = p.final_header.status;
  reply.degraded = (p.final_header.flags & kFlagDegraded) != 0;
  reply.truncated = (p.final_header.flags & kFlagTruncated) != 0;
  FinalInfo info;
  if (DecodeFinalInfo(p.final_payload, &info)) {
    reply.pages_skipped = info.pages_skipped;
    reply.server_latency_us = info.server_latency_us;
    reply.status = WireStatusToStatus(reply.wire_status, info.message);
  } else {
    reply.status = WireStatusToStatus(reply.wire_status, "");
  }
  return reply;
}

Result<MutateReply> Client::AwaitMutation(uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  MutateReply reply;
  reply.wire_status = p.final_header.status;
  FinalInfo info;
  if (DecodeFinalInfo(p.final_payload, &info)) {
    reply.tag = info.mutation_tag;
    reply.status = WireStatusToStatus(reply.wire_status, info.message);
  } else {
    reply.status = WireStatusToStatus(reply.wire_status, "");
  }
  return reply;
}

Result<std::vector<std::pair<std::string, double>>> Client::AwaitStats(
    uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  if (p.final_header.status != 0) {
    return WireStatusToStatus(p.final_header.status, "stats request failed");
  }
  std::vector<std::pair<std::string, double>> fields;
  if (!DecodeStatsReply(p.final_payload, &fields)) {
    return Poison(Status::DataLoss("malformed stats reply"));
  }
  return fields;
}

Result<HealthReply> Client::AwaitHealth(uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  if (p.final_header.status != 0) {
    return WireStatusToStatus(p.final_header.status,
                              "health request failed");
  }
  HealthReply reply;
  if (!DecodeHealthReply(p.final_payload, &reply)) {
    return Poison(Status::DataLoss("malformed health reply"));
  }
  return reply;
}

namespace {

/// Error terminal frames (MsgType::kFinal) carry a FinalInfo payload;
/// surface its message in the Status handed back to the caller.
Status TerminalError(const FrameHeader& header, const std::string& payload) {
  FinalInfo info;
  const std::string message =
      DecodeFinalInfo(payload, &info) ? info.message : std::string();
  return WireStatusToStatus(header.status, message);
}

}  // namespace

Result<service::CatchupPosition> Client::AwaitCatchupPos(
    uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  if (p.final_header.status != 0) {
    return TerminalError(p.final_header, p.final_payload);
  }
  service::CatchupPosition pos;
  if (p.final_header.type != MsgType::kCatchupPosReply ||
      !DecodeCatchupPosReply(p.final_payload, &pos)) {
    return Poison(Status::DataLoss("malformed catch-up position reply"));
  }
  return pos;
}

Result<service::WalTail> Client::AwaitWalTail(uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  if (p.final_header.status != 0) {
    return TerminalError(p.final_header, p.final_payload);
  }
  service::WalTail tail;
  if (p.final_header.type != MsgType::kWalBatchReply ||
      !DecodeWalTail(p.final_payload, &tail)) {
    return Poison(Status::DataLoss("malformed WAL tail reply"));
  }
  return tail;
}

Result<CatchupAck> Client::AwaitCatchupAck(uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  if (p.final_header.status != 0) {
    return TerminalError(p.final_header, p.final_payload);
  }
  CatchupAck ack;
  if (p.final_header.type != MsgType::kCatchupAck ||
      !DecodeCatchupAck(p.final_payload, &ack)) {
    return Poison(Status::DataLoss("malformed catch-up ack"));
  }
  return ack;
}

Result<service::SnapshotChunk> Client::AwaitSnapshotChunk(
    uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  if (p.final_header.status != 0) {
    return TerminalError(p.final_header, p.final_payload);
  }
  service::SnapshotChunk chunk;
  if (p.final_header.type != MsgType::kSnapshotChunk ||
      !DecodeSnapshotChunk(p.final_payload, &chunk)) {
    return Poison(Status::DataLoss("malformed snapshot chunk reply"));
  }
  return chunk;
}

Result<service::TreeSum> Client::AwaitTreeSum(uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  if (p.final_header.status != 0) {
    return TerminalError(p.final_header, p.final_payload);
  }
  service::TreeSum sum;
  if (p.final_header.type != MsgType::kTreeSumReply ||
      !DecodeTreeSumReply(p.final_payload, &sum)) {
    return Poison(Status::DataLoss("malformed tree checksum reply"));
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Incremental streaming
// ---------------------------------------------------------------------------

Result<std::optional<gist::Neighbor>> Client::NextResult(
    uint64_t request_id) {
  for (;;) {
    auto it = pending_.find(request_id);
    if (it == pending_.end()) {
      return Status::InvalidArgument("unknown request id " +
                                     std::to_string(request_id));
    }
    Pending& p = it->second;
    if (p.consumed < p.neighbors.size()) {
      return std::optional<gist::Neighbor>(p.neighbors[p.consumed++]);
    }
    if (p.done) return std::optional<gist::Neighbor>();
    BW_RETURN_IF_ERROR(PumpOnce());
  }
}

Result<QueryReply> Client::FinishQuery(uint64_t request_id) {
  BW_RETURN_IF_ERROR(PumpUntilDone(request_id));
  auto node = pending_.extract(request_id);
  Pending& p = node.mapped();
  QueryReply reply;
  reply.neighbors.assign(p.neighbors.begin() + p.consumed,
                         p.neighbors.end());
  reply.wire_status = p.final_header.status;
  reply.degraded = (p.final_header.flags & kFlagDegraded) != 0;
  reply.truncated = (p.final_header.flags & kFlagTruncated) != 0;
  FinalInfo info;
  if (DecodeFinalInfo(p.final_payload, &info)) {
    reply.pages_skipped = info.pages_skipped;
    reply.server_latency_us = info.server_latency_us;
    reply.status = WireStatusToStatus(reply.wire_status, info.message);
  } else {
    reply.status = WireStatusToStatus(reply.wire_status, "");
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Synchronous wrappers
// ---------------------------------------------------------------------------

Result<QueryReply> Client::Knn(const geom::Vec& query, size_t k,
                               QueryLimits limits) {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitKnn(query, k, limits));
  return AwaitQuery(id);
}

Result<QueryReply> Client::Range(const geom::Vec& query, double radius,
                                 uint32_t deadline_us) {
  BW_ASSIGN_OR_RETURN(const uint64_t id,
                      SubmitRange(query, radius, deadline_us));
  return AwaitQuery(id);
}

Result<MutateReply> Client::Insert(const geom::Vec& point, uint64_t rid) {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitInsert(point, rid));
  return AwaitMutation(id);
}

Result<MutateReply> Client::Remove(const geom::Vec& point, uint64_t rid) {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitDelete(point, rid));
  return AwaitMutation(id);
}

Result<std::vector<std::pair<std::string, double>>> Client::Stats() {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitStats());
  return AwaitStats(id);
}

Result<HealthReply> Client::Health() {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitHealth());
  return AwaitHealth(id);
}

Result<service::CatchupPosition> Client::CatchupPos() {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitCatchupPos());
  return AwaitCatchupPos(id);
}

Result<service::WalTail> Client::PullWal(uint64_t after_tag,
                                         uint32_t max_batches,
                                         uint32_t max_bytes) {
  BW_ASSIGN_OR_RETURN(const uint64_t id,
                      SubmitWalPull(after_tag, max_batches, max_bytes));
  return AwaitWalTail(id);
}

Result<CatchupAck> Client::ApplyWal(const storage::ShippedBatch& batch) {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitWalApply(batch));
  return AwaitCatchupAck(id);
}

Result<service::SnapshotChunk> Client::PullSnapshot(uint32_t start_page,
                                                    uint32_t max_bytes) {
  BW_ASSIGN_OR_RETURN(const uint64_t id,
                      SubmitSnapshotPull(start_page, max_bytes));
  return AwaitSnapshotChunk(id);
}

Result<CatchupAck> Client::ApplySnapshot(const service::SnapshotChunk& chunk,
                                         bool first, bool last) {
  BW_ASSIGN_OR_RETURN(const uint64_t id,
                      SubmitSnapshotApply(chunk, first, last));
  return AwaitCatchupAck(id);
}

Result<service::TreeSum> Client::TreeSum() {
  BW_ASSIGN_OR_RETURN(const uint64_t id, SubmitTreeSum());
  return AwaitTreeSum(id);
}

}  // namespace bw::net
