// bw::net::Server — the network front end over a QueryService: a
// non-blocking epoll accept/worker loop speaking the wire protocol in
// net/wire.h. This is the tier that turns the paper's access method
// into something that can serve real traffic: clients connect over TCP,
// pipeline requests, and stream k-NN result frames back, while the
// server sheds overload *before* it reaches the query workers.
//
// Threading model (TerraServer-style thin gateway):
//
//   [accept + epoll I/O threads]  -- never block, never run a query:
//     read bytes -> FrameParser -> validate -> quota check -> dispatch
//     queue; flush outboxes; enforce idle timeouts and write-buffer
//     backpressure.
//   [dispatch threads]            -- the only place that waits on the
//     service: decode the request, submit it through QueryService's
//     admission control, wait for the future, encode the streamed
//     response into the connection's bounded outbox, wake the I/O
//     thread.
//
// Load-shedding layers, outermost first, each with a distinct wire
// status so clients can tell "back off" from "retry later" from
// "fail-stop":
//   1. accept:   over max_connections -> connection refused (closed).
//   2. quota:    per-connection in-flight cap / results-per-second
//                token bucket -> kWireQuotaExceeded (client backs off).
//   3. dispatch: bounded dispatch queue full -> kResourceExhausted
//                (server saturated; retry later).
//   4. service:  QueryService's own bounded admission queue ->
//                kUnavailable (transient, retryable).
//   5. writes:   kReadOnly write path -> kResourceExhausted; kFailed ->
//                kIoError (fail-stop: do not retry this process).
//
// A slow or malicious client can never stall a worker: dispatch threads
// append to a bounded outbox and doom the connection on overflow
// instead of blocking; I/O threads stop reading a connection whose
// outbox passes the backpressure watermark; idle/read timeouts reap
// connections that stop making progress.
//
// Shutdown() is graceful: the listener closes, new requests are
// answered kWireShuttingDown, in-flight requests drain and their
// result streams flush (bounded by drain_timeout), then connections
// close and all threads join.

#ifndef BLOBWORLD_NET_SERVER_H_
#define BLOBWORLD_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/backend.h"
#include "net/connection.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "util/status.h"

namespace bw::net {

struct ServerOptions {
  /// Port to listen on; 0 picks an ephemeral port (see Server::port()).
  uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  /// epoll I/O loops. One is right for almost every deployment (the
  /// loops never block); more shards connections across loops.
  size_t io_threads = 1;
  /// Threads that execute requests through the service. These block on
  /// query futures, so size them like service workers.
  size_t dispatch_threads = 4;
  /// Bounded queue between I/O and dispatch: the net tier's admission
  /// control. Requests finding it full are shed with
  /// kResourceExhausted before touching the service.
  size_t dispatch_queue_capacity = 256;
  /// Accept cap; connections beyond it are closed immediately.
  size_t max_connections = 1024;
  /// Per-connection quotas (see QuotaOptions).
  QuotaOptions quota;
  /// Per-connection write-buffer cap: a reader slower than this much
  /// backlog is doomed and closed. Dispatch threads never block on it.
  size_t max_outbox_bytes = 8u << 20;
  /// Largest request payload accepted; a frame declaring more is a
  /// framing error (connection-fatal).
  uint32_t max_payload_bytes = kMaxPayloadBytes;
  /// Connections with no read/write progress for this long are closed.
  std::chrono::milliseconds idle_timeout{30000};
  /// Graceful-shutdown bound: how long Shutdown() waits for in-flight
  /// requests to finish and outboxes to flush.
  std::chrono::milliseconds drain_timeout{5000};
  /// Default results per kResultBatch frame (clients may ask for less).
  size_t results_per_frame = 64;
};

/// Net-tier counters, all monotonic except active_connections.
struct NetStats {
  uint64_t accepted = 0;
  uint64_t refused = 0;  // over max_connections.
  uint64_t active_connections = 0;
  uint64_t requests = 0;        // complete frames parsed.
  uint64_t responses = 0;       // terminal frames queued.
  uint64_t shed_quota = 0;      // kWireQuotaExceeded verdicts.
  uint64_t shed_dispatch = 0;   // dispatch queue full.
  uint64_t shed_shutdown = 0;   // arrived while draining.
  uint64_t bad_requests = 0;    // semantic failures (kept the conn).
  uint64_t closed_eof = 0;
  uint64_t closed_bad_frame = 0;  // framing integrity failures.
  uint64_t closed_overflow = 0;   // slow-reader outbox overflow.
  uint64_t closed_idle = 0;
  uint64_t closed_error = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class Server {
 public:
  /// The service must outlive the server. Mutation requests are only
  /// honored when the service was built with writes enabled; otherwise
  /// they answer kInvalidArgument. (Sugar for the Backend constructor
  /// over a QueryServiceBackend.)
  Server(service::QueryService* service, ServerOptions options);

  /// Serves an arbitrary backend — this is how bwrouter puts a whole
  /// shard fleet behind the unchanged wire protocol. The backend must
  /// outlive the server and be safe to call from every dispatch thread.
  Server(Backend* backend, ServerOptions options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Shutdown() if still running.
  ~Server();

  /// Binds, listens, and starts the I/O + dispatch threads.
  Status Start();

  /// Graceful shutdown (see the file comment). Idempotent.
  void Shutdown();

  /// Port actually bound (after Start(); resolves port=0 requests).
  uint16_t port() const { return bound_port_; }

  NetStats stats() const;

  /// Net-tier counters as (name, value) pairs, "net."-prefixed — the
  /// tail of the kStats wire reply after the service snapshot fields.
  std::vector<std::pair<std::string, double>> StatsFields() const;

 private:
  struct DispatchTask {
    std::shared_ptr<Connection> conn;
    size_t io_index = 0;
    FrameParser::Frame frame;
  };

  /// One epoll loop: listener (index 0 only), its share of the
  /// connections, and an eventfd other threads use to hand it work.
  struct IoLoop {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    // Connections owned by this loop, keyed by fd (loop-thread only).
    std::unordered_map<int, std::shared_ptr<Connection>> conns;
    // Cross-thread inbox, guarded by mutex: freshly accepted fds and
    // connections with new outbox data ("kicks").
    std::mutex mutex;
    std::vector<int> pending_fds;
    std::vector<std::shared_ptr<Connection>> kicks;
  };

  void IoLoopMain(size_t index);
  void DispatchLoopMain();

  void AcceptReady(IoLoop& loop);
  void AdoptConnection(IoLoop& loop, size_t index, int fd);
  void ReadReady(IoLoop& loop, size_t index,
                 const std::shared_ptr<Connection>& conn);
  /// Handles one parsed frame on the I/O thread: quota + dispatch, or
  /// an immediate error/stats reply.
  void HandleFrame(IoLoop& loop, size_t index,
                   const std::shared_ptr<Connection>& conn,
                   FrameParser::Frame frame);
  /// Encodes a terminal error frame for `request_id` straight into the
  /// outbox (I/O thread or dispatch thread; takes the conn mutex).
  void QueueErrorFinal(const std::shared_ptr<Connection>& conn,
                       uint64_t request_id, uint16_t wire_status,
                       const std::string& message);
  /// Streams a completed query response into the outbox as result-batch
  /// frames plus a terminal frame.
  void QueueQueryResponse(const std::shared_ptr<Connection>& conn,
                          uint64_t request_id,
                          const service::QueryResponse& response,
                          size_t batch_size);
  /// Flushes as much outbox as the socket accepts; arms/disarms
  /// EPOLLOUT and applies read backpressure. Loop thread only.
  void FlushConnection(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  void CloseConnection(IoLoop& loop, const std::shared_ptr<Connection>& conn,
                       CloseReason reason);
  /// Wakes `io_index`'s loop to flush `conn` (dispatch threads call
  /// this after queueing response frames).
  void KickIo(size_t io_index, const std::shared_ptr<Connection>& conn);

  void ExecuteQuery(const DispatchTask& task);
  void ExecuteMutation(const DispatchTask& task);
  /// Replica catch-up requests (kWalPull..kCatchupPos): decode, call
  /// the backend, answer with one terminal reply frame.
  void ExecuteCatchup(const DispatchTask& task);
  void QueueStatsReply(const std::shared_ptr<Connection>& conn,
                       uint64_t request_id);
  void QueueHealthReply(const std::shared_ptr<Connection>& conn,
                        uint64_t request_id);
  /// Answers a kHello handshake on the I/O thread. A major-version
  /// mismatch replies kWireVersionMismatch (still carrying the server's
  /// own version) and dooms the connection once the reply flushes.
  void HandleHello(IoLoop& loop, const std::shared_ptr<Connection>& conn,
                   const FrameParser::Frame& frame);

  /// Queues one encoded frame on `conn` with server-wide outbox
  /// accounting (the drain condition watches outbox_total_). Takes the
  /// conn mutex. Returns false if the connection is doomed/closed.
  bool Enqueue(const std::shared_ptr<Connection>& conn, std::string frame);
  /// Marks one dispatched request answered (terminal frame queued or
  /// dropped): decrements the conn's in-flight count and the global
  /// drain counter.
  void FinishRequest(const std::shared_ptr<Connection>& conn,
                     double results_charged);

  /// True once every dispatch task has finished and every outbox is
  /// flushed (the graceful-drain condition).
  bool Drained();

  /// Set by the QueryService constructor; null when serving an
  /// externally owned Backend.
  std::unique_ptr<Backend> owned_backend_;
  Backend* backend_;
  ServerOptions options_;
  size_t tree_dim_ = 0;
  // Atomic: Shutdown() retires the listener while I/O loop 0 still
  // compares ready fds against it.
  std::atomic<int> listen_fd_{-1};
  uint16_t bound_port_ = 0;
  std::chrono::steady_clock::time_point start_time_;

  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::vector<std::thread> dispatchers_;

  std::mutex dispatch_mutex_;
  std::condition_variable dispatch_cv_;
  std::deque<DispatchTask> dispatch_queue_;
  std::atomic<size_t> executing_{0};
  /// Requests dispatched whose terminal frame is not yet queued.
  std::atomic<size_t> inflight_total_{0};
  /// Bytes sitting in connection outboxes, server-wide.
  std::atomic<size_t> outbox_total_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};

  // NetStats counters (relaxed atomics; see NetStats for meanings).
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> shed_quota_{0};
  std::atomic<uint64_t> shed_dispatch_{0};
  std::atomic<uint64_t> shed_shutdown_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> closed_eof_{0};
  std::atomic<uint64_t> closed_bad_frame_{0};
  std::atomic<uint64_t> closed_overflow_{0};
  std::atomic<uint64_t> closed_idle_{0};
  std::atomic<uint64_t> closed_error_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace bw::net

#endif  // BLOBWORLD_NET_SERVER_H_
