// Per-connection state for the network front end, kept separate from
// the epoll machinery in server.cc so the pure byte-stream logic (frame
// reassembly, quota accounting, bounded outbox) is directly testable —
// the frame fuzzer in tests/net_test.cc drives FrameParser with hostile
// byte sequences without a socket in sight.
//
// A connection is a little state machine:
//
//   reading --> (complete frame) --> dispatch --> response in outbox
//      |                                              |
//      +--- integrity failure ----> doomed <--- outbox overflow
//
// Integrity failures (bad magic, bad header CRC, oversized declared
// length, bad payload CRC) doom the connection: the byte stream cannot
// be resynchronized, so the server sends one kWireBadFrame terminal
// frame (best effort) and closes after flushing. Semantic failures
// (unknown request type, malformed payload) answer with an error frame
// and keep reading. A slow reader that lets its outbox exceed
// max_outbox_bytes is also doomed — worker threads never block on a
// client's socket buffer.

#ifndef BLOBWORLD_NET_CONNECTION_H_
#define BLOBWORLD_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.h"

namespace bw::net {

/// Reassembles wire frames from an arbitrary byte-chunk sequence.
/// Feed() consumes every byte it is given; once a fatal framing error
/// is hit the parser latches the error and ignores further input.
class FrameParser {
 public:
  struct Frame {
    FrameHeader header;
    std::string payload;
  };

  explicit FrameParser(uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends complete frames to `out`. Returns false once the stream is
  /// fatally broken (error() describes why); complete frames parsed
  /// before the error are still delivered.
  bool Feed(const void* data, size_t n, std::vector<Frame>* out);

  bool broken() const { return broken_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered toward the next incomplete frame.
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  uint32_t max_payload_;
  std::string buffer_;  // header-so-far or header+payload-so-far.
  bool have_header_ = false;
  FrameHeader header_;
  bool broken_ = false;
  std::string error_;
};

/// Per-connection quota configuration (see ServerOptions for defaults).
struct QuotaOptions {
  /// Parsed-but-unanswered requests allowed at once; further requests
  /// are answered kWireQuotaExceeded without touching the service.
  size_t max_inflight = 32;
  /// Token bucket on *results returned* per second (the expensive unit
  /// of this workload: one k=200 query costs 200 tokens). 0 = no limit.
  double max_results_per_sec = 0;
};

/// Result-rate token bucket. Single-threaded per connection use; the
/// server serializes access through the connection mutex.
class ResultRateLimiter {
 public:
  void Configure(double results_per_sec) {
    rate_ = results_per_sec;
    tokens_ = results_per_sec;  // one second of burst.
  }

  /// True if a new request may run now. Refills from elapsed wall time;
  /// the bucket may run negative (a request's cost is only known once
  /// it completes), which simply delays the next admission.
  bool Admit(std::chrono::steady_clock::time_point now);

  /// Charges the completed request's result count against the bucket.
  void Charge(double results) {
    if (rate_ > 0) tokens_ -= results;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_ = 0;
  double tokens_ = 0;
  bool primed_ = false;
  std::chrono::steady_clock::time_point last_refill_;
};

/// Why a connection is being torn down, for the server's counters.
enum class CloseReason {
  kNone,
  kClientEof,     // orderly shutdown from the peer.
  kReadError,
  kBadFrame,      // framing integrity failure.
  kOutboxOverflow,  // slow reader exceeded the write-buffer cap.
  kIdleTimeout,
  kServerShutdown,
};

/// One accepted connection. The owning I/O thread touches fd/reader
/// state without locks; the outbox and flags shared with dispatch
/// threads are guarded by `mutex`.
struct Connection {
  explicit Connection(int fd_in, uint32_t max_payload)
      : fd(fd_in), parser(max_payload) {}

  // --- I/O-thread-only state -------------------------------------------
  int fd;
  FrameParser parser;
  std::chrono::steady_clock::time_point last_activity;
  bool want_write = false;   // EPOLLOUT currently armed.
  bool read_paused = false;  // EPOLLIN dropped due to outbox pressure.

  // --- Shared state (guarded by mutex) ---------------------------------
  std::mutex mutex;
  std::deque<std::string> outbox;  // encoded frames awaiting write.
  size_t outbox_bytes = 0;
  size_t outbox_offset = 0;  // bytes of outbox.front() already written.
  size_t inflight = 0;       // dispatched, terminal frame not yet queued.
  ResultRateLimiter limiter;
  bool doomed = false;  // close after flushing whatever is queued.
  bool closed = false;  // fd is gone; dispatch results are dropped.
  CloseReason close_reason = CloseReason::kNone;

  /// Queues an encoded frame for writing. Returns false (and dooms the
  /// connection) if that would push the outbox past `max_bytes`.
  /// Caller must hold `mutex`.
  bool EnqueueLocked(std::string frame, size_t max_bytes);
};

}  // namespace bw::net

#endif  // BLOBWORLD_NET_CONNECTION_H_
