// Synthetic stand-in for the Berkeley Digital Library image collection.
//
// Images are composed of a background plus a few elliptical objects.
// Object appearance is drawn from a low-dimensional latent family —
// Lab color (3 parameters), color spread (1) and texture strength (1) —
// sampled around a fixed set of latent clusters ("object categories").
// This gives the two properties the paper's experiments rest on:
//   1. blob color histograms concentrate their variance in ~5 SVD
//      dimensions (Figure 6 saturates near 5-D), and
//   2. reduced feature vectors are clustered, not uniform, which is what
//      makes bounding-predicate geometry matter for the AM experiments.
//
// The same latent model also backs a direct descriptor sampler used by
// the large-scale AM benches, bypassing the pixel pipeline for speed
// while drawing from the identical feature distribution.

#ifndef BLOBWORLD_BLOBWORLD_SYNTHETIC_H_
#define BLOBWORLD_BLOBWORLD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "blobworld/color.h"
#include "util/random.h"

namespace bw::blobworld {

/// Latent appearance parameters of one object/blob.
struct BlobLatent {
  LabColor color;        // mean Lab color.
  float spread = 6.0f;   // Lab-space color spread (sigma).
  float texture = 0.2f;  // texture strength in [0, 1].
};

/// The latent family: a mixture of appearance clusters.
class LatentModel {
 public:
  /// `within_cluster_sigma` is the Lab-space spread of blob colors around
  /// their cluster center; small values give tightly clustered features
  /// (real image collections sit at the tight end: most blobs are sky,
  /// skin, foliage... variations on a modest set of appearances).
  /// `zipf_exponent` skews cluster popularity (0 = uniform; 1 =
  /// realistic image collections, where a few appearance families such
  /// as sky or skin dominate the blob population).
  /// `local_dims` > 0 gives each cluster a random `local_dims`-
  /// dimensional appearance subspace (a "sheet"): blobs of one material
  /// vary along a few directions (shading, slight hue shift) rather
  /// than isotropically. 0 = isotropic Gaussian clusters.
  LatentModel(size_t num_clusters, uint64_t seed,
              double within_cluster_sigma = 1.5, double zipf_exponent = 0.0,
              size_t local_dims = 0);

  size_t num_clusters() const { return clusters_.size(); }

  /// Draws a latent: random cluster center + within-cluster noise.
  BlobLatent Sample(Rng& rng) const;

  /// The expected 218-bin histogram of a blob with this latent: a
  /// Gaussian color bump of scale `spread` around the mean color,
  /// discretized over the layout's bin colors.
  geom::Vec ExpectedHistogram(const BlobLatent& latent,
                              const HistogramLayout& layout) const;

 private:
  std::vector<BlobLatent> clusters_;
  double within_cluster_sigma_;
  size_t local_dims_;
  // Per cluster, local_dims_ orthonormal directions in (L, a, b, spread)
  // latent space (flattened 4-vectors).
  std::vector<std::vector<double>> sheet_dirs_;
  std::vector<double> sampling_cdf_;  // cluster popularity CDF.
};

/// A rasterized synthetic image: per-pixel Lab color plus a local
/// texture-contrast channel.
class Image {
 public:
  Image(size_t width, size_t height)
      : width_(width), height_(height), colors_(width * height),
        contrast_(width * height, 0.0f) {}

  size_t width() const { return width_; }
  size_t height() const { return height_; }
  size_t pixel_count() const { return colors_.size(); }

  const LabColor& color(size_t x, size_t y) const {
    return colors_[y * width_ + x];
  }
  LabColor& color(size_t x, size_t y) { return colors_[y * width_ + x]; }
  float contrast(size_t x, size_t y) const {
    return contrast_[y * width_ + x];
  }
  float& contrast(size_t x, size_t y) { return contrast_[y * width_ + x]; }

 private:
  size_t width_;
  size_t height_;
  std::vector<LabColor> colors_;
  std::vector<float> contrast_;
};

/// Scene composition parameters.
struct ImageParams {
  size_t width = 64;
  size_t height = 64;
  size_t min_objects = 2;  // in addition to the background.
  size_t max_objects = 5;
};

/// Composes images of elliptical objects over a background, all drawn
/// from a LatentModel.
class ImageGenerator {
 public:
  ImageGenerator(const LatentModel* model, ImageParams params)
      : model_(model), params_(params) {}

  /// Renders one image; if `num_regions` is non-null it receives the
  /// ground-truth region count (objects + background).
  Image Generate(Rng& rng, size_t* num_regions = nullptr) const;

 private:
  const LatentModel* model_;
  ImageParams params_;
};

}  // namespace bw::blobworld

#endif  // BLOBWORLD_BLOBWORLD_SYNTHETIC_H_
