// Blob descriptors and the dataset container: the output of the
// Blobworld pre-processing stage (Figure 1 of the paper: pixels ->
// regions -> blob feature vectors), plus binary (de)serialization and a
// fast direct sampler for large-scale access-method benches.

#ifndef BLOBWORLD_BLOBWORLD_DATASET_H_
#define BLOBWORLD_BLOBWORLD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "blobworld/color.h"
#include "blobworld/segmentation.h"
#include "blobworld/synthetic.h"
#include "geom/vec.h"
#include "util/random.h"
#include "util/status.h"

namespace bw::blobworld {

using ImageId = uint32_t;

/// Full description of one blob, as Blobworld stores it.
struct BlobDescriptor {
  geom::Vec histogram;   // 218-bin color histogram (unit mass).
  float texture = 0.0f;  // mean texture contrast in [0, 1].
  float x = 0.0f;        // centroid, normalized to [0, 1].
  float y = 0.0f;
  float size = 0.0f;     // fraction of image area.
  ImageId image = 0;
};

/// Extracts a BlobDescriptor from a segmented region of an image.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const HistogramLayout* layout,
                            double smear_sigma = 7.0)
      : layout_(layout), smear_sigma_(smear_sigma) {}

  BlobDescriptor Extract(const Image& image, const Region& region,
                         ImageId image_id) const;

 private:
  const HistogramLayout* layout_;
  double smear_sigma_;
};

/// The blob collection of an image database.
class BlobDataset {
 public:
  BlobDataset() = default;

  size_t num_blobs() const { return blobs_.size(); }
  size_t num_images() const { return num_images_; }
  const std::vector<BlobDescriptor>& blobs() const { return blobs_; }
  const BlobDescriptor& blob(size_t i) const { return blobs_[i]; }

  /// All histograms as a vector set (input to the SVD reducer).
  std::vector<geom::Vec> Histograms() const;

  /// Blob indices belonging to one image.
  std::vector<uint32_t> BlobsOfImage(ImageId image) const;

  void Add(BlobDescriptor blob);
  void set_num_images(size_t n) { num_images_ = n; }

  /// Binary round-trip (little-endian, versioned header).
  Status SaveTo(const std::string& path) const;
  static Result<BlobDataset> LoadFrom(const std::string& path);

 private:
  std::vector<BlobDescriptor> blobs_;
  size_t num_images_ = 0;
};

/// Dataset generation configuration.
struct DatasetParams {
  size_t num_images = 1000;
  size_t latent_clusters = 48;
  ImageParams image;           // full-pipeline mode only.
  SegmenterOptions segmenter;  // full-pipeline mode only.
  double blobs_per_image = 5.0;  // direct mode only (Poisson-ish mean).
  /// Lab-space spread of blob appearance around its latent cluster.
  double within_cluster_sigma = 1.5;
  /// Cluster popularity skew (0 = uniform, 1 = Zipfian collection).
  double zipf_exponent = 1.0;
  /// Per-cluster appearance-sheet dimensionality (0 = isotropic).
  size_t local_dims = 2;
  /// Direct mode only: multiplicative per-bin histogram noise (the
  /// finite-pixel counting noise of the full pipeline).
  double direct_noise = 0.05;
  /// Fraction of blobs whose histogram blends two appearance families
  /// (real segmentations frequently produce regions mixing two colors;
  /// such histograms are convex combinations of the pure ones and form
  /// straight arcs between the dense clusters in SVD space).
  double blend_fraction = 0.3;
  uint64_t seed = 1234;
};

/// Full pipeline: render -> segment -> extract, exactly the Figure 1
/// flow. Cost is dominated by segmentation; use for feature-level
/// experiments (Figure 6) and the examples.
BlobDataset GenerateDataset(const DatasetParams& params);

/// Direct mode: samples blob descriptors straight from the latent model
/// (histogram = expected histogram + multinomial pixel noise). Same
/// distribution family as the full pipeline at a fraction of the cost;
/// used by the large access-method benches.
BlobDataset GenerateDatasetDirect(const DatasetParams& params);

}  // namespace bw::blobworld

#endif  // BLOBWORLD_BLOBWORLD_DATASET_H_
