// The "full Blobworld query" engine: ranks every image in the database
// against a query blob using the complete 218-D feature vectors. This is
// the ground truth the access methods approximate (Figure 2: the AM
// proposes a few hundred candidate images, Blobworld re-ranks them with
// this code and returns the top few dozen).
//
// Color distance is the quadratic-form histogram distance of Hafner et
// al. [11]; with A = L L^T it is evaluated as plain L2 between
// L^T-transformed histograms, which turns the O(d^2) form into O(d) per
// pair after a one-time O(n d^2) transform.

#ifndef BLOBWORLD_BLOBWORLD_RANKER_H_
#define BLOBWORLD_BLOBWORLD_RANKER_H_

#include <vector>

#include "blobworld/dataset.h"
#include "geom/distance.h"
#include "util/status.h"

namespace bw::blobworld {

/// Weights of the composite blob-to-blob score (the sliders of the
/// paper's Figure 3: "Color is very important, location is not...").
struct QueryWeights {
  double color = 1.0;
  double texture = 0.0;
  double location = 0.0;
  double size = 0.0;
};

/// One ranked image.
struct RankedImage {
  ImageId image = 0;
  double score = 0.0;  // lower is better.
  uint32_t best_blob = 0;  // the blob that achieved the score.
};

/// Exhaustive full-feature ranking engine over a BlobDataset.
class FullRanker {
 public:
  /// `alpha` shapes the bin-similarity matrix (higher = closer to plain
  /// L2 between histograms).
  static Result<FullRanker> Create(const BlobDataset* dataset,
                                   double alpha = 8.0);

  /// Color-only distance between two blobs (quadratic form).
  double ColorDistance(uint32_t blob_a, uint32_t blob_b) const;

  /// Composite weighted distance between two blobs.
  double BlobDistance(uint32_t query_blob, uint32_t candidate_blob,
                      const QueryWeights& weights) const;

  /// Full Blobworld query: scores every image by its best-matching blob
  /// and returns the top `k` images, best first.
  std::vector<RankedImage> RankAllImages(uint32_t query_blob, size_t k,
                                         const QueryWeights& weights =
                                             QueryWeights()) const;

  /// Restricted ranking over candidate blob ids (the second stage of the
  /// Figure-2 pipeline: re-rank what the access method returned).
  std::vector<RankedImage> RankCandidates(
      uint32_t query_blob, const std::vector<uint32_t>& candidate_blobs,
      size_t k, const QueryWeights& weights = QueryWeights()) const;

  const BlobDataset& dataset() const { return *dataset_; }

 private:
  FullRanker(const BlobDataset* dataset, std::vector<geom::Vec> transformed);

  static std::vector<RankedImage> TopImages(
      const std::vector<std::pair<double, uint32_t>>& blob_scores,
      const BlobDataset& dataset, size_t k);

  const BlobDataset* dataset_;
  std::vector<geom::Vec> transformed_;  // L^T * histogram per blob.
};

/// Recall of `candidates` against the top-`truth_k` ground-truth images:
/// |truth ∩ candidates| / truth_k (Figure 6's y-axis).
double RecallAgainst(const std::vector<RankedImage>& truth,
                     const std::vector<ImageId>& candidate_images);

}  // namespace bw::blobworld

#endif  // BLOBWORLD_BLOBWORLD_RANKER_H_
