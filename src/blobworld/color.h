// Color-space plumbing for the Blobworld feature pipeline: CIE L*a*b*
// conversion and the 218-bin color histogram layout the paper indexes
// ("the full image feature vectors have 218 dimensions").
//
// Bin layout: a 6x6x6 lattice over the (L, a, b) gamut (216 bins) plus
// two achromatic catch-all bins for near-black and near-white, totalling
// 218. Histograms are built with Gaussian smearing over neighboring bins
// so that perceptually close colors produce close histograms.

#ifndef BLOBWORLD_BLOBWORLD_COLOR_H_
#define BLOBWORLD_BLOBWORLD_COLOR_H_

#include <vector>

#include "geom/vec.h"

namespace bw::blobworld {

/// A color in CIE L*a*b* (L in [0, 100], a/b roughly [-60, 60] here).
struct LabColor {
  float l = 0.0f;
  float a = 0.0f;
  float b = 0.0f;
};

/// Converts sRGB in [0,1]^3 to L*a*b* (D65 white point).
LabColor RgbToLab(float r, float g, float b);

/// Squared Euclidean distance in Lab space (a reasonable perceptual
/// proxy, as used by the original Blobworld features).
double LabDistanceSquared(const LabColor& x, const LabColor& y);

/// The 218-bin histogram layout.
class HistogramLayout {
 public:
  static constexpr size_t kLatticeSide = 6;
  static constexpr size_t kBins =
      kLatticeSide * kLatticeSide * kLatticeSide + 2;  // = 218.

  HistogramLayout();

  size_t num_bins() const { return kBins; }

  /// Representative Lab color of each bin (for the quadratic-form
  /// distance similarity matrix).
  const std::vector<geom::Vec>& bin_colors() const { return bin_colors_; }

  /// Index of the lattice bin nearest to `color` (ignoring the two
  /// achromatic bins).
  size_t NearestLatticeBin(const LabColor& color) const;

  /// Adds `mass` of `color` into `histogram` (length kBins), spreading
  /// it over nearby bins with Gaussian weights of scale `smear_sigma`
  /// (in Lab units). Near-black/near-white mass goes to the achromatic
  /// bins.
  void Accumulate(const LabColor& color, double mass, double smear_sigma,
                  std::vector<double>* histogram) const;

  /// L1-normalizes `histogram` into a unit-mass feature vector.
  static geom::Vec Normalize(const std::vector<double>& histogram);

 private:
  struct LatticeCoord {
    int i, j, k;
  };
  LatticeCoord CoordOf(const LabColor& color) const;
  size_t BinIndex(int i, int j, int k) const {
    return (static_cast<size_t>(i) * kLatticeSide + static_cast<size_t>(j)) *
               kLatticeSide +
           static_cast<size_t>(k);
  }

  std::vector<geom::Vec> bin_colors_;
  // Lattice geometry.
  float l_lo_, l_hi_, ab_lo_, ab_hi_;
};

}  // namespace bw::blobworld

#endif  // BLOBWORLD_BLOBWORLD_COLOR_H_
