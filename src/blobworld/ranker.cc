#include "blobworld/ranker.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace bw::blobworld {

Result<FullRanker> FullRanker::Create(const BlobDataset* dataset,
                                      double alpha) {
  BW_CHECK(dataset != nullptr);
  if (dataset->num_blobs() == 0) {
    return Status::InvalidArgument("dataset has no blobs");
  }
  const HistogramLayout layout;
  const size_t d = dataset->blob(0).histogram.dim();
  if (d != layout.num_bins()) {
    return Status::InvalidArgument("histogram dimensionality mismatch");
  }

  // Bin-similarity matrix A, ridged for numerical positive definiteness.
  const geom::QuadraticFormDistance qf(layout.bin_colors(), alpha);
  linalg::Matrix a(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) a(i, j) = qf.SimilarityAt(i, j);
    a(i, i) += 1e-7;
  }
  BW_ASSIGN_OR_RETURN(linalg::Matrix l, linalg::CholeskyFactor(a));

  // Transform every histogram once: t = L^T h.
  std::vector<geom::Vec> transformed;
  transformed.reserve(dataset->num_blobs());
  for (const auto& blob : dataset->blobs()) {
    geom::Vec t(d);
    for (size_t j = 0; j < d; ++j) {
      // (L^T h)_j = sum_i L(i, j) h_i; L is lower triangular so i >= j.
      double acc = 0.0;
      for (size_t i = j; i < d; ++i) {
        acc += l(i, j) * blob.histogram[i];
      }
      t[j] = static_cast<float>(acc);
    }
    transformed.push_back(std::move(t));
  }
  return FullRanker(dataset, std::move(transformed));
}

FullRanker::FullRanker(const BlobDataset* dataset,
                       std::vector<geom::Vec> transformed)
    : dataset_(dataset), transformed_(std::move(transformed)) {}

double FullRanker::ColorDistance(uint32_t blob_a, uint32_t blob_b) const {
  return transformed_[blob_a].DistanceSquaredTo(transformed_[blob_b]);
}

double FullRanker::BlobDistance(uint32_t query_blob, uint32_t candidate_blob,
                                const QueryWeights& weights) const {
  const BlobDescriptor& q = dataset_->blob(query_blob);
  const BlobDescriptor& c = dataset_->blob(candidate_blob);
  double score = weights.color * ColorDistance(query_blob, candidate_blob);
  if (weights.texture > 0.0) {
    const double dt = double(q.texture) - c.texture;
    score += weights.texture * dt * dt;
  }
  if (weights.location > 0.0) {
    const double dx = double(q.x) - c.x;
    const double dy = double(q.y) - c.y;
    score += weights.location * (dx * dx + dy * dy);
  }
  if (weights.size > 0.0) {
    const double ds = double(q.size) - c.size;
    score += weights.size * ds * ds;
  }
  return score;
}

std::vector<RankedImage> FullRanker::TopImages(
    const std::vector<std::pair<double, uint32_t>>& blob_scores,
    const BlobDataset& dataset, size_t k) {
  // Image score = best blob score.
  std::unordered_map<ImageId, std::pair<double, uint32_t>> best;
  best.reserve(blob_scores.size());
  for (const auto& [score, blob] : blob_scores) {
    const ImageId image = dataset.blob(blob).image;
    auto it = best.find(image);
    if (it == best.end() || score < it->second.first) {
      best[image] = {score, blob};
    }
  }
  std::vector<RankedImage> ranked;
  ranked.reserve(best.size());
  for (const auto& [image, entry] : best) {
    ranked.push_back(RankedImage{image, entry.first, entry.second});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedImage& a, const RankedImage& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.image < b.image;  // Deterministic tie-break.
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<RankedImage> FullRanker::RankAllImages(
    uint32_t query_blob, size_t k, const QueryWeights& weights) const {
  std::vector<std::pair<double, uint32_t>> scores;
  scores.reserve(dataset_->num_blobs());
  for (uint32_t b = 0; b < dataset_->num_blobs(); ++b) {
    scores.emplace_back(BlobDistance(query_blob, b, weights), b);
  }
  return TopImages(scores, *dataset_, k);
}

std::vector<RankedImage> FullRanker::RankCandidates(
    uint32_t query_blob, const std::vector<uint32_t>& candidate_blobs,
    size_t k, const QueryWeights& weights) const {
  std::vector<std::pair<double, uint32_t>> scores;
  scores.reserve(candidate_blobs.size());
  for (uint32_t b : candidate_blobs) {
    scores.emplace_back(BlobDistance(query_blob, b, weights), b);
  }
  return TopImages(scores, *dataset_, k);
}

double RecallAgainst(const std::vector<RankedImage>& truth,
                     const std::vector<ImageId>& candidate_images) {
  if (truth.empty()) return 0.0;
  std::unordered_set<ImageId> candidates(candidate_images.begin(),
                                         candidate_images.end());
  size_t hits = 0;
  for (const RankedImage& t : truth) {
    if (candidates.count(t.image)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace bw::blobworld
