#include "blobworld/segmentation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace bw::blobworld {

namespace {

constexpr size_t kFeatureDim = 6;  // L, a, b, contrast, x, y.

// Flattened per-pixel feature extraction.
std::vector<float> PixelFeatures(const Image& image,
                                 const SegmenterOptions& options) {
  const size_t w = image.width();
  const size_t h = image.height();
  std::vector<float> features(w * h * kFeatureDim);
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      float* f = &features[(y * w + x) * kFeatureDim];
      const LabColor& c = image.color(x, y);
      f[0] = c.l;
      f[1] = c.a;
      f[2] = c.b;
      f[3] = static_cast<float>(image.contrast(x, y) *
                                options.contrast_weight);
      f[4] = static_cast<float>(static_cast<double>(x) /
                                static_cast<double>(w) *
                                options.position_weight);
      f[5] = static_cast<float>(static_cast<double>(y) /
                                static_cast<double>(h) *
                                options.position_weight);
    }
  }
  return features;
}

}  // namespace

double Segmenter::KMeansLabels(const std::vector<float>& features,
                               size_t num_pixels, size_t feature_dim,
                               size_t k, Rng& rng,
                               std::vector<uint32_t>* labels) const {
  BW_CHECK_GE(num_pixels, k);
  // k-means++ style seeding: first center uniform, subsequent centers
  // proportional to squared distance.
  std::vector<double> centers(k * feature_dim);
  std::vector<double> dist_sq(num_pixels,
                              std::numeric_limits<double>::infinity());
  size_t first = rng.NextBelow(num_pixels);
  for (size_t d = 0; d < feature_dim; ++d) {
    centers[d] = features[first * feature_dim + d];
  }
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t p = 0; p < num_pixels; ++p) {
      double acc = 0.0;
      const float* f = &features[p * feature_dim];
      const double* prev = &centers[(c - 1) * feature_dim];
      for (size_t d = 0; d < feature_dim; ++d) {
        const double delta = f[d] - prev[d];
        acc += delta * delta;
      }
      dist_sq[p] = std::min(dist_sq[p], acc);
      total += dist_sq[p];
    }
    double target = rng.NextDouble() * total;
    size_t chosen = num_pixels - 1;
    for (size_t p = 0; p < num_pixels; ++p) {
      target -= dist_sq[p];
      if (target <= 0.0) {
        chosen = p;
        break;
      }
    }
    for (size_t d = 0; d < feature_dim; ++d) {
      centers[c * feature_dim + d] = features[chosen * feature_dim + d];
    }
  }

  labels->assign(num_pixels, 0);
  std::vector<double> sums(k * feature_dim);
  std::vector<size_t> counts(k);
  double distortion = 0.0;

  for (size_t iter = 0; iter < options_.kmeans_iterations; ++iter) {
    distortion = 0.0;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t p = 0; p < num_pixels; ++p) {
      const float* f = &features[p * feature_dim];
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double* center = &centers[c * feature_dim];
        double acc = 0.0;
        for (size_t d = 0; d < feature_dim; ++d) {
          const double delta = f[d] - center[d];
          acc += delta * delta;
        }
        if (acc < best) {
          best = acc;
          best_c = static_cast<uint32_t>(c);
        }
      }
      (*labels)[p] = best_c;
      distortion += best;
      counts[best_c] += 1;
      double* sum = &sums[best_c * feature_dim];
      for (size_t d = 0; d < feature_dim; ++d) sum[d] += f[d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Empty cluster: keep old center.
      for (size_t d = 0; d < feature_dim; ++d) {
        centers[c * feature_dim + d] =
            sums[c * feature_dim + d] / static_cast<double>(counts[c]);
      }
    }
  }
  return distortion / static_cast<double>(num_pixels);
}

std::vector<Region> Segmenter::Segment(const Image& image) const {
  const size_t w = image.width();
  const size_t h = image.height();
  const size_t n = w * h;
  const std::vector<float> features = PixelFeatures(image, options_);

  // Model-order selection: penalized distortion over candidate k.
  Rng rng(seed_ ^ (n * 0x9E3779B97F4A7C15ULL));
  std::vector<uint32_t> best_labels;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t k = options_.min_clusters; k <= options_.max_clusters; ++k) {
    std::vector<uint32_t> labels;
    const double distortion =
        KMeansLabels(features, n, kFeatureDim, k, rng, &labels);
    const double score =
        distortion * (1.0 + options_.order_penalty * static_cast<double>(k));
    if (score < best_score) {
      best_score = score;
      best_labels = std::move(labels);
    }
  }

  // Split clusters into 4-connected components.
  std::vector<Region> regions;
  std::vector<uint8_t> visited(n, 0);
  std::vector<uint32_t> queue;
  for (size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    const uint32_t label = best_labels[start];
    Region region;
    queue.clear();
    queue.push_back(static_cast<uint32_t>(start));
    visited[start] = 1;
    while (!queue.empty()) {
      const uint32_t p = queue.back();
      queue.pop_back();
      region.pixels.push_back(p);
      const size_t x = p % w;
      const size_t y = p / w;
      const uint32_t candidates[4] = {
          static_cast<uint32_t>(x > 0 ? p - 1 : p),
          static_cast<uint32_t>(x + 1 < w ? p + 1 : p),
          static_cast<uint32_t>(y > 0 ? p - w : p),
          static_cast<uint32_t>(y + 1 < h ? p + w : p)};
      for (uint32_t q : candidates) {
        if (q == p || visited[q] || best_labels[q] != label) continue;
        visited[q] = 1;
        queue.push_back(q);
      }
    }
    regions.push_back(std::move(region));
  }

  // Drop fragments below the size threshold, largest regions first.
  const auto min_pixels = static_cast<size_t>(
      options_.min_region_fraction * static_cast<double>(n));
  std::vector<Region> kept;
  for (auto& region : regions) {
    if (region.pixels.size() >= std::max<size_t>(min_pixels, 1)) {
      kept.push_back(std::move(region));
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Region& a, const Region& b) {
    return a.pixels.size() > b.pixels.size();
  });
  return kept;
}

}  // namespace bw::blobworld
