// The end-to-end Blobworld query pipeline of the paper's Figure 2:
//
//   query blob -> SVD-reduced vector -> access method (k-NN over a few
//   hundred blobs) -> candidate images -> full-feature re-ranking ->
//   top few dozen answers.
//
// The pipeline owns the reducer, the reduced vectors, the chosen access
// method index and the ground-truth ranker, and exposes both the fast
// two-stage query and the exhaustive reference query.

#ifndef BLOBWORLD_BLOBWORLD_PIPELINE_H_
#define BLOBWORLD_BLOBWORLD_PIPELINE_H_

#include <memory>
#include <vector>

#include "blobworld/dataset.h"
#include "blobworld/ranker.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"

namespace bw::blobworld {

/// Pipeline configuration.
struct PipelineOptions {
  /// SVD dimensionality of the indexed vectors (the paper settles on 5).
  size_t reduced_dim = 5;
  /// How many blobs the access method retrieves per query (paper: 200).
  size_t am_candidates = 200;
  /// Final answer size (paper: "top few dozen", recall measured at 40).
  size_t answer_size = 40;
  /// Access-method construction.
  core::IndexBuildOptions index;
};

/// Result of one pipeline query.
struct PipelineAnswer {
  std::vector<RankedImage> images;       // final ranked answers.
  gist::TraversalStats am_stats;         // page accesses of the AM stage.
  size_t candidate_blobs = 0;            // AM result size.
};

/// Owns everything needed to serve Blobworld queries over one dataset.
class Pipeline {
 public:
  static Result<std::unique_ptr<Pipeline>> Build(const BlobDataset* dataset,
                                                 const PipelineOptions&
                                                     options);

  /// Two-stage query (Figure 2), keyed by a query blob in the dataset.
  Result<PipelineAnswer> Query(uint32_t query_blob,
                               const QueryWeights& weights =
                                   QueryWeights()) const;

  /// Exhaustive reference query over full feature vectors.
  std::vector<RankedImage> FullQuery(uint32_t query_blob,
                                     const QueryWeights& weights =
                                         QueryWeights()) const;

  /// Recall of the two-stage answer against the full query (both at
  /// options.answer_size).
  Result<double> QueryRecall(uint32_t query_blob) const;

  const linalg::SvdReducer& reducer() const { return reducer_; }
  const std::vector<geom::Vec>& reduced_vectors() const { return reduced_; }
  core::BuiltIndex& index() { return *index_; }
  const FullRanker& ranker() const { return *ranker_; }
  const PipelineOptions& options() const { return options_; }

 private:
  Pipeline(const BlobDataset* dataset, PipelineOptions options)
      : dataset_(dataset), options_(std::move(options)) {}

  const BlobDataset* dataset_;
  PipelineOptions options_;
  linalg::SvdReducer reducer_;
  std::vector<geom::Vec> reduced_;
  std::unique_ptr<core::BuiltIndex> index_;
  std::unique_ptr<FullRanker> ranker_;
};

/// Samples `count` distinct query blob ids, mirroring the paper's
/// workload of 5531 randomly selected blobs.
std::vector<uint32_t> SampleQueryBlobs(const BlobDataset& dataset,
                                       size_t count, uint64_t seed);

}  // namespace bw::blobworld

#endif  // BLOBWORLD_BLOBWORLD_PIPELINE_H_
