#include "blobworld/pipeline.h"

#include <algorithm>

namespace bw::blobworld {

Result<std::unique_ptr<Pipeline>> Pipeline::Build(
    const BlobDataset* dataset, const PipelineOptions& options) {
  BW_CHECK(dataset != nullptr);
  if (dataset->num_blobs() == 0) {
    return Status::InvalidArgument("dataset has no blobs");
  }
  auto pipeline =
      std::unique_ptr<Pipeline>(new Pipeline(dataset, options));

  // Fit the SVD basis on the full histograms and project.
  BW_RETURN_IF_ERROR(pipeline->reducer_.Fit(dataset->Histograms(),
                                            options.reduced_dim));
  pipeline->reduced_ =
      pipeline->reducer_.ProjectAll(dataset->Histograms(),
                                    options.reduced_dim);

  // Build the access method over the reduced vectors.
  BW_ASSIGN_OR_RETURN(pipeline->index_,
                      core::BuildIndex(pipeline->reduced_, options.index));

  // Ground-truth ranker over the full vectors.
  BW_ASSIGN_OR_RETURN(FullRanker ranker, FullRanker::Create(dataset));
  pipeline->ranker_ = std::make_unique<FullRanker>(std::move(ranker));
  return pipeline;
}

Result<PipelineAnswer> Pipeline::Query(uint32_t query_blob,
                                       const QueryWeights& weights) const {
  if (query_blob >= dataset_->num_blobs()) {
    return Status::InvalidArgument("query blob id out of range");
  }
  PipelineAnswer answer;
  BW_ASSIGN_OR_RETURN(
      std::vector<gist::Neighbor> neighbors,
      index_->Knn(reduced_[query_blob], options_.am_candidates,
                  &answer.am_stats));
  std::vector<uint32_t> candidates;
  candidates.reserve(neighbors.size());
  for (const auto& n : neighbors) {
    candidates.push_back(static_cast<uint32_t>(n.rid));
  }
  answer.candidate_blobs = candidates.size();
  answer.images = ranker_->RankCandidates(query_blob, candidates,
                                          options_.answer_size, weights);
  return answer;
}

std::vector<RankedImage> Pipeline::FullQuery(
    uint32_t query_blob, const QueryWeights& weights) const {
  return ranker_->RankAllImages(query_blob, options_.answer_size, weights);
}

Result<double> Pipeline::QueryRecall(uint32_t query_blob) const {
  BW_ASSIGN_OR_RETURN(PipelineAnswer answer, Query(query_blob));
  const std::vector<RankedImage> truth = FullQuery(query_blob);
  std::vector<ImageId> candidate_images;
  candidate_images.reserve(answer.images.size());
  for (const auto& r : answer.images) candidate_images.push_back(r.image);
  return RecallAgainst(truth, candidate_images);
}

std::vector<uint32_t> SampleQueryBlobs(const BlobDataset& dataset,
                                       size_t count, uint64_t seed) {
  Rng rng(seed);
  count = std::min(count, dataset.num_blobs());
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(dataset.num_blobs(), count);
  std::vector<uint32_t> out;
  out.reserve(picks.size());
  for (size_t p : picks) out.push_back(static_cast<uint32_t>(p));
  return out;
}

}  // namespace bw::blobworld
