#include "blobworld/synthetic.h"

#include <algorithm>
#include <cmath>

namespace bw::blobworld {

LatentModel::LatentModel(size_t num_clusters, uint64_t seed,
                         double within_cluster_sigma, double zipf_exponent,
                         size_t local_dims)
    : within_cluster_sigma_(within_cluster_sigma),
      local_dims_(std::min<size_t>(local_dims, 4)) {
  BW_CHECK_GT(num_clusters, 0u);
  Rng rng(seed);
  clusters_.reserve(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    BlobLatent latent;
    latent.color.l = static_cast<float>(rng.Uniform(20.0, 85.0));
    latent.color.a = static_cast<float>(rng.Uniform(-45.0, 45.0));
    latent.color.b = static_cast<float>(rng.Uniform(-45.0, 45.0));
    latent.spread = static_cast<float>(rng.Uniform(10.0, 26.0));
    latent.texture = static_cast<float>(rng.Uniform(0.05, 0.8));
    clusters_.push_back(latent);
  }
  if (local_dims_ > 0) {
    // Random orthonormal appearance directions per cluster, via
    // Gram-Schmidt over Gaussian draws in (L, a, b, spread) space.
    sheet_dirs_.resize(num_clusters);
    for (size_t c = 0; c < num_clusters; ++c) {
      std::vector<std::vector<double>> basis;
      while (basis.size() < local_dims_) {
        std::vector<double> dir(4);
        for (double& x : dir) x = rng.Gaussian();
        for (const auto& prev : basis) {
          double dot = 0.0;
          for (size_t i = 0; i < 4; ++i) dot += dir[i] * prev[i];
          for (size_t i = 0; i < 4; ++i) dir[i] -= dot * prev[i];
        }
        double norm = 0.0;
        for (double x : dir) norm += x * x;
        norm = std::sqrt(norm);
        if (norm < 1e-6) continue;
        for (double& x : dir) x /= norm;
        basis.push_back(std::move(dir));
      }
      std::vector<double> flat;
      for (const auto& dir : basis) {
        flat.insert(flat.end(), dir.begin(), dir.end());
      }
      sheet_dirs_[c] = std::move(flat);
    }
  }
  sampling_cdf_.resize(num_clusters);
  double acc = 0.0;
  for (size_t c = 0; c < num_clusters; ++c) {
    acc += 1.0 / std::pow(static_cast<double>(c + 1), zipf_exponent);
    sampling_cdf_[c] = acc;
  }
  for (double& v : sampling_cdf_) v /= acc;
}

BlobLatent LatentModel::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  size_t pick = static_cast<size_t>(
      std::lower_bound(sampling_cdf_.begin(), sampling_cdf_.end(), u) -
      sampling_cdf_.begin());
  if (pick >= clusters_.size()) pick = clusters_.size() - 1;
  const BlobLatent& center = clusters_[pick];
  const double sigma = within_cluster_sigma_;
  double offset[4] = {0.0, 0.0, 0.0, 0.0};
  if (local_dims_ == 0) {
    offset[0] = rng.Gaussian(0.0, sigma);
    offset[1] = rng.Gaussian(0.0, sigma);
    offset[2] = rng.Gaussian(0.0, sigma);
    offset[3] = rng.Gaussian(0.0, sigma / 3.0);
  } else {
    // Uniform spread along the cluster's appearance sheet plus a whisper
    // of isotropic noise (sheet thickness).
    const std::vector<double>& dirs = sheet_dirs_[pick];
    for (size_t j = 0; j < local_dims_; ++j) {
      const double u = rng.Uniform(-sigma, sigma);
      for (size_t i = 0; i < 4; ++i) offset[i] += u * dirs[j * 4 + i];
    }
    for (double& x : offset) x += rng.Gaussian(0.0, sigma * 0.02);
  }
  BlobLatent out;
  out.color.l = std::clamp(static_cast<float>(center.color.l + offset[0]),
                           2.0f, 98.0f);
  out.color.a = std::clamp(static_cast<float>(center.color.a + offset[1]),
                           -58.0f, 58.0f);
  out.color.b = std::clamp(static_cast<float>(center.color.b + offset[2]),
                           -58.0f, 58.0f);
  out.spread = std::clamp(static_cast<float>(center.spread + offset[3]),
                          6.0f, 34.0f);
  out.texture = std::clamp(
      static_cast<float>(rng.Gaussian(center.texture, 0.05)), 0.0f, 1.0f);
  return out;
}

geom::Vec LatentModel::ExpectedHistogram(const BlobLatent& latent,
                                         const HistogramLayout& layout) const {
  const auto& bin_colors = layout.bin_colors();
  std::vector<double> histogram(bin_colors.size(), 0.0);
  const double inv_two_sigma_sq =
      1.0 / (2.0 * double(latent.spread) * latent.spread);
  for (size_t bin = 0; bin < bin_colors.size(); ++bin) {
    const geom::Vec& bc = bin_colors[bin];
    const LabColor bin_color{bc[0], bc[1], bc[2]};
    histogram[bin] =
        std::exp(-LabDistanceSquared(latent.color, bin_color) *
                 inv_two_sigma_sq);
  }
  return HistogramLayout::Normalize(histogram);
}

Image ImageGenerator::Generate(Rng& rng, size_t* num_regions) const {
  const size_t w = params_.width;
  const size_t h = params_.height;
  Image image(w, h);

  struct Ellipse {
    double cx, cy, rx, ry, cos_t, sin_t;
    BlobLatent latent;
  };

  const size_t objects =
      params_.min_objects +
      rng.NextBelow(params_.max_objects - params_.min_objects + 1);
  if (num_regions != nullptr) *num_regions = objects + 1;

  const BlobLatent background = model_->Sample(rng);
  std::vector<Ellipse> scene;
  scene.reserve(objects);
  for (size_t i = 0; i < objects; ++i) {
    Ellipse e;
    e.cx = rng.Uniform(0.15, 0.85) * static_cast<double>(w);
    e.cy = rng.Uniform(0.15, 0.85) * static_cast<double>(h);
    e.rx = rng.Uniform(0.08, 0.28) * static_cast<double>(w);
    e.ry = rng.Uniform(0.08, 0.28) * static_cast<double>(h);
    const double theta = rng.Uniform(0.0, 3.14159265358979);
    e.cos_t = std::cos(theta);
    e.sin_t = std::sin(theta);
    e.latent = model_->Sample(rng);
    scene.push_back(e);
  }

  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      // Last-drawn object wins (painter's order).
      const BlobLatent* latent = &background;
      for (auto it = scene.rbegin(); it != scene.rend(); ++it) {
        const double dx = static_cast<double>(x) - it->cx;
        const double dy = static_cast<double>(y) - it->cy;
        const double u = (dx * it->cos_t + dy * it->sin_t) / it->rx;
        const double v = (-dx * it->sin_t + dy * it->cos_t) / it->ry;
        if (u * u + v * v <= 1.0) {
          latent = &it->latent;
          break;
        }
      }
      // Per-pixel color: latent mean + spread noise, modulated by
      // texture (stronger texture = rougher surface).
      const double sigma = latent->spread * (0.4 + 0.6 * latent->texture);
      LabColor c;
      c.l = std::clamp(
          static_cast<float>(rng.Gaussian(latent->color.l, sigma)), 0.0f,
          100.0f);
      c.a = std::clamp(
          static_cast<float>(rng.Gaussian(latent->color.a, sigma)), -60.0f,
          60.0f);
      c.b = std::clamp(
          static_cast<float>(rng.Gaussian(latent->color.b, sigma)), -60.0f,
          60.0f);
      image.color(x, y) = c;
      image.contrast(x, y) = std::clamp(
          static_cast<float>(rng.Gaussian(latent->texture, 0.05)), 0.0f, 1.0f);
    }
  }
  return image;
}

}  // namespace bw::blobworld
