// Image segmentation into "blobs": a simplified realization of the
// Blobworld pipeline (Belongie et al. '98). Per-pixel color/texture/
// position features are clustered with k-means-EM (hard assignment,
// model order chosen by penalized distortion, standing in for the
// paper's MDL-selected EM), then clusters are split into 4-connected
// components and small fragments are discarded. Fully automatic — no
// parameter tuning per image, as the paper emphasizes.

#ifndef BLOBWORLD_BLOBWORLD_SEGMENTATION_H_
#define BLOBWORLD_BLOBWORLD_SEGMENTATION_H_

#include <cstdint>
#include <vector>

#include "blobworld/synthetic.h"
#include "util/random.h"

namespace bw::blobworld {

/// A segmented region: the pixel indices (y * width + x) it covers.
struct Region {
  std::vector<uint32_t> pixels;
};

/// Segmentation tuning knobs (fixed across the whole collection).
struct SegmenterOptions {
  size_t min_clusters = 2;
  size_t max_clusters = 6;
  size_t kmeans_iterations = 12;
  /// Model-order penalty per cluster, in units of average distortion.
  double order_penalty = 0.05;
  /// Regions smaller than this fraction of the image are dropped.
  double min_region_fraction = 0.02;
  /// Weight of the normalized (x, y) position features.
  double position_weight = 18.0;
  /// Weight of the texture-contrast feature.
  double contrast_weight = 25.0;
};

/// Segments images into blob regions.
class Segmenter {
 public:
  explicit Segmenter(SegmenterOptions options = SegmenterOptions(),
                     uint64_t seed = 7)
      : options_(options), seed_(seed) {}

  /// Returns the regions of `image`, largest first.
  std::vector<Region> Segment(const Image& image) const;

 private:
  /// Hard-EM k-means over pixel features; returns per-pixel labels and
  /// the mean within-cluster distortion.
  double KMeansLabels(const std::vector<float>& features, size_t num_pixels,
                      size_t feature_dim, size_t k, Rng& rng,
                      std::vector<uint32_t>* labels) const;

  SegmenterOptions options_;
  uint64_t seed_;
};

}  // namespace bw::blobworld

#endif  // BLOBWORLD_BLOBWORLD_SEGMENTATION_H_
