#include "blobworld/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

namespace bw::blobworld {

BlobDescriptor FeatureExtractor::Extract(const Image& image,
                                         const Region& region,
                                         ImageId image_id) const {
  BW_CHECK(!region.pixels.empty());
  const size_t w = image.width();
  std::vector<double> histogram(layout_->num_bins(), 0.0);
  double texture = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  for (uint32_t p : region.pixels) {
    const size_t x = p % w;
    const size_t y = p / w;
    layout_->Accumulate(image.color(x, y), 1.0, smear_sigma_, &histogram);
    texture += image.contrast(x, y);
    cx += static_cast<double>(x);
    cy += static_cast<double>(y);
  }
  const double n = static_cast<double>(region.pixels.size());
  BlobDescriptor blob;
  blob.histogram = HistogramLayout::Normalize(histogram);
  blob.texture = static_cast<float>(texture / n);
  blob.x = static_cast<float>(cx / n / static_cast<double>(image.width()));
  blob.y = static_cast<float>(cy / n / static_cast<double>(image.height()));
  blob.size = static_cast<float>(n / static_cast<double>(image.pixel_count()));
  blob.image = image_id;
  return blob;
}

std::vector<geom::Vec> BlobDataset::Histograms() const {
  std::vector<geom::Vec> out;
  out.reserve(blobs_.size());
  for (const auto& blob : blobs_) out.push_back(blob.histogram);
  return out;
}

std::vector<uint32_t> BlobDataset::BlobsOfImage(ImageId image) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < blobs_.size(); ++i) {
    if (blobs_[i].image == image) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

void BlobDataset::Add(BlobDescriptor blob) {
  blobs_.push_back(std::move(blob));
}

namespace {
constexpr uint32_t kDatasetMagic = 0x424C4F42;  // "BLOB"
constexpr uint32_t kDatasetVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

Status BlobDataset::SaveTo(const std::string& path) const {
  std::unique_ptr<std::FILE, FileCloser> file(
      std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  auto write_u32 = [&](uint32_t v) {
    return std::fwrite(&v, sizeof(v), 1, file.get()) == 1;
  };
  auto write_f32 = [&](float v) {
    return std::fwrite(&v, sizeof(v), 1, file.get()) == 1;
  };
  const size_t hist_dim =
      blobs_.empty() ? HistogramLayout::kBins : blobs_[0].histogram.dim();
  if (!write_u32(kDatasetMagic) || !write_u32(kDatasetVersion) ||
      !write_u32(static_cast<uint32_t>(num_images_)) ||
      !write_u32(static_cast<uint32_t>(blobs_.size())) ||
      !write_u32(static_cast<uint32_t>(hist_dim))) {
    return Status::IoError("header write failed");
  }
  for (const auto& blob : blobs_) {
    for (size_t i = 0; i < hist_dim; ++i) {
      if (!write_f32(blob.histogram[i])) {
        return Status::IoError("histogram write failed");
      }
    }
    if (!write_f32(blob.texture) || !write_f32(blob.x) ||
        !write_f32(blob.y) || !write_f32(blob.size) ||
        !write_u32(blob.image)) {
      return Status::IoError("descriptor write failed");
    }
  }
  return Status::OK();
}

Result<BlobDataset> BlobDataset::LoadFrom(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> file(
      std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  auto read_u32 = [&](uint32_t* v) {
    return std::fread(v, sizeof(*v), 1, file.get()) == 1;
  };
  auto read_f32 = [&](float* v) {
    return std::fread(v, sizeof(*v), 1, file.get()) == 1;
  };
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t num_images = 0;
  uint32_t num_blobs = 0;
  uint32_t hist_dim = 0;
  if (!read_u32(&magic) || !read_u32(&version) || !read_u32(&num_images) ||
      !read_u32(&num_blobs) || !read_u32(&hist_dim)) {
    return Status::Corruption("truncated dataset header");
  }
  if (magic != kDatasetMagic) {
    return Status::Corruption("bad dataset magic");
  }
  if (version != kDatasetVersion) {
    return Status::NotSupported("unsupported dataset version");
  }
  BlobDataset dataset;
  dataset.set_num_images(num_images);
  for (uint32_t b = 0; b < num_blobs; ++b) {
    BlobDescriptor blob;
    blob.histogram = geom::Vec(hist_dim);
    for (uint32_t i = 0; i < hist_dim; ++i) {
      if (!read_f32(&blob.histogram[i])) {
        return Status::Corruption("truncated histogram");
      }
    }
    if (!read_f32(&blob.texture) || !read_f32(&blob.x) ||
        !read_f32(&blob.y) || !read_f32(&blob.size) ||
        !read_u32(&blob.image)) {
      return Status::Corruption("truncated descriptor");
    }
    dataset.Add(std::move(blob));
  }
  return dataset;
}

BlobDataset GenerateDataset(const DatasetParams& params) {
  const HistogramLayout layout;
  const LatentModel model(params.latent_clusters, params.seed,
                          params.within_cluster_sigma, params.zipf_exponent,
                          params.local_dims);
  const ImageGenerator generator(&model, params.image);
  const Segmenter segmenter(params.segmenter, params.seed ^ 0x5E6u);
  const FeatureExtractor extractor(&layout);

  Rng rng(params.seed);
  BlobDataset dataset;
  dataset.set_num_images(params.num_images);
  for (size_t img = 0; img < params.num_images; ++img) {
    const Image image = generator.Generate(rng);
    const std::vector<Region> regions = segmenter.Segment(image);
    for (const Region& region : regions) {
      dataset.Add(extractor.Extract(image, region,
                                    static_cast<ImageId>(img)));
    }
  }
  return dataset;
}

BlobDataset GenerateDatasetDirect(const DatasetParams& params) {
  const HistogramLayout layout;
  const LatentModel model(params.latent_clusters, params.seed,
                          params.within_cluster_sigma, params.zipf_exponent,
                          params.local_dims);
  Rng rng(params.seed);
  BlobDataset dataset;
  dataset.set_num_images(params.num_images);
  for (size_t img = 0; img < params.num_images; ++img) {
    // 2..(2*mean-2) blobs per image, mean ~= blobs_per_image.
    const size_t span = static_cast<size_t>(
        std::max(1.0, 2.0 * (params.blobs_per_image - 2.0)));
    const size_t blobs = 2 + rng.NextBelow(span + 1);
    for (size_t b = 0; b < blobs; ++b) {
      const BlobLatent latent = model.Sample(rng);
      geom::Vec expected = model.ExpectedHistogram(latent, layout);
      if (rng.Bernoulli(params.blend_fraction)) {
        // Two-color blob: its histogram mixes two appearance families.
        const BlobLatent other = model.Sample(rng);
        const geom::Vec second = model.ExpectedHistogram(other, layout);
        const auto t = static_cast<float>(rng.NextDouble());
        expected = expected * t + second * (1.0f - t);
      }
      // Finite-pixel noise: perturb and renormalize.
      std::vector<double> noisy(expected.dim());
      for (size_t i = 0; i < expected.dim(); ++i) {
        const double jitter = 1.0 + params.direct_noise * rng.Gaussian();
        noisy[i] = std::max(0.0, static_cast<double>(expected[i]) * jitter);
      }
      BlobDescriptor blob;
      blob.histogram = HistogramLayout::Normalize(noisy);
      blob.texture = latent.texture;
      blob.x = static_cast<float>(rng.NextDouble());
      blob.y = static_cast<float>(rng.NextDouble());
      blob.size = static_cast<float>(rng.Uniform(0.02, 0.5));
      blob.image = static_cast<ImageId>(img);
      dataset.Add(std::move(blob));
    }
  }
  return dataset;
}

}  // namespace bw::blobworld
