#include "blobworld/color.h"

#include <algorithm>
#include <cmath>

namespace bw::blobworld {

namespace {

// sRGB gamma expansion.
double Linearize(double channel) {
  return channel <= 0.04045 ? channel / 12.92
                            : std::pow((channel + 0.055) / 1.055, 2.4);
}

double LabF(double t) {
  constexpr double kDelta = 6.0 / 29.0;
  return t > kDelta * kDelta * kDelta
             ? std::cbrt(t)
             : t / (3.0 * kDelta * kDelta) + 4.0 / 29.0;
}

}  // namespace

LabColor RgbToLab(float r, float g, float b) {
  const double rl = Linearize(std::clamp(r, 0.0f, 1.0f));
  const double gl = Linearize(std::clamp(g, 0.0f, 1.0f));
  const double bl = Linearize(std::clamp(b, 0.0f, 1.0f));

  // sRGB -> XYZ (D65).
  const double x = 0.4124 * rl + 0.3576 * gl + 0.1805 * bl;
  const double y = 0.2126 * rl + 0.7152 * gl + 0.0722 * bl;
  const double z = 0.0193 * rl + 0.1192 * gl + 0.9505 * bl;

  constexpr double kXn = 0.95047;
  constexpr double kYn = 1.0;
  constexpr double kZn = 1.08883;

  const double fx = LabF(x / kXn);
  const double fy = LabF(y / kYn);
  const double fz = LabF(z / kZn);

  LabColor lab;
  lab.l = static_cast<float>(116.0 * fy - 16.0);
  lab.a = static_cast<float>(500.0 * (fx - fy));
  lab.b = static_cast<float>(200.0 * (fy - fz));
  return lab;
}

double LabDistanceSquared(const LabColor& x, const LabColor& y) {
  const double dl = double(x.l) - y.l;
  const double da = double(x.a) - y.a;
  const double db = double(x.b) - y.b;
  return dl * dl + da * da + db * db;
}

HistogramLayout::HistogramLayout()
    : l_lo_(5.0f), l_hi_(95.0f), ab_lo_(-60.0f), ab_hi_(60.0f) {
  bin_colors_.reserve(kBins);
  const float l_step = (l_hi_ - l_lo_) / kLatticeSide;
  const float ab_step = (ab_hi_ - ab_lo_) / kLatticeSide;
  for (size_t i = 0; i < kLatticeSide; ++i) {
    for (size_t j = 0; j < kLatticeSide; ++j) {
      for (size_t k = 0; k < kLatticeSide; ++k) {
        geom::Vec c(3);
        c[0] = l_lo_ + (static_cast<float>(i) + 0.5f) * l_step;
        c[1] = ab_lo_ + (static_cast<float>(j) + 0.5f) * ab_step;
        c[2] = ab_lo_ + (static_cast<float>(k) + 0.5f) * ab_step;
        bin_colors_.push_back(std::move(c));
      }
    }
  }
  // Achromatic bins: near-black and near-white.
  bin_colors_.push_back(geom::Vec{0.0f, 0.0f, 0.0f});
  bin_colors_.push_back(geom::Vec{100.0f, 0.0f, 0.0f});
  BW_CHECK_EQ(bin_colors_.size(), kBins);
}

HistogramLayout::LatticeCoord HistogramLayout::CoordOf(
    const LabColor& color) const {
  const float l_step = (l_hi_ - l_lo_) / kLatticeSide;
  const float ab_step = (ab_hi_ - ab_lo_) / kLatticeSide;
  auto clamp_idx = [](float v, float lo, float step) {
    int idx = static_cast<int>(std::floor((v - lo) / step));
    return std::clamp(idx, 0, static_cast<int>(kLatticeSide) - 1);
  };
  return LatticeCoord{clamp_idx(color.l, l_lo_, l_step),
                      clamp_idx(color.a, ab_lo_, ab_step),
                      clamp_idx(color.b, ab_lo_, ab_step)};
}

size_t HistogramLayout::NearestLatticeBin(const LabColor& color) const {
  const LatticeCoord c = CoordOf(color);
  return BinIndex(c.i, c.j, c.k);
}

void HistogramLayout::Accumulate(const LabColor& color, double mass,
                                 double smear_sigma,
                                 std::vector<double>* histogram) const {
  BW_CHECK_EQ(histogram->size(), kBins);
  // Achromatic shortcut.
  if (color.l < l_lo_) {
    (*histogram)[kBins - 2] += mass;
    return;
  }
  if (color.l > l_hi_) {
    (*histogram)[kBins - 1] += mass;
    return;
  }

  const LatticeCoord c = CoordOf(color);
  const double inv_two_sigma_sq = 1.0 / (2.0 * smear_sigma * smear_sigma);
  double weight_sum = 0.0;
  double weights[27];
  size_t bins[27];
  size_t count = 0;
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int dk = -1; dk <= 1; ++dk) {
        const int i = c.i + di;
        const int j = c.j + dj;
        const int k = c.k + dk;
        if (i < 0 || j < 0 || k < 0 ||
            i >= static_cast<int>(kLatticeSide) ||
            j >= static_cast<int>(kLatticeSide) ||
            k >= static_cast<int>(kLatticeSide)) {
          continue;
        }
        const size_t bin = BinIndex(i, j, k);
        const geom::Vec& bc = bin_colors_[bin];
        LabColor bin_color{bc[0], bc[1], bc[2]};
        const double w =
            std::exp(-LabDistanceSquared(color, bin_color) * inv_two_sigma_sq);
        weights[count] = w;
        bins[count] = bin;
        weight_sum += w;
        ++count;
      }
    }
  }
  if (weight_sum <= 0.0 || count == 0) {
    (*histogram)[NearestLatticeBin(color)] += mass;
    return;
  }
  for (size_t n = 0; n < count; ++n) {
    (*histogram)[bins[n]] += mass * weights[n] / weight_sum;
  }
}

geom::Vec HistogramLayout::Normalize(const std::vector<double>& histogram) {
  double total = 0.0;
  for (double v : histogram) total += v;
  geom::Vec out(histogram.size());
  if (total <= 0.0) return out;
  for (size_t i = 0; i < histogram.size(); ++i) {
    out[i] = static_cast<float>(histogram[i] / total);
  }
  return out;
}

}  // namespace bw::blobworld
