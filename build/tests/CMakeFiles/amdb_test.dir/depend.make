# Empty dependencies file for amdb_test.
# This may be replaced when dependencies are built.
