# Empty compiler generated dependencies file for amdb_test.
# This may be replaced when dependencies are built.
