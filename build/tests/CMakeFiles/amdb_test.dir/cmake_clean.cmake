file(REMOVE_RECURSE
  "CMakeFiles/amdb_test.dir/amdb_test.cc.o"
  "CMakeFiles/amdb_test.dir/amdb_test.cc.o.d"
  "amdb_test"
  "amdb_test.pdb"
  "amdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
