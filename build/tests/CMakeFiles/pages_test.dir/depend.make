# Empty dependencies file for pages_test.
# This may be replaced when dependencies are built.
