file(REMOVE_RECURSE
  "CMakeFiles/pages_test.dir/pages_test.cc.o"
  "CMakeFiles/pages_test.dir/pages_test.cc.o.d"
  "pages_test"
  "pages_test.pdb"
  "pages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
