# Empty dependencies file for blobworld_test.
# This may be replaced when dependencies are built.
