file(REMOVE_RECURSE
  "CMakeFiles/blobworld_test.dir/blobworld_test.cc.o"
  "CMakeFiles/blobworld_test.dir/blobworld_test.cc.o.d"
  "blobworld_test"
  "blobworld_test.pdb"
  "blobworld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blobworld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
