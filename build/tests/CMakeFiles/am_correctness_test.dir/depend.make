# Empty dependencies file for am_correctness_test.
# This may be replaced when dependencies are built.
