file(REMOVE_RECURSE
  "CMakeFiles/am_correctness_test.dir/am_correctness_test.cc.o"
  "CMakeFiles/am_correctness_test.dir/am_correctness_test.cc.o.d"
  "am_correctness_test"
  "am_correctness_test.pdb"
  "am_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
