# Empty dependencies file for gist_test.
# This may be replaced when dependencies are built.
