# Empty compiler generated dependencies file for am_test.
# This may be replaced when dependencies are built.
