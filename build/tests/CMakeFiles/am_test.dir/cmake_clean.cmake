file(REMOVE_RECURSE
  "CMakeFiles/am_test.dir/am_test.cc.o"
  "CMakeFiles/am_test.dir/am_test.cc.o.d"
  "am_test"
  "am_test.pdb"
  "am_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
