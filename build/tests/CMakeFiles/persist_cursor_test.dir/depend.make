# Empty dependencies file for persist_cursor_test.
# This may be replaced when dependencies are built.
