file(REMOVE_RECURSE
  "CMakeFiles/persist_cursor_test.dir/persist_cursor_test.cc.o"
  "CMakeFiles/persist_cursor_test.dir/persist_cursor_test.cc.o.d"
  "persist_cursor_test"
  "persist_cursor_test.pdb"
  "persist_cursor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
