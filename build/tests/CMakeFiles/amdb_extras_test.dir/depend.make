# Empty dependencies file for amdb_extras_test.
# This may be replaced when dependencies are built.
