file(REMOVE_RECURSE
  "CMakeFiles/amdb_extras_test.dir/amdb_extras_test.cc.o"
  "CMakeFiles/amdb_extras_test.dir/amdb_extras_test.cc.o.d"
  "amdb_extras_test"
  "amdb_extras_test.pdb"
  "amdb_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdb_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
