# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/am_correctness_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/pages_test[1]_include.cmake")
include("/root/repo/build/tests/gist_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/am_test[1]_include.cmake")
include("/root/repo/build/tests/amdb_test[1]_include.cmake")
include("/root/repo/build/tests/blobworld_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/persist_cursor_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_ops_test[1]_include.cmake")
include("/root/repo/build/tests/amdb_extras_test[1]_include.cmake")
