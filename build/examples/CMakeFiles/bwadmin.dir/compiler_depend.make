# Empty compiler generated dependencies file for bwadmin.
# This may be replaced when dependencies are built.
