file(REMOVE_RECURSE
  "CMakeFiles/bwadmin.dir/bwadmin.cpp.o"
  "CMakeFiles/bwadmin.dir/bwadmin.cpp.o.d"
  "bwadmin"
  "bwadmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwadmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
