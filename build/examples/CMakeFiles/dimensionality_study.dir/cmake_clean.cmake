file(REMOVE_RECURSE
  "CMakeFiles/dimensionality_study.dir/dimensionality_study.cpp.o"
  "CMakeFiles/dimensionality_study.dir/dimensionality_study.cpp.o.d"
  "dimensionality_study"
  "dimensionality_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimensionality_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
