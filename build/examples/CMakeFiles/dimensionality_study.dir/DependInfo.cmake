
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dimensionality_study.cpp" "examples/CMakeFiles/dimensionality_study.dir/dimensionality_study.cpp.o" "gcc" "examples/CMakeFiles/dimensionality_study.dir/dimensionality_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blobworld/CMakeFiles/bw_blobworld.dir/DependInfo.cmake"
  "/root/repo/build/src/amdb/CMakeFiles/bw_amdb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/bw_am.dir/DependInfo.cmake"
  "/root/repo/build/src/gist/CMakeFiles/bw_gist.dir/DependInfo.cmake"
  "/root/repo/build/src/pages/CMakeFiles/bw_pages.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/bw_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
