# Empty compiler generated dependencies file for dimensionality_study.
# This may be replaced when dependencies are built.
