file(REMOVE_RECURSE
  "CMakeFiles/am_analysis.dir/am_analysis.cpp.o"
  "CMakeFiles/am_analysis.dir/am_analysis.cpp.o.d"
  "am_analysis"
  "am_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
