# Empty compiler generated dependencies file for am_analysis.
# This may be replaced when dependencies are built.
