# Empty dependencies file for visualize_leaves.
# This may be replaced when dependencies are built.
