file(REMOVE_RECURSE
  "CMakeFiles/visualize_leaves.dir/visualize_leaves.cpp.o"
  "CMakeFiles/visualize_leaves.dir/visualize_leaves.cpp.o.d"
  "visualize_leaves"
  "visualize_leaves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_leaves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
