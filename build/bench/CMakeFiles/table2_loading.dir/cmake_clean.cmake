file(REMOVE_RECURSE
  "CMakeFiles/table2_loading.dir/table2_loading.cc.o"
  "CMakeFiles/table2_loading.dir/table2_loading.cc.o.d"
  "table2_loading"
  "table2_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
