# Empty compiler generated dependencies file for table2_loading.
# This may be replaced when dependencies are built.
