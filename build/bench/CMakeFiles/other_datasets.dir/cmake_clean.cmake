file(REMOVE_RECURSE
  "CMakeFiles/other_datasets.dir/other_datasets.cc.o"
  "CMakeFiles/other_datasets.dir/other_datasets.cc.o.d"
  "other_datasets"
  "other_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/other_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
