# Empty compiler generated dependencies file for other_datasets.
# This may be replaced when dependencies are built.
