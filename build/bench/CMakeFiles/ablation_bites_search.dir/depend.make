# Empty dependencies file for ablation_bites_search.
# This may be replaced when dependencies are built.
