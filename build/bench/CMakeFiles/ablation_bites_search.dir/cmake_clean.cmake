file(REMOVE_RECURSE
  "CMakeFiles/ablation_bites_search.dir/ablation_bites_search.cc.o"
  "CMakeFiles/ablation_bites_search.dir/ablation_bites_search.cc.o.d"
  "ablation_bites_search"
  "ablation_bites_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bites_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
