# Empty compiler generated dependencies file for fig06_recall.
# This may be replaced when dependencies are built.
