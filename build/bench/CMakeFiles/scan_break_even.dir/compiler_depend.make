# Empty compiler generated dependencies file for scan_break_even.
# This may be replaced when dependencies are built.
