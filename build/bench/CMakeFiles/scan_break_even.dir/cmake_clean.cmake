file(REMOVE_RECURSE
  "CMakeFiles/scan_break_even.dir/scan_break_even.cc.o"
  "CMakeFiles/scan_break_even.dir/scan_break_even.cc.o.d"
  "scan_break_even"
  "scan_break_even.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_break_even.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
