# Empty dependencies file for fig07_08_standard.
# This may be replaced when dependencies are built.
