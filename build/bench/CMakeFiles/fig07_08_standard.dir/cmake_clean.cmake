file(REMOVE_RECURSE
  "CMakeFiles/fig07_08_standard.dir/fig07_08_standard.cc.o"
  "CMakeFiles/fig07_08_standard.dir/fig07_08_standard.cc.o.d"
  "fig07_08_standard"
  "fig07_08_standard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_08_standard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
