file(REMOVE_RECURSE
  "CMakeFiles/micro_bp_kernels.dir/micro_bp_kernels.cc.o"
  "CMakeFiles/micro_bp_kernels.dir/micro_bp_kernels.cc.o.d"
  "micro_bp_kernels"
  "micro_bp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
