file(REMOVE_RECURSE
  "libbw_bench_common.a"
)
