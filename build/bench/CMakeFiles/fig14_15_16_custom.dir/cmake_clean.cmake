file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_16_custom.dir/fig14_15_16_custom.cc.o"
  "CMakeFiles/fig14_15_16_custom.dir/fig14_15_16_custom.cc.o.d"
  "fig14_15_16_custom"
  "fig14_15_16_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_16_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
