file(REMOVE_RECURSE
  "CMakeFiles/buffer_effects.dir/buffer_effects.cc.o"
  "CMakeFiles/buffer_effects.dir/buffer_effects.cc.o.d"
  "buffer_effects"
  "buffer_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
