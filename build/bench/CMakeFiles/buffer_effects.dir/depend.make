# Empty dependencies file for buffer_effects.
# This may be replaced when dependencies are built.
