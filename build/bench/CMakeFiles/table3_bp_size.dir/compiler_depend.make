# Empty compiler generated dependencies file for table3_bp_size.
# This may be replaced when dependencies are built.
