file(REMOVE_RECURSE
  "CMakeFiles/table3_bp_size.dir/table3_bp_size.cc.o"
  "CMakeFiles/table3_bp_size.dir/table3_bp_size.cc.o.d"
  "table3_bp_size"
  "table3_bp_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bp_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
