# Empty compiler generated dependencies file for bw_amdb.
# This may be replaced when dependencies are built.
