file(REMOVE_RECURSE
  "CMakeFiles/bw_amdb.dir/analysis.cc.o"
  "CMakeFiles/bw_amdb.dir/analysis.cc.o.d"
  "CMakeFiles/bw_amdb.dir/node_report.cc.o"
  "CMakeFiles/bw_amdb.dir/node_report.cc.o.d"
  "CMakeFiles/bw_amdb.dir/partitioning.cc.o"
  "CMakeFiles/bw_amdb.dir/partitioning.cc.o.d"
  "CMakeFiles/bw_amdb.dir/visualize.cc.o"
  "CMakeFiles/bw_amdb.dir/visualize.cc.o.d"
  "CMakeFiles/bw_amdb.dir/workload.cc.o"
  "CMakeFiles/bw_amdb.dir/workload.cc.o.d"
  "libbw_amdb.a"
  "libbw_amdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_amdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
