file(REMOVE_RECURSE
  "libbw_amdb.a"
)
