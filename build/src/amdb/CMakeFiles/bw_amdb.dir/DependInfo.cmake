
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amdb/analysis.cc" "src/amdb/CMakeFiles/bw_amdb.dir/analysis.cc.o" "gcc" "src/amdb/CMakeFiles/bw_amdb.dir/analysis.cc.o.d"
  "/root/repo/src/amdb/node_report.cc" "src/amdb/CMakeFiles/bw_amdb.dir/node_report.cc.o" "gcc" "src/amdb/CMakeFiles/bw_amdb.dir/node_report.cc.o.d"
  "/root/repo/src/amdb/partitioning.cc" "src/amdb/CMakeFiles/bw_amdb.dir/partitioning.cc.o" "gcc" "src/amdb/CMakeFiles/bw_amdb.dir/partitioning.cc.o.d"
  "/root/repo/src/amdb/visualize.cc" "src/amdb/CMakeFiles/bw_amdb.dir/visualize.cc.o" "gcc" "src/amdb/CMakeFiles/bw_amdb.dir/visualize.cc.o.d"
  "/root/repo/src/amdb/workload.cc" "src/amdb/CMakeFiles/bw_amdb.dir/workload.cc.o" "gcc" "src/amdb/CMakeFiles/bw_amdb.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/bw_am.dir/DependInfo.cmake"
  "/root/repo/build/src/gist/CMakeFiles/bw_gist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/bw_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pages/CMakeFiles/bw_pages.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
