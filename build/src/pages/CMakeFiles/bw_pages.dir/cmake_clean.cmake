file(REMOVE_RECURSE
  "CMakeFiles/bw_pages.dir/buffer_pool.cc.o"
  "CMakeFiles/bw_pages.dir/buffer_pool.cc.o.d"
  "CMakeFiles/bw_pages.dir/io_model.cc.o"
  "CMakeFiles/bw_pages.dir/io_model.cc.o.d"
  "CMakeFiles/bw_pages.dir/page.cc.o"
  "CMakeFiles/bw_pages.dir/page.cc.o.d"
  "CMakeFiles/bw_pages.dir/page_file.cc.o"
  "CMakeFiles/bw_pages.dir/page_file.cc.o.d"
  "libbw_pages.a"
  "libbw_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
