file(REMOVE_RECURSE
  "libbw_pages.a"
)
