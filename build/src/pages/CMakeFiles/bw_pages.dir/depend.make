# Empty dependencies file for bw_pages.
# This may be replaced when dependencies are built.
