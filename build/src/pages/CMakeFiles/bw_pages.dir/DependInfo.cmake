
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pages/buffer_pool.cc" "src/pages/CMakeFiles/bw_pages.dir/buffer_pool.cc.o" "gcc" "src/pages/CMakeFiles/bw_pages.dir/buffer_pool.cc.o.d"
  "/root/repo/src/pages/io_model.cc" "src/pages/CMakeFiles/bw_pages.dir/io_model.cc.o" "gcc" "src/pages/CMakeFiles/bw_pages.dir/io_model.cc.o.d"
  "/root/repo/src/pages/page.cc" "src/pages/CMakeFiles/bw_pages.dir/page.cc.o" "gcc" "src/pages/CMakeFiles/bw_pages.dir/page.cc.o.d"
  "/root/repo/src/pages/page_file.cc" "src/pages/CMakeFiles/bw_pages.dir/page_file.cc.o" "gcc" "src/pages/CMakeFiles/bw_pages.dir/page_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
