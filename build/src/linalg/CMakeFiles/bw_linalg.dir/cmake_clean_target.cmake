file(REMOVE_RECURSE
  "libbw_linalg.a"
)
