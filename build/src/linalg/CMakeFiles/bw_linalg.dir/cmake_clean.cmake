file(REMOVE_RECURSE
  "CMakeFiles/bw_linalg.dir/cholesky.cc.o"
  "CMakeFiles/bw_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/bw_linalg.dir/matrix.cc.o"
  "CMakeFiles/bw_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/bw_linalg.dir/reducer.cc.o"
  "CMakeFiles/bw_linalg.dir/reducer.cc.o.d"
  "CMakeFiles/bw_linalg.dir/svd.cc.o"
  "CMakeFiles/bw_linalg.dir/svd.cc.o.d"
  "libbw_linalg.a"
  "libbw_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
