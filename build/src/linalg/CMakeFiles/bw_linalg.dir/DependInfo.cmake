
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/bw_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/bw_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/bw_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/bw_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/reducer.cc" "src/linalg/CMakeFiles/bw_linalg.dir/reducer.cc.o" "gcc" "src/linalg/CMakeFiles/bw_linalg.dir/reducer.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/linalg/CMakeFiles/bw_linalg.dir/svd.cc.o" "gcc" "src/linalg/CMakeFiles/bw_linalg.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/bw_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
