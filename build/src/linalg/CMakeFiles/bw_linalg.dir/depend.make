# Empty dependencies file for bw_linalg.
# This may be replaced when dependencies are built.
