file(REMOVE_RECURSE
  "CMakeFiles/bw_blobworld.dir/color.cc.o"
  "CMakeFiles/bw_blobworld.dir/color.cc.o.d"
  "CMakeFiles/bw_blobworld.dir/dataset.cc.o"
  "CMakeFiles/bw_blobworld.dir/dataset.cc.o.d"
  "CMakeFiles/bw_blobworld.dir/pipeline.cc.o"
  "CMakeFiles/bw_blobworld.dir/pipeline.cc.o.d"
  "CMakeFiles/bw_blobworld.dir/ranker.cc.o"
  "CMakeFiles/bw_blobworld.dir/ranker.cc.o.d"
  "CMakeFiles/bw_blobworld.dir/segmentation.cc.o"
  "CMakeFiles/bw_blobworld.dir/segmentation.cc.o.d"
  "CMakeFiles/bw_blobworld.dir/synthetic.cc.o"
  "CMakeFiles/bw_blobworld.dir/synthetic.cc.o.d"
  "libbw_blobworld.a"
  "libbw_blobworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_blobworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
