file(REMOVE_RECURSE
  "libbw_blobworld.a"
)
