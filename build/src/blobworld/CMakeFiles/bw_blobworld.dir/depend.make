# Empty dependencies file for bw_blobworld.
# This may be replaced when dependencies are built.
