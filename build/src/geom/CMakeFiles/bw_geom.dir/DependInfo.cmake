
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/distance.cc" "src/geom/CMakeFiles/bw_geom.dir/distance.cc.o" "gcc" "src/geom/CMakeFiles/bw_geom.dir/distance.cc.o.d"
  "/root/repo/src/geom/rect.cc" "src/geom/CMakeFiles/bw_geom.dir/rect.cc.o" "gcc" "src/geom/CMakeFiles/bw_geom.dir/rect.cc.o.d"
  "/root/repo/src/geom/sphere.cc" "src/geom/CMakeFiles/bw_geom.dir/sphere.cc.o" "gcc" "src/geom/CMakeFiles/bw_geom.dir/sphere.cc.o.d"
  "/root/repo/src/geom/vec.cc" "src/geom/CMakeFiles/bw_geom.dir/vec.cc.o" "gcc" "src/geom/CMakeFiles/bw_geom.dir/vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
