file(REMOVE_RECURSE
  "CMakeFiles/bw_geom.dir/distance.cc.o"
  "CMakeFiles/bw_geom.dir/distance.cc.o.d"
  "CMakeFiles/bw_geom.dir/rect.cc.o"
  "CMakeFiles/bw_geom.dir/rect.cc.o.d"
  "CMakeFiles/bw_geom.dir/sphere.cc.o"
  "CMakeFiles/bw_geom.dir/sphere.cc.o.d"
  "CMakeFiles/bw_geom.dir/vec.cc.o"
  "CMakeFiles/bw_geom.dir/vec.cc.o.d"
  "libbw_geom.a"
  "libbw_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
