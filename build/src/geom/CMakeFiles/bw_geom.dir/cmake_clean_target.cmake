file(REMOVE_RECURSE
  "libbw_geom.a"
)
