# Empty compiler generated dependencies file for bw_geom.
# This may be replaced when dependencies are built.
