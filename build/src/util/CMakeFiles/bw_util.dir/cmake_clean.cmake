file(REMOVE_RECURSE
  "CMakeFiles/bw_util.dir/flags.cc.o"
  "CMakeFiles/bw_util.dir/flags.cc.o.d"
  "CMakeFiles/bw_util.dir/status.cc.o"
  "CMakeFiles/bw_util.dir/status.cc.o.d"
  "CMakeFiles/bw_util.dir/table_printer.cc.o"
  "CMakeFiles/bw_util.dir/table_printer.cc.o.d"
  "libbw_util.a"
  "libbw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
