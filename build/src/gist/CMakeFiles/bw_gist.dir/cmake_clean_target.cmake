file(REMOVE_RECURSE
  "libbw_gist.a"
)
