file(REMOVE_RECURSE
  "CMakeFiles/bw_gist.dir/extension.cc.o"
  "CMakeFiles/bw_gist.dir/extension.cc.o.d"
  "CMakeFiles/bw_gist.dir/nn_cursor.cc.o"
  "CMakeFiles/bw_gist.dir/nn_cursor.cc.o.d"
  "CMakeFiles/bw_gist.dir/node.cc.o"
  "CMakeFiles/bw_gist.dir/node.cc.o.d"
  "CMakeFiles/bw_gist.dir/persist.cc.o"
  "CMakeFiles/bw_gist.dir/persist.cc.o.d"
  "CMakeFiles/bw_gist.dir/tree.cc.o"
  "CMakeFiles/bw_gist.dir/tree.cc.o.d"
  "libbw_gist.a"
  "libbw_gist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_gist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
