# Empty compiler generated dependencies file for bw_gist.
# This may be replaced when dependencies are built.
