
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gist/extension.cc" "src/gist/CMakeFiles/bw_gist.dir/extension.cc.o" "gcc" "src/gist/CMakeFiles/bw_gist.dir/extension.cc.o.d"
  "/root/repo/src/gist/nn_cursor.cc" "src/gist/CMakeFiles/bw_gist.dir/nn_cursor.cc.o" "gcc" "src/gist/CMakeFiles/bw_gist.dir/nn_cursor.cc.o.d"
  "/root/repo/src/gist/node.cc" "src/gist/CMakeFiles/bw_gist.dir/node.cc.o" "gcc" "src/gist/CMakeFiles/bw_gist.dir/node.cc.o.d"
  "/root/repo/src/gist/persist.cc" "src/gist/CMakeFiles/bw_gist.dir/persist.cc.o" "gcc" "src/gist/CMakeFiles/bw_gist.dir/persist.cc.o.d"
  "/root/repo/src/gist/tree.cc" "src/gist/CMakeFiles/bw_gist.dir/tree.cc.o" "gcc" "src/gist/CMakeFiles/bw_gist.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/bw_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/pages/CMakeFiles/bw_pages.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
