file(REMOVE_RECURSE
  "libbw_am.a"
)
