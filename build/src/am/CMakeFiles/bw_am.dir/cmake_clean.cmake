file(REMOVE_RECURSE
  "CMakeFiles/bw_am.dir/bulk_load.cc.o"
  "CMakeFiles/bw_am.dir/bulk_load.cc.o.d"
  "CMakeFiles/bw_am.dir/rstar_tree.cc.o"
  "CMakeFiles/bw_am.dir/rstar_tree.cc.o.d"
  "CMakeFiles/bw_am.dir/rtree.cc.o"
  "CMakeFiles/bw_am.dir/rtree.cc.o.d"
  "CMakeFiles/bw_am.dir/split_heuristics.cc.o"
  "CMakeFiles/bw_am.dir/split_heuristics.cc.o.d"
  "CMakeFiles/bw_am.dir/srtree.cc.o"
  "CMakeFiles/bw_am.dir/srtree.cc.o.d"
  "CMakeFiles/bw_am.dir/sstree.cc.o"
  "CMakeFiles/bw_am.dir/sstree.cc.o.d"
  "libbw_am.a"
  "libbw_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
