# Empty compiler generated dependencies file for bw_am.
# This may be replaced when dependencies are built.
