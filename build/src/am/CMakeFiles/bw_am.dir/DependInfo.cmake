
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/am/bulk_load.cc" "src/am/CMakeFiles/bw_am.dir/bulk_load.cc.o" "gcc" "src/am/CMakeFiles/bw_am.dir/bulk_load.cc.o.d"
  "/root/repo/src/am/rstar_tree.cc" "src/am/CMakeFiles/bw_am.dir/rstar_tree.cc.o" "gcc" "src/am/CMakeFiles/bw_am.dir/rstar_tree.cc.o.d"
  "/root/repo/src/am/rtree.cc" "src/am/CMakeFiles/bw_am.dir/rtree.cc.o" "gcc" "src/am/CMakeFiles/bw_am.dir/rtree.cc.o.d"
  "/root/repo/src/am/split_heuristics.cc" "src/am/CMakeFiles/bw_am.dir/split_heuristics.cc.o" "gcc" "src/am/CMakeFiles/bw_am.dir/split_heuristics.cc.o.d"
  "/root/repo/src/am/srtree.cc" "src/am/CMakeFiles/bw_am.dir/srtree.cc.o" "gcc" "src/am/CMakeFiles/bw_am.dir/srtree.cc.o.d"
  "/root/repo/src/am/sstree.cc" "src/am/CMakeFiles/bw_am.dir/sstree.cc.o" "gcc" "src/am/CMakeFiles/bw_am.dir/sstree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gist/CMakeFiles/bw_gist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/bw_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pages/CMakeFiles/bw_pages.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
