
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bites.cc" "src/core/CMakeFiles/bw_core.dir/bites.cc.o" "gcc" "src/core/CMakeFiles/bw_core.dir/bites.cc.o.d"
  "/root/repo/src/core/index_factory.cc" "src/core/CMakeFiles/bw_core.dir/index_factory.cc.o" "gcc" "src/core/CMakeFiles/bw_core.dir/index_factory.cc.o.d"
  "/root/repo/src/core/jagged.cc" "src/core/CMakeFiles/bw_core.dir/jagged.cc.o" "gcc" "src/core/CMakeFiles/bw_core.dir/jagged.cc.o.d"
  "/root/repo/src/core/map_tree.cc" "src/core/CMakeFiles/bw_core.dir/map_tree.cc.o" "gcc" "src/core/CMakeFiles/bw_core.dir/map_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/am/CMakeFiles/bw_am.dir/DependInfo.cmake"
  "/root/repo/build/src/gist/CMakeFiles/bw_gist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/bw_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pages/CMakeFiles/bw_pages.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
