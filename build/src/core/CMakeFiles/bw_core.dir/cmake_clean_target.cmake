file(REMOVE_RECURSE
  "libbw_core.a"
)
