# Empty compiler generated dependencies file for bw_core.
# This may be replaced when dependencies are built.
