file(REMOVE_RECURSE
  "CMakeFiles/bw_core.dir/bites.cc.o"
  "CMakeFiles/bw_core.dir/bites.cc.o.d"
  "CMakeFiles/bw_core.dir/index_factory.cc.o"
  "CMakeFiles/bw_core.dir/index_factory.cc.o.d"
  "CMakeFiles/bw_core.dir/jagged.cc.o"
  "CMakeFiles/bw_core.dir/jagged.cc.o.d"
  "CMakeFiles/bw_core.dir/map_tree.cc.o"
  "CMakeFiles/bw_core.dir/map_tree.cc.o.d"
  "libbw_core.a"
  "libbw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
