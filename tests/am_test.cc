// Tests for src/am: the standard extensions' codecs and heuristics, the
// split algorithms, and STR bulk loading.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "pages/page_file.h"
#include "am/bulk_load.h"
#include "am/rtree.h"
#include "am/split_heuristics.h"
#include "am/srtree.h"
#include "am/sstree.h"
#include "gist/tree.h"
#include "tests/test_helpers.h"

namespace bw::am {
namespace {

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

TEST(RtreeExtensionTest, RectCodecRoundTrips) {
  RtreeExtension ext(4);
  const auto points = testing::MakeUniformPoints(20, 4, 1);
  const geom::Rect rect = geom::Rect::BoundingBox(points);
  EXPECT_EQ(ext.DecodeRect(ext.EncodeRect(rect)), rect);
}

TEST(RtreeExtensionTest, PenaltyIsEnlargement) {
  RtreeExtension ext(2);
  geom::Rect r(geom::Vec{0.0f, 0.0f}, geom::Vec{2.0f, 2.0f});
  const gist::Bytes bp = ext.EncodeRect(r);
  EXPECT_DOUBLE_EQ(ext.BpPenalty(bp, geom::Vec{1.0f, 1.0f}), 0.0);
  // Point at (4, 2): enlarges to [0,4]x[0,2] = 8, delta 4.
  EXPECT_DOUBLE_EQ(ext.BpPenalty(bp, geom::Vec{4.0f, 2.0f}), 4.0);
}

TEST(SsTreeExtensionTest, SphereCodecCarriesWeight) {
  SsTreeExtension ext(3);
  geom::Sphere ball(geom::Vec{1.0f, 2.0f, 3.0f}, 4.0);
  const gist::Bytes bp = ext.EncodeSphere(ball, 123);
  EXPECT_EQ(ext.DecodeWeight(bp), 123u);
  const geom::Sphere decoded = ext.DecodeSphere(bp);
  EXPECT_EQ(decoded.center(), ball.center());
  EXPECT_NEAR(decoded.radius(), 4.0, 1e-3);
}

TEST(SsTreeExtensionTest, ParentBpCoversChildren) {
  SsTreeExtension ext(3);
  std::vector<gist::Bytes> children;
  std::vector<std::vector<geom::Vec>> groups;
  for (int g = 0; g < 5; ++g) {
    groups.push_back(testing::MakeClusteredPoints(30, 3, 1, g + 1));
    children.push_back(ext.BpFromPoints(groups.back()));
  }
  const gist::Bytes parent = ext.BpFromChildBps(children);
  EXPECT_EQ(ext.DecodeWeight(parent), 150u);
  for (const auto& group : groups) {
    for (const auto& p : group) {
      EXPECT_DOUBLE_EQ(ext.BpMinDistance(parent, p), 0.0);
    }
  }
}

TEST(SrTreeExtensionTest, BoundIsMaxOfRectAndSphere) {
  SrTreeExtension ext(2);
  const auto points = testing::MakeClusteredPoints(40, 2, 1, 3);
  const gist::Bytes bp = ext.BpFromPoints(points);
  const auto queries = testing::MakeUniformPoints(30, 2, 4);
  for (const auto& q : queries) {
    const double rect_d =
        std::sqrt(ext.DecodeRect(bp).MinDistanceSquared(q));
    const double sphere_d = ext.DecodeSphere(bp).MinDistance(q);
    EXPECT_DOUBLE_EQ(ext.BpMinDistance(bp, q), std::max(rect_d, sphere_d));
  }
}

// ---------------------------------------------------------------------------
// Split heuristics
// ---------------------------------------------------------------------------

TEST(QuadraticSplitTest, BothSidesRespectMinFill) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 10 + rng.NextBelow(100);
    const auto points = testing::MakeUniformPoints(n, 3, trial);
    std::vector<geom::Rect> rects;
    for (const auto& p : points) rects.emplace_back(p);
    const auto split = QuadraticSplit(rects, 0.4);
    size_t right = 0;
    for (bool b : split) right += b;
    const size_t min_fill = std::max<size_t>(1, size_t(0.4 * double(n)));
    EXPECT_GE(right, min_fill) << "n=" << n;
    EXPECT_GE(n - right, min_fill) << "n=" << n;
  }
}

TEST(QuadraticSplitTest, SeparatesTwoObviousClusters) {
  // Two groups far apart: the split must be the cluster assignment.
  std::vector<geom::Rect> rects;
  for (int i = 0; i < 10; ++i) {
    rects.emplace_back(geom::Vec{float(i) * 0.01f, 0.0f});
  }
  for (int i = 0; i < 10; ++i) {
    rects.emplace_back(geom::Vec{100.0f + float(i) * 0.01f, 0.0f});
  }
  const auto split = QuadraticSplit(rects, 0.4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(split[i], split[0]);
  for (int i = 10; i < 20; ++i) EXPECT_EQ(split[i], split[10]);
  EXPECT_NE(split[0], split[10]);
}

TEST(MaxVarianceSplitTest, SplitsAlongHighVarianceDimension) {
  // Variance concentrated in dim 1: the median split must separate low
  // from high dim-1 halves.
  std::vector<geom::Vec> centers;
  for (int i = 0; i < 20; ++i) {
    centers.push_back(geom::Vec{0.5f, float(i) * 10.0f});
  }
  const auto split = MaxVarianceSplit(centers, 0.4);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(split[i]);
  for (int i = 10; i < 20; ++i) EXPECT_TRUE(split[i]);
}

TEST(MaxVarianceSplitTest, BalancedHalves) {
  const auto centers = testing::MakeUniformPoints(31, 4, 9);
  const auto split = MaxVarianceSplit(centers, 0.4);
  size_t right = 0;
  for (bool b : split) right += b;
  EXPECT_GE(right, 12u);
  EXPECT_LE(right, 19u);
}

// ---------------------------------------------------------------------------
// STR order + bulk load
// ---------------------------------------------------------------------------

TEST(StrOrderTest, IsAPermutation) {
  const auto points = testing::MakeUniformPoints(500, 3, 11);
  const auto order = StrOrder(points, 20);
  std::set<size_t> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), points.size());
}

TEST(StrOrderTest, TilesAreSpatiallyCoherent) {
  // The average MBR volume of STR tiles must be far below the volume of
  // random tiles of the same size.
  const auto points = testing::MakeUniformPoints(2000, 2, 13);
  const size_t capacity = 50;
  const auto order = StrOrder(points, capacity);

  auto tile_volume = [&](const std::vector<size_t>& perm) {
    double total = 0.0;
    size_t tiles = 0;
    for (size_t begin = 0; begin + capacity <= perm.size();
         begin += capacity) {
      std::vector<geom::Vec> tile;
      for (size_t i = begin; i < begin + capacity; ++i) {
        tile.push_back(points[perm[i]]);
      }
      total += geom::Rect::BoundingBox(tile).Volume();
      ++tiles;
    }
    return total / double(tiles);
  };

  std::vector<size_t> identity(points.size());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_LT(tile_volume(order), 0.2 * tile_volume(identity));
}

TEST(BulkLoadTest, RejectsBadInput) {
  pages::PageFile file(4096);
  gist::Tree tree(&file, std::make_unique<RtreeExtension>(3));
  std::vector<geom::Vec> points = {geom::Vec(3)};
  EXPECT_FALSE(StrBulkLoad(&tree, points, {}).ok());     // size mismatch
  EXPECT_FALSE(StrBulkLoad(&tree, {}, {}).ok());         // empty
  BulkLoadOptions bad;
  bad.fill_fraction = 1.5;
  EXPECT_FALSE(StrBulkLoad(&tree, points, {7}, bad).ok());
  ASSERT_TRUE(StrBulkLoad(&tree, points, {7}).ok());
  EXPECT_FALSE(StrBulkLoad(&tree, points, {8}).ok());    // non-empty tree
}

TEST(BulkLoadTest, ProducesValidTreeAtTargetFill) {
  pages::PageFile file(4096);
  gist::Tree tree(&file, std::make_unique<RtreeExtension>(5));
  const auto points = testing::MakeClusteredPoints(10000, 5, 20, 17);
  std::vector<gist::Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);
  BulkLoadOptions options;
  options.fill_fraction = 0.85;
  ASSERT_TRUE(StrBulkLoad(&tree, points, rids, options).ok());
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_EQ(tree.size(), points.size());

  const auto shape = tree.Shape();
  // All leaves except possibly the last are near the fill target.
  EXPECT_NEAR(shape.avg_utilization_per_level[0], 0.85, 0.08);
  // Fanout sanity: height = ceil-log of leaf count.
  EXPECT_GE(shape.height, 2);
  EXPECT_LE(shape.height, 4);
}

TEST(BulkLoadTest, LowFillProducesMoreLeaves) {
  const auto points = testing::MakeUniformPoints(3000, 3, 23);
  std::vector<gist::Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);

  auto leaves_at = [&](double fill) {
    pages::PageFile file(4096);
    gist::Tree tree(&file, std::make_unique<RtreeExtension>(3));
    BulkLoadOptions options;
    options.fill_fraction = fill;
    BW_CHECK_OK(StrBulkLoad(&tree, points, rids, options));
    return tree.Shape().LeafNodes();
  };
  EXPECT_GT(leaves_at(0.5), leaves_at(1.0) * 3 / 2);
}

TEST(BulkLoadTest, InsertionLoadMatchesBulkResults) {
  const auto points = testing::MakeClusteredPoints(800, 3, 5, 29);
  std::vector<gist::Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);

  pages::PageFile f1(2048), f2(2048);
  gist::Tree bulk(&f1, std::make_unique<RtreeExtension>(3));
  gist::Tree inserted(&f2, std::make_unique<RtreeExtension>(3));
  ASSERT_TRUE(StrBulkLoad(&bulk, points, rids).ok());
  ASSERT_TRUE(InsertionLoad(&inserted, points, rids).ok());
  ASSERT_TRUE(inserted.Validate().ok());

  // Same query answers from both trees.
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Vec& q = points[rng.NextBelow(points.size())];
    auto a = bulk.KnnSearch(q, 15, nullptr);
    auto b = inserted.KnnSearch(q, 15, nullptr);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (size_t i = 0; i < 15; ++i) {
      EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-6);
    }
  }
  // Insertion-loaded trees are less tightly packed.
  EXPECT_GE(inserted.Shape().LeafNodes(), bulk.Shape().LeafNodes());
}

}  // namespace
}  // namespace bw::am
