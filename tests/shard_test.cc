// Tests for the horizontal sharding tier (src/shard/): STR partition
// properties (coverage, global RIDs, bound admissibility), ShardMap
// routing, and the scatter-gather router's headline contracts — k-NN
// over N healthy shards bit-identical to a single unsharded index,
// degraded accounting summed exactly across shards, deterministic
// mid-stream replica failover with count-skip, fault-budget fail-closed
// vs degraded answers, probe-driven recovery (dead resurrects, stale
// never does), and routed mutations with stale-marking.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "service/query_service.h"
#include "shard/fleet.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/shard_backend.h"
#include "storage/disk_page_file.h"
#include "storage/store.h"
#include "tests/test_helpers.h"
#include "util/random.h"

namespace bw::shard {
namespace {

using service::StreamOptions;

constexpr size_t kDim = 4;

std::string TempDir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "bw_shard_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::IndexBuildOptions TestBuild() {
  core::IndexBuildOptions build;
  build.am = "xjb";
  build.xjb_x = 0;
  return build;
}

std::unique_ptr<core::BuiltIndex> BuildSingleIndex(
    const std::vector<geom::Vec>& corpus) {
  auto built = core::BuildIndex(corpus, TestBuild());
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(*built);
}

Result<std::unique_ptr<ShardFleet>> BuildFleet(
    const std::vector<geom::Vec>& corpus, const std::string& name,
    size_t num_shards, size_t replicas, RouterOptions router = RouterOptions(),
    service::ServiceOptions service = service::ServiceOptions()) {
  FleetOptions options;
  options.num_shards = num_shards;
  options.replicas_per_shard = replicas;
  options.build = TestBuild();
  options.service = service;
  options.router = router;
  return ShardFleet::Build(corpus, TempDir(name), options);
}

std::vector<gist::Neighbor> TruthKnn(const gist::Tree& tree,
                                     const geom::Vec& query, size_t k) {
  gist::TraversalStats stats;
  auto result = tree.KnnSearch(query, k, &stats);
  BW_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(*result);
}

std::multiset<gist::Rid> RidSet(const std::vector<gist::Neighbor>& neighbors) {
  std::multiset<gist::Rid> rids;
  for (const auto& n : neighbors) rids.insert(n.rid);
  return rids;
}

// ---------------------------------------------------------------------------
// Partitioner properties
// ---------------------------------------------------------------------------

TEST(PartitionerTest, SplitsCoverCorpusWithGlobalRids) {
  const auto corpus = testing::MakeClusteredPoints(500, kDim, 6, 31);
  const Partition partition = PartitionByStr(corpus, 4);
  ASSERT_EQ(partition.num_shards(), 4u);
  ASSERT_EQ(partition.bounds.size(), 4u);

  std::set<gist::Rid> seen;
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_EQ(partition.points[s].size(), partition.rids[s].size());
    ASSERT_FALSE(partition.points[s].empty());
    total += partition.points[s].size();
    for (size_t i = 0; i < partition.rids[s].size(); ++i) {
      const gist::Rid rid = partition.rids[s][i];
      // RIDs are global corpus positions, never renumbered...
      ASSERT_LT(rid, corpus.size());
      EXPECT_TRUE(seen.insert(rid).second) << "rid " << rid << " duplicated";
      // ...and each shard point is exactly the corpus point it names.
      for (size_t d = 0; d < kDim; ++d) {
        ASSERT_EQ(partition.points[s][i][d], corpus[rid][d]);
      }
      // Every point is inside its shard's box.
      EXPECT_EQ(partition.bounds[s].MinDistance(partition.points[s][i]), 0.0);
    }
  }
  EXPECT_EQ(total, corpus.size());  // a true partition: no loss, no overlap.
}

TEST(PartitionerTest, MinDistanceIsAdmissibleLowerBound) {
  const auto corpus = testing::MakeClusteredPoints(400, kDim, 5, 47);
  const Partition partition = PartitionByStr(corpus, 5);
  const auto queries = testing::MakeUniformPoints(20, kDim, 99);
  for (const geom::Vec& q : queries) {
    for (size_t s = 0; s < partition.num_shards(); ++s) {
      const double bound = partition.bounds[s].MinDistance(q);
      for (const geom::Vec& p : partition.points[s]) {
        EXPECT_LE(bound, std::sqrt(p.DistanceSquaredTo(q)) + 1e-9);
      }
    }
  }
}

TEST(PartitionerTest, TinyCorpusEdges) {
  const auto corpus = testing::MakeUniformPoints(5, kDim, 3);
  const Partition one = PartitionByStr(corpus, 1);
  ASSERT_EQ(one.num_shards(), 1u);
  EXPECT_EQ(one.points[0].size(), corpus.size());
  const Partition each = PartitionByStr(corpus, 5);
  for (size_t s = 0; s < 5; ++s) EXPECT_EQ(each.points[s].size(), 1u);
}

TEST(ShardMapTest, OwnerOfIsNearestBoxAndEnlargeReroutes) {
  const auto corpus = testing::MakeClusteredPoints(300, kDim, 4, 13);
  const Partition partition = PartitionByStr(corpus, 3);
  ShardMap map(kDim, partition.bounds);

  // A stored point is inside its own shard's box: distance 0 wins
  // (possibly shared with an overlapping box — ties go to the lowest
  // index, so the owner's bound must at least be 0 too).
  for (size_t s = 0; s < 3; ++s) {
    const size_t owner = map.OwnerOf(partition.points[s][0]);
    EXPECT_EQ(map.RootBound(owner, partition.points[s][0]), 0.0);
  }

  // A far-away point routes somewhere; after EnlargeForInsert that
  // shard's box contains it, so re-routing it is stable.
  geom::Vec far(kDim);
  for (size_t d = 0; d < kDim; ++d) far[d] = 500.0f + 7.0f * d;
  const size_t owner = map.OwnerOf(far);
  EXPECT_GT(map.RootBound(owner, far), 0.0);
  map.EnlargeForInsert(owner, far);
  EXPECT_EQ(map.RootBound(owner, far), 0.0);
  EXPECT_EQ(map.OwnerOf(far), owner);
}

// ---------------------------------------------------------------------------
// Router vs single index: bit-identical answers
// ---------------------------------------------------------------------------

TEST(RouterKnnTest, BitIdenticalToSingleIndexRandomized) {
  const auto corpus = testing::MakeClusteredPoints(1200, kDim, 8, 21);
  auto single = BuildSingleIndex(corpus);
  ASSERT_NE(single, nullptr);
  auto fleet = BuildFleet(corpus, "bitident", 4, 1);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  Rng rng(2026);
  for (int q = 0; q < 40; ++q) {
    geom::Vec query(kDim);
    for (size_t d = 0; d < kDim; ++d) {
      query[d] = static_cast<float>(rng.Uniform(0.0, 100.0));
    }
    const size_t k = 1 + rng.NextBelow(24);
    StreamOptions stream;
    stream.max_results = k;
    auto merged = router->Knn(query, stream);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_FALSE(merged->degraded());
    const auto truth = TruthKnn(single->tree(), query, k);
    ASSERT_EQ(merged->neighbors.size(), truth.size()) << "query " << q;
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(merged->neighbors[i].rid, truth[i].rid)
          << "query " << q << " position " << i;
      EXPECT_EQ(merged->neighbors[i].distance, truth[i].distance)
          << "query " << q << " position " << i;
    }
  }
  // Clustered data + tight shard boxes: early termination must have
  // left some shards unopened across 40 queries.
  EXPECT_GT(router->stats().shards_pruned, 0u);
  EXPECT_EQ(router->stats().queries, 40u);
}

TEST(RouterKnnTest, RangeMatchesSingleIndex) {
  const auto corpus = testing::MakeClusteredPoints(800, kDim, 6, 53);
  auto single = BuildSingleIndex(corpus);
  ASSERT_NE(single, nullptr);
  auto fleet = BuildFleet(corpus, "range", 3, 1);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  Rng rng(7);
  for (int q = 0; q < 10; ++q) {
    const geom::Vec& query = corpus[rng.NextBelow(corpus.size())];
    const double radius = rng.Uniform(2.0, 15.0);
    auto merged = (*fleet)->router()->Range(query, radius, 0);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    gist::TraversalStats stats;
    auto truth = single->tree().RangeSearch(query, radius, &stats);
    ASSERT_TRUE(truth.ok());
    // The router sorts by (distance, rid); the single index sorts by
    // distance only, so compare as sets plus per-position distances.
    ASSERT_EQ(merged->neighbors.size(), truth->size());
    EXPECT_EQ(RidSet(merged->neighbors), RidSet(*truth));
    std::sort(truth->begin(), truth->end(),
              [](const gist::Neighbor& a, const gist::Neighbor& b) {
                return std::tie(a.distance, a.rid) <
                       std::tie(b.distance, b.rid);
              });
    for (size_t i = 0; i < truth->size(); ++i) {
      EXPECT_EQ(merged->neighbors[i].rid, (*truth)[i].rid);
      EXPECT_EQ(merged->neighbors[i].distance, (*truth)[i].distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Degraded accounting: router totals == sum of per-shard totals
// ---------------------------------------------------------------------------

TEST(RouterFaultTest, DegradedAccountingSumsAcrossShards) {
  const auto corpus = testing::MakeClusteredPoints(600, kDim, 5, 67);
  service::ServiceOptions per_shard;
  per_shard.fault_budget = 1u << 20;  // shards absorb faults, never fail.
  auto fleet = BuildFleet(corpus, "degradesum", 3, 1, RouterOptions(),
                          per_shard);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  // Quarantine every page of shard 1: its stream degrades to flagged
  // and empty while the replica itself stays live.
  storage::DiskPageFile* disk = (*fleet)->index(1, 0)->store().disk();
  for (pages::PageId id = 0; id < disk->page_count(); ++id) {
    disk->health().Quarantine(id);
  }

  const geom::Vec query = testing::MakeUniformPoints(1, kDim, 5)[0];
  StreamOptions stream;
  stream.max_results = corpus.size();  // force every shard open.
  auto merged = (*fleet)->router()->Knn(query, stream);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->degraded());

  // Ground truth: drain the identical stream on each shard directly
  // and sum the per-shard accounting.
  uint64_t expected_skipped = 0;
  bool expected_degraded = false;
  size_t expected_results = 0;
  for (size_t s = 0; s < (*fleet)->num_shards(); ++s) {
    auto cursor = (*fleet)->service(s, 0)->OpenCursor(query, stream);
    for (;;) {
      auto next = cursor->Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      ++expected_results;
    }
    expected_skipped += cursor->pages_skipped();
    expected_degraded |= cursor->degraded();
  }
  EXPECT_GT(expected_skipped, 0u);
  EXPECT_TRUE(expected_degraded);
  EXPECT_EQ(merged->metrics.pages_skipped, expected_skipped);
  EXPECT_EQ(merged->neighbors.size(), expected_results);
  EXPECT_GE((*fleet)->router()->stats().degraded_queries, 1u);
}

// ---------------------------------------------------------------------------
// Mid-stream failover: deterministic fail-after-N replica
// ---------------------------------------------------------------------------

// Fails every Next() after `fail_after` successful pulls, for every
// frontier it ever opens — the deterministic stand-in for a replica
// dying mid-stream.
class FailAfterFrontier : public ShardFrontier {
 public:
  FailAfterFrontier(std::unique_ptr<ShardFrontier> inner, size_t fail_after)
      : inner_(std::move(inner)), remaining_(fail_after) {}

  Result<std::optional<gist::Neighbor>> Next() override {
    if (remaining_ == 0) {
      return Status::Unavailable("replica fail-stopped mid-stream (injected)");
    }
    --remaining_;
    return inner_->Next();
  }
  Status Finish() override { return inner_->Finish(); }
  bool degraded() const override { return inner_->degraded(); }
  uint64_t pages_skipped() const override { return inner_->pages_skipped(); }
  bool truncated() const override { return inner_->truncated(); }

 private:
  std::unique_ptr<ShardFrontier> inner_;
  size_t remaining_;
};

class FailAfterBackend : public ShardBackend {
 public:
  FailAfterBackend(service::QueryService* service, size_t fail_after)
      : delegate_(service, "fail-after"), fail_after_(fail_after) {}

  Result<std::unique_ptr<ShardFrontier>> OpenFrontier(
      const geom::Vec& query, const StreamOptions& limits) override {
    BW_ASSIGN_OR_RETURN(std::unique_ptr<ShardFrontier> inner,
                        delegate_.OpenFrontier(query, limits));
    return std::unique_ptr<ShardFrontier>(
        new FailAfterFrontier(std::move(inner), fail_after_));
  }
  Result<service::QueryResponse> Range(const geom::Vec& query, double radius,
                                       uint32_t deadline_us) override {
    return delegate_.Range(query, radius, deadline_us);
  }
  Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                          uint64_t rid) override {
    return delegate_.Insert(point, rid);
  }
  Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                          uint64_t rid) override {
    return delegate_.Remove(point, rid);
  }
  Status Probe() override { return delegate_.Probe(); }
  std::string DebugName() const override { return "fail-after"; }

 private:
  LocalShardBackend delegate_;
  size_t fail_after_;
};

TEST(RouterFaultTest, MidStreamFailoverIsBitIdentical) {
  const auto corpus = testing::MakeClusteredPoints(120, kDim, 3, 41);
  auto single = BuildSingleIndex(corpus);
  ASSERT_NE(single, nullptr);

  // Hand-built two-shard fleet: shard 0 has a replica pair over
  // bit-identical indexes, the preferred one rigged to die after two
  // mid-stream results.
  const Partition partition = PartitionByStr(corpus, 2);
  const std::string dir = TempDir("midstream");
  std::vector<std::unique_ptr<core::DurableIndex>> indexes;
  std::vector<std::unique_ptr<service::QueryService>> services;
  auto make_service = [&](size_t s, const char* tag) {
    const std::string stem = dir + "/s" + std::to_string(s) + "_" + tag;
    auto index = BuildShardIndex(partition.points[s], partition.rids[s],
                                 TestBuild(), stem + ".idx", stem + ".wal");
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    indexes.push_back(std::move(*index));
    services.push_back(std::make_unique<service::QueryService>(
        indexes.back().get(), service::ServiceOptions()));
    return services.back().get();
  };
  std::vector<Router::Shard> shards(2);
  shards[0].replicas.push_back(
      std::make_unique<FailAfterBackend>(make_service(0, "a"), 2));
  shards[0].replicas.push_back(
      std::make_unique<LocalShardBackend>(make_service(0, "b"), "local:0/1"));
  shards[1].replicas.push_back(
      std::make_unique<LocalShardBackend>(make_service(1, "a"), "local:1/0"));
  Router router(ShardMap(kDim, partition.bounds), std::move(shards),
                RouterOptions());

  // k big enough that shard 0 must stream more than two results.
  const geom::Vec& query = partition.points[0][0];
  StreamOptions stream;
  stream.max_results = 40;
  auto merged = router.Knn(query, stream);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  const auto truth = TruthKnn(single->tree(), query, 40);
  ASSERT_EQ(merged->neighbors.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(merged->neighbors[i].rid, truth[i].rid) << "position " << i;
    EXPECT_EQ(merged->neighbors[i].distance, truth[i].distance);
  }
  EXPECT_GE(router.stats().failovers, 1u);
  EXPECT_EQ(router.replica_state(0, 0), ReplicaState::kDead);
  EXPECT_EQ(router.replica_state(0, 1), ReplicaState::kHealthy);
}

// ---------------------------------------------------------------------------
// Fault budget: fail closed at 0, degraded-but-genuine within budget
// ---------------------------------------------------------------------------

TEST(RouterFaultTest, DeadShardFailsClosedWithZeroBudget) {
  const auto corpus = testing::MakeClusteredPoints(300, kDim, 4, 59);
  RouterOptions router_options;
  router_options.fault_budget = 0;
  auto fleet = BuildFleet(corpus, "budget0", 3, 1, router_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  (*fleet)->backend(0, 0)->set_failed(true);

  StreamOptions stream;
  stream.max_results = corpus.size();  // forces shard 0 to open.
  auto merged = (*fleet)->router()->Knn(corpus[0], stream);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kUnavailable);
}

TEST(RouterFaultTest, DeadShardWithinBudgetAnswersDegradedSubset) {
  const auto corpus = testing::MakeClusteredPoints(300, kDim, 4, 59);
  RouterOptions router_options;
  router_options.fault_budget = 1;
  auto fleet = BuildFleet(corpus, "budget1", 3, 1, router_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  (*fleet)->backend(0, 0)->set_failed(true);

  StreamOptions stream;
  stream.max_results = corpus.size();
  auto merged = (*fleet)->router()->Knn(corpus[0], stream);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->degraded());

  // The degraded answer is exactly the surviving shards' corpus slice:
  // genuine, complete over what is reachable, nothing invented.
  const Partition partition = PartitionByStr(corpus, 3);
  std::multiset<gist::Rid> expected;
  for (gist::Rid rid : partition.rids[1]) expected.insert(rid);
  for (gist::Rid rid : partition.rids[2]) expected.insert(rid);
  EXPECT_EQ(RidSet(merged->neighbors), expected);
  EXPECT_GE((*fleet)->router()->stats().degraded_queries, 1u);

  // The replica answers probes again: the next full query is complete.
  (*fleet)->backend(0, 0)->set_failed(false);
  (*fleet)->router()->ProbeNow();
  auto healed = (*fleet)->router()->Knn(corpus[0], stream);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->degraded());
  EXPECT_EQ(healed->neighbors.size(), corpus.size());
}

TEST(RouterFaultTest, ProbeResurrectsDeadReplica) {
  const auto corpus = testing::MakeClusteredPoints(200, kDim, 3, 71);
  auto fleet = BuildFleet(corpus, "probe", 1, 2);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  (*fleet)->backend(0, 0)->set_failed(true);
  StreamOptions stream;
  stream.max_results = 5;
  auto merged = router->Knn(corpus[0], stream);  // fails over to replica 1.
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->neighbors.size(), 5u);
  EXPECT_EQ(router->replica_state(0, 0), ReplicaState::kDead);

  (*fleet)->backend(0, 0)->set_failed(false);
  router->ProbeNow();
  EXPECT_EQ(router->replica_state(0, 0), ReplicaState::kHealthy);
  EXPECT_GT(router->stats().probes, 0u);
}

// ---------------------------------------------------------------------------
// Routed mutations: replicate to all, stale on divergence
// ---------------------------------------------------------------------------

TEST(RouterMutationTest, InsertReplicatesReadsBackAndRemoves) {
  const auto corpus = testing::MakeClusteredPoints(240, kDim, 3, 83);
  service::ServiceOptions per_shard;
  per_shard.write.enabled = true;
  auto fleet = BuildFleet(corpus, "mutate", 2, 2, RouterOptions(), per_shard);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  geom::Vec point(kDim);
  for (size_t d = 0; d < kDim; ++d) point[d] = 50.0f + 0.25f * d;
  const gist::Rid rid = 99999;
  auto inserted = router->Insert(point, rid);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  StreamOptions one;
  one.max_results = 1;
  auto nearest = router->Knn(point, one);
  ASSERT_TRUE(nearest.ok());
  ASSERT_EQ(nearest->neighbors.size(), 1u);
  EXPECT_EQ(nearest->neighbors[0].rid, rid);
  EXPECT_EQ(nearest->neighbors[0].distance, 0.0);

  // Both replicas of the owning shard applied it (bit-identity holds).
  const size_t owner = (*fleet)->map().OwnerOf(point);
  for (size_t r = 0; r < 2; ++r) {
    auto direct = (*fleet)->service(owner, r)->Knn(point, 1);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(direct->neighbors.size(), 1u);
    EXPECT_EQ(direct->neighbors[0].rid, rid);
  }

  auto removed = router->Remove(point, rid);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  auto after = router->Knn(point, one);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->neighbors.size(), 1u);
  EXPECT_NE(after->neighbors[0].rid, rid);

  auto again = router->Remove(point, rid);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);
  EXPECT_GE(router->stats().mutations, 3u);
}

TEST(RouterMutationTest, MissedWriteMarksReplicaStaleForever) {
  const auto corpus = testing::MakeClusteredPoints(240, kDim, 3, 89);
  service::ServiceOptions per_shard;
  per_shard.write.enabled = true;
  auto fleet = BuildFleet(corpus, "stale", 1, 2, RouterOptions(), per_shard);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  // Replica 1 misses a write replica 0 acks: it has diverged.
  (*fleet)->backend(0, 1)->set_failed(true);
  geom::Vec point(kDim);
  for (size_t d = 0; d < kDim; ++d) point[d] = 40.0f + 1.0f * d;
  auto inserted = router->Insert(point, 98765);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(router->replica_state(0, 1), ReplicaState::kStale);

  // Coming back to life does not cure divergence: stale is terminal.
  (*fleet)->backend(0, 1)->set_failed(false);
  router->ProbeNow();
  EXPECT_EQ(router->replica_state(0, 1), ReplicaState::kStale);

  // Queries keep serving from the consistent replica, write included.
  StreamOptions one;
  one.max_results = 1;
  auto nearest = router->Knn(point, one);
  ASSERT_TRUE(nearest.ok());
  ASSERT_EQ(nearest->neighbors.size(), 1u);
  EXPECT_EQ(nearest->neighbors[0].rid, 98765u);

  // The fleet surfaces the outage in its stats surface.
  bool found = false;
  for (const auto& [name, value] : router->StatsFields()) {
    if (name == "router.stale_replicas") {
      EXPECT_EQ(value, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(router->Health().write_degraded);
}

// ---------------------------------------------------------------------------
// Concurrent mutations racing mid-stream failover
// ---------------------------------------------------------------------------

// Writers stream inserts through the router while readers run k-NN
// queries and a replica is killed and revived mid-flight. The routed
// write path must keep every replica of a shard applying mutations in
// the same admission order, so that after the dust settles (probe +
// catch-up) the replicas are bit-identical and the fleet's answers
// match a brute-force reference over exactly the admitted writes.
TEST(RouterMutationTest, ConcurrentMutationsRacingFailoverStayConsistent) {
  const auto corpus = testing::MakeClusteredPoints(300, kDim, 4, 97);
  service::ServiceOptions per_shard;
  per_shard.write.enabled = true;
  RouterOptions router_options;
  router_options.fault_budget = 0;  // failover must cover, not degrade.
  auto fleet = BuildFleet(corpus, "race", 2, 2, router_options, per_shard);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  constexpr size_t kWriters = 3;
  constexpr size_t kPerWriter = 30;
  std::atomic<bool> stop_readers{false};
  std::vector<geom::Vec> inserted(kWriters * kPerWriter, geom::Vec(kDim));

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (size_t j = 0; j < kPerWriter; ++j) {
        geom::Vec point(kDim);
        for (size_t d = 0; d < kDim; ++d) {
          point[d] = static_cast<float>(rng.Uniform(0.0, 100.0));
        }
        const size_t slot = w * kPerWriter + j;
        auto outcome = router->Insert(point, corpus.size() + slot);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        inserted[slot] = point;
      }
    });
  }

  // Readers hammer k-NN across the fan-out while replicas flap; every
  // answer must be well-formed (sorted, genuine rids) even mid-race.
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(2000 + r);
      while (!stop_readers.load()) {
        geom::Vec query(kDim);
        for (size_t d = 0; d < kDim; ++d) {
          query[d] = static_cast<float>(rng.Uniform(0.0, 100.0));
        }
        StreamOptions stream;
        stream.max_results = 16;
        auto merged = router->Knn(query, stream);
        if (!merged.ok()) continue;  // transient flap; budget 0 may fail.
        // No ordering assert mid-race: a cursor pulled across a
        // concurrent insert may see the new point out of merge order
        // (streams are not snapshot-isolated from the writer). Answers
        // must still be genuine rids, never junk.
        for (const gist::Neighbor& n : merged->neighbors) {
          EXPECT_LT(n.rid, corpus.size() + inserted.size());
        }
      }
    });
  }

  // Kill one replica of each shard mid-stream, let writes land without
  // them (kStale via missed writes, kDead via failed streams), revive.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (*fleet)->backend(0, 0)->set_failed(true);
  (*fleet)->backend(1, 1)->set_failed(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  (*fleet)->backend(0, 0)->set_failed(false);
  (*fleet)->backend(1, 1)->set_failed(false);

  for (auto& t : writers) t.join();
  stop_readers.store(true);
  for (auto& t : readers) t.join();

  // Heal the fleet: probes resurrect the merely-dead, catch-up sweeps
  // cure the diverged (bounded; every pass readmits or leaves kStale).
  router->ProbeNow();
  for (int pass = 0; pass < 8; ++pass) {
    router->CatchupNow();
    bool all_healthy = true;
    for (size_t s = 0; s < 2; ++s) {
      for (size_t r = 0; r < 2; ++r) {
        all_healthy &=
            router->replica_state(s, r) == ReplicaState::kHealthy;
      }
    }
    if (all_healthy) break;
  }

  // Admission-order consistency: replicas of each shard byte-identical.
  for (size_t s = 0; s < 2; ++s) {
    ASSERT_EQ(router->replica_state(s, 0), ReplicaState::kHealthy);
    ASSERT_EQ(router->replica_state(s, 1), ReplicaState::kHealthy);
    auto sum0 = (*fleet)->service(s, 0)->TreeChecksum();
    auto sum1 = (*fleet)->service(s, 1)->TreeChecksum();
    ASSERT_TRUE(sum0.ok()) << sum0.status().ToString();
    ASSERT_TRUE(sum1.ok()) << sum1.status().ToString();
    EXPECT_EQ(sum0->tag, sum1->tag) << "shard " << s;
    EXPECT_EQ(sum0->page_count, sum1->page_count) << "shard " << s;
    EXPECT_EQ(sum0->crc, sum1->crc) << "shard " << s;
  }

  // The fleet's merged answer covers exactly corpus + admitted inserts.
  StreamOptions all;
  all.max_results = corpus.size() + inserted.size();
  auto merged = router->Knn(corpus[0], all);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->degraded());
  double prev = 0;  // quiescent now: merge order must hold again.
  for (const gist::Neighbor& n : merged->neighbors) {
    EXPECT_GE(n.distance, prev);
    prev = n.distance;
  }
  std::multiset<gist::Rid> expected;
  for (size_t i = 0; i < corpus.size() + inserted.size(); ++i) {
    expected.insert(i);
  }
  EXPECT_EQ(RidSet(merged->neighbors), expected);
}

// ---------------------------------------------------------------------------
// Circuit breaker: state machine under a synthetic clock
// ---------------------------------------------------------------------------

BreakerOptions TestBreaker() {
  BreakerOptions options;
  options.error_threshold = 3;
  options.slow_threshold = 2;
  options.outlier_floor_us = 1'000;
  options.outlier_factor = 4.0;
  options.min_samples = 4;
  options.cooldown_us = 10'000;
  return options;
}

TEST(CircuitBreakerTest, ConsecutiveErrorsTripOpen) {
  CircuitBreaker breaker(TestBreaker());
  uint64_t now = 1'000'000;
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.OnResult(false, 0, now);
  breaker.OnResult(false, 0, now += 10);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // 2 < threshold 3.
  breaker.OnResult(true, 100, now += 10);             // success resets.
  breaker.OnResult(false, 0, now += 10);
  breaker.OnResult(false, 0, now += 10);
  breaker.OnResult(false, 0, now += 10);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.Allow(now + 100));  // cooldown not yet over.
}

TEST(CircuitBreakerTest, LatencyOutliersTripOpenOnlyOnceArmed) {
  CircuitBreaker breaker(TestBreaker());
  uint64_t now = 1'000'000;
  // Two huge samples while the tracker is cold (< min_samples = 4):
  // never slow, so no trip.
  breaker.OnResult(true, 1'000'000, now += 10);
  breaker.OnResult(true, 1'000'000, now += 10);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // A healthy history (p50 ~ 100us) arms the detector...
  for (int i = 0; i < 8; ++i) breaker.OnResult(true, 100, now += 10);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // ...then two consecutive outliers (>> max(floor, 4 x p50)) trip it.
  breaker.OnResult(true, 50'000, now += 10);
  breaker.OnResult(true, 50'000, now += 10);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
}

TEST(CircuitBreakerTest, BufferedReplaysAreStreakNeutral) {
  // A remote frontier hands out already-pulled batch results in
  // microseconds between two browned wire pulls. Those buffered
  // replays say nothing about the backend: they must not reset the
  // outlier streak (or a browned remote replica could never trip).
  CircuitBreaker breaker(TestBreaker());
  uint64_t now = 1'000'000;
  for (int i = 0; i < 8; ++i) breaker.OnResult(true, 200, now += 10);
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.OnResult(true, 50'000, now += 10);  // browned wire pull.
  breaker.OnResult(true, 5, now += 10);       // buffered replay: neutral.
  breaker.OnResult(true, 5, now += 10);
  breaker.OnResult(true, 50'000, now += 10);  // next browned pull trips.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  // A genuine (>= streak_floor) fast wire operation still resets.
  CircuitBreaker fresh(TestBreaker());
  now = 1'000'000;
  for (int i = 0; i < 8; ++i) fresh.OnResult(true, 200, now += 10);
  fresh.OnResult(true, 50'000, now += 10);
  fresh.OnResult(true, 200, now += 10);       // real fast pull: reset.
  fresh.OnResult(true, 50'000, now += 10);
  EXPECT_EQ(fresh.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenTrialClosesOnFastSuccess) {
  CircuitBreaker breaker(TestBreaker());
  uint64_t now = 1'000'000;
  for (int i = 0; i < 8; ++i) breaker.OnResult(true, 100, now += 10);
  breaker.OnResult(true, 50'000, now += 10);
  breaker.OnResult(true, 50'000, now += 10);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  EXPECT_FALSE(breaker.Allow(now + 5'000));  // mid-cooldown: stay away.
  now += 20'000;                             // cooldown (10ms) elapsed.
  EXPECT_TRUE(breaker.Allow(now));           // exactly one trial...
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(now + 10));     // ...no second admission.
  EXPECT_EQ(breaker.half_opens(), 1u);

  breaker.OnResult(true, 120, now += 10);    // fast success: re-close.
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.closes(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenTrialReopensOnSlowOrError) {
  CircuitBreaker breaker(TestBreaker());
  uint64_t now = 1'000'000;
  for (int i = 0; i < 8; ++i) breaker.OnResult(true, 100, now += 10);
  breaker.OnResult(true, 50'000, now += 10);
  breaker.OnResult(true, 50'000, now += 10);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  now += 20'000;
  ASSERT_TRUE(breaker.Allow(now));
  breaker.OnResult(true, 60'000, now += 10);  // trial still slow.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);             // a fresh cooldown started.

  now += 20'000;
  ASSERT_TRUE(breaker.Allow(now));
  breaker.OnResult(false, 0, now += 10);      // trial errored.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 3u);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  BreakerOptions options = TestBreaker();
  options.enabled = false;
  CircuitBreaker breaker(options);
  uint64_t now = 1'000'000;
  for (int i = 0; i < 20; ++i) breaker.OnResult(false, 0, now += 10);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(now));
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(DeadlineBudgetTest, SlicesSplitRemainingAndExhaust) {
  const uint64_t t0 = 5'000'000;
  DeadlineBudget unlimited(0, t0);
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_FALSE(unlimited.Exhausted(t0 + 1'000'000'000, 500));
  EXPECT_EQ(unlimited.SliceUs(t0, 3, 500), 0u);  // 0 = no deadline.

  DeadlineBudget budget(100'000, t0);  // 100ms total.
  EXPECT_FALSE(budget.unlimited());
  EXPECT_EQ(budget.remaining_us(t0), 100'000u);
  // Two eligible replicas split what is left evenly.
  EXPECT_EQ(budget.SliceUs(t0, 2, 500), 50'000u);
  EXPECT_EQ(budget.SliceUs(t0 + 60'000, 2, 500), 20'000u);
  // The floor protects the last attempt from a sliver slice.
  EXPECT_EQ(budget.SliceUs(t0 + 99'900, 2, 500), 500u);
  EXPECT_FALSE(budget.Exhausted(t0 + 99'000, 500));
  EXPECT_TRUE(budget.Exhausted(t0 + 99'900, 500));
  EXPECT_TRUE(budget.Exhausted(t0 + 200'000, 500));
  EXPECT_EQ(budget.remaining_us(t0 + 200'000), 0u);
}

// ---------------------------------------------------------------------------
// Hedged reads, breaker routing, and deadline budgets on a live fleet
// ---------------------------------------------------------------------------

TEST(RouterTailTest, HedgedReadBeatsBrownedReplicaBitIdentically) {
  const auto corpus = testing::MakeClusteredPoints(400, kDim, 4, 111);
  auto single = BuildSingleIndex(corpus);
  ASSERT_NE(single, nullptr);
  RouterOptions router_options;
  router_options.hedge = true;
  router_options.hedge_delay_floor_us = 1'000;
  router_options.hedge_delay_fallback_us = 2'000;
  router_options.breaker.enabled = false;  // isolate the hedge path.
  router_options.jitter_seed = 42;
  auto fleet = BuildFleet(corpus, "hedge", 2, 2, router_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  // Replica 0 of every shard browns out: alive, correct, probe-visible
  // — just 30ms per streamed result, far past the hedge delay.
  for (size_t s = 0; s < 2; ++s) {
    (*fleet)->backend(s, 0)->set_delay_us(30'000);
  }

  StreamOptions stream;
  stream.max_results = 12;
  auto merged = router->Knn(corpus[0], stream);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->degraded());

  // Bit-identical to the unsharded index: hedging changed who answered,
  // never what the answer is.
  const auto truth = TruthKnn(single->tree(), corpus[0], 12);
  ASSERT_EQ(merged->neighbors.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(merged->neighbors[i].rid, truth[i].rid) << "position " << i;
    EXPECT_EQ(merged->neighbors[i].distance, truth[i].distance);
  }

  const RouterStats stats = router->stats();
  EXPECT_GE(stats.hedges_attempted, 1u);
  EXPECT_GE(stats.hedges_won, 1u);
  // A brownout is not a failure: nobody was marked dead, nothing
  // failed over, the slow replicas stay in rotation.
  EXPECT_EQ(stats.failovers, 0u);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(router->replica_state(s, 0), ReplicaState::kHealthy);
    EXPECT_EQ(router->replica_state(s, 1), ReplicaState::kHealthy);
  }
}

TEST(RouterTailTest, BreakerOpensOnBrownoutThenRecovers) {
  const auto corpus = testing::MakeClusteredPoints(300, kDim, 3, 117);
  RouterOptions router_options;
  router_options.hedge = false;  // isolate the breaker path.
  router_options.breaker.slow_threshold = 3;
  router_options.breaker.outlier_floor_us = 2'000;
  router_options.breaker.min_samples = 8;
  router_options.breaker.cooldown_us = 50'000;
  auto fleet = BuildFleet(corpus, "breaker", 1, 2, router_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  StreamOptions stream;
  stream.max_results = 10;
  // Healthy warm-up: replica 0 (the preferred one) builds a fast
  // latency history, arming the outlier detector.
  for (int q = 0; q < 3; ++q) {
    auto warm = router->Knn(corpus[q], stream);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }
  ASSERT_EQ(router->breaker_state(0, 0), BreakerState::kClosed);

  // Brownout: 20ms per streamed result. One query's pulls are >= 3
  // consecutive outliers against the fast history — the breaker trips
  // mid-stream, deterministically.
  (*fleet)->backend(0, 0)->set_delay_us(20'000);
  auto slow = router->Knn(corpus[0], stream);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_EQ(router->breaker_state(0, 0), BreakerState::kOpen);
  EXPECT_GE(router->stats().breaker_opens, 1u);

  // While open, queries route around the browned replica (replica 1
  // serves) — still correct, never degraded.
  auto routed = router->Knn(corpus[1], stream);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_FALSE(routed->degraded());
  EXPECT_EQ(router->breaker_state(0, 0), BreakerState::kOpen);

  // Brownout lifts; after the cooldown the next query admits one trial
  // on replica 0, which succeeds fast and re-closes the breaker.
  (*fleet)->backend(0, 0)->set_delay_us(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto trial = router->Knn(corpus[2], stream);
  ASSERT_TRUE(trial.ok()) << trial.status().ToString();
  EXPECT_EQ(router->breaker_state(0, 0), BreakerState::kClosed);
  EXPECT_GE(router->stats().breaker_half_opens, 1u);
  EXPECT_GE(router->stats().breaker_closes, 1u);
}

TEST(RouterTailTest, OpenBreakerIsAdvisoryNeverUnavailability) {
  const auto corpus = testing::MakeClusteredPoints(200, kDim, 3, 123);
  RouterOptions router_options;
  router_options.hedge = false;
  router_options.breaker.slow_threshold = 3;
  router_options.breaker.outlier_floor_us = 2'000;
  router_options.breaker.min_samples = 8;
  router_options.breaker.cooldown_us = 60'000'000;  // never cools here.
  // One shard, ONE replica: the breaker will open on it, but it is the
  // only copy of the data — queries must keep working regardless.
  auto fleet = BuildFleet(corpus, "advisory", 1, 1, router_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Router* router = (*fleet)->router();

  StreamOptions stream;
  stream.max_results = 10;
  for (int q = 0; q < 3; ++q) {
    auto warm = router->Knn(corpus[q], stream);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }
  (*fleet)->backend(0, 0)->set_delay_us(20'000);
  auto slow = router->Knn(corpus[0], stream);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  ASSERT_EQ(router->breaker_state(0, 0), BreakerState::kOpen);

  // Breaker open, no sibling, cooldown nowhere near over: the
  // last-resort pass still serves the query, complete and correct.
  auto merged = router->Knn(corpus[1], stream);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->degraded());
  EXPECT_EQ(merged->neighbors.size(), 10u);
}

// A replica that is both slow (20ms per pull) and rigged to die after
// two results: with a 30ms deadline the failover re-open cannot fit in
// what is left, so the router degrades instead of re-scattering.
class SlowFailBackend : public ShardBackend {
 public:
  SlowFailBackend(service::QueryService* service, uint64_t delay_us,
                  size_t fail_after)
      : delegate_(service, "slow-fail"), fail_after_(fail_after) {
    delegate_.set_delay_us(delay_us);
  }

  Result<std::unique_ptr<ShardFrontier>> OpenFrontier(
      const geom::Vec& query, const StreamOptions& limits) override {
    BW_ASSIGN_OR_RETURN(std::unique_ptr<ShardFrontier> inner,
                        delegate_.OpenFrontier(query, limits));
    return std::unique_ptr<ShardFrontier>(
        new FailAfterFrontier(std::move(inner), fail_after_));
  }
  Result<service::QueryResponse> Range(const geom::Vec& query, double radius,
                                       uint32_t deadline_us) override {
    return delegate_.Range(query, radius, deadline_us);
  }
  Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                          uint64_t rid) override {
    return delegate_.Insert(point, rid);
  }
  Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                          uint64_t rid) override {
    return delegate_.Remove(point, rid);
  }
  Status Probe() override { return delegate_.Probe(); }
  std::string DebugName() const override { return "slow-fail"; }

 private:
  LocalShardBackend delegate_;
  size_t fail_after_;
};

TEST(RouterTailTest, ExhaustedDeadlineBudgetDegradesInsteadOfRescattering) {
  const auto corpus = testing::MakeClusteredPoints(160, kDim, 3, 131);
  const Partition partition = PartitionByStr(corpus, 2);
  const std::string dir = TempDir("budget_exhaust");
  std::vector<std::unique_ptr<core::DurableIndex>> indexes;
  std::vector<std::unique_ptr<service::QueryService>> services;
  auto make_service = [&](size_t s, const char* tag) {
    const std::string stem = dir + "/s" + std::to_string(s) + "_" + tag;
    auto index = BuildShardIndex(partition.points[s], partition.rids[s],
                                 TestBuild(), stem + ".idx", stem + ".wal");
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    indexes.push_back(std::move(*index));
    services.push_back(std::make_unique<service::QueryService>(
        indexes.back().get(), service::ServiceOptions()));
    return services.back().get();
  };
  std::vector<Router::Shard> shards(2);
  shards[0].replicas.push_back(
      std::make_unique<LocalShardBackend>(make_service(0, "a"), "local:0/0"));
  // Shard 1's only replica burns 20ms per result and dies after two:
  // by then a 30ms budget cannot cover the re-open.
  shards[1].replicas.push_back(
      std::make_unique<SlowFailBackend>(make_service(1, "a"), 20'000, 2));
  RouterOptions router_options;
  router_options.fault_budget = 1;  // degraded is allowed; failure is not.
  router_options.hedge = false;
  router_options.breaker.enabled = false;
  Router router(ShardMap(kDim, partition.bounds), std::move(shards),
                router_options);

  StreamOptions stream;
  stream.max_results = corpus.size();  // forces both shards open.
  stream.deadline_us = 30'000;
  auto merged = router.Knn(partition.points[1][0], stream);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->degraded());
  // A degraded partial answer, inside the deadline: whatever streamed
  // before the budget ran out — genuine results, nothing invented, and
  // necessarily not the full corpus.
  EXPECT_GE(merged->neighbors.size(), 1u);
  EXPECT_LT(merged->neighbors.size(), corpus.size());
  for (const gist::Neighbor& n : merged->neighbors) {
    EXPECT_LT(n.rid, corpus.size());
  }
  EXPECT_GE(router.stats().budget_exhausted, 1u);
  EXPECT_GE(router.stats().degraded_queries, 1u);
}

}  // namespace
}  // namespace bw::shard
