// The async read engines' core promise: engine choice changes only
// scheduling, never results or fault accounting. These tests pin the
// one-tick-per-span injector contract of File::ReadBatch, the
// DiskPageFile batched Open/Scrub equivalence across engines, and the
// buffer pools' frontier-prefetch semantics (one overlapped miss delay
// per batch, Fetch-identical accounting, results unchanged).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "am/bulk_load.h"
#include "am/rtree.h"
#include "gist/nn_cursor.h"
#include "gist/tree.h"
#include "pages/buffer_pool.h"
#include "pages/page_file.h"
#include "pages/sharded_buffer_pool.h"
#include "storage/async_io.h"
#include "storage/disk_page_file.h"
#include "storage/fault_injector.h"
#include "storage/file_io.h"
#include "tests/test_helpers.h"

namespace bw {
namespace {

using storage::DiskPageFile;
using storage::FaultInjector;
using storage::File;
using storage::IoEngineChoice;
using storage::IoEngineKind;
using storage::ReadSpan;
using storage::ResolveIoEngine;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Sets an environment variable for the enclosing scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

IoEngineKind BuildAsyncDefault() {
#if defined(BW_HAVE_LIBURING)
  return IoEngineKind::kIoUring;
#else
  return IoEngineKind::kThreadPool;
#endif
}

TEST(IoEngineTest, ResolutionFollowsEnvThenBuildDefault) {
  ::unsetenv("BW_IO_ENGINE");
  EXPECT_EQ(ResolveIoEngine(), BuildAsyncDefault());
  {
    ScopedEnv env("BW_IO_ENGINE", "sync");
    EXPECT_EQ(ResolveIoEngine(), IoEngineKind::kSync);
  }
  {
    ScopedEnv env("BW_IO_ENGINE", "threads");
    EXPECT_EQ(ResolveIoEngine(), IoEngineKind::kThreadPool);
  }
  {
    // "uring" without liburing falls back to the thread pool rather
    // than failing; with liburing it is honored.
    ScopedEnv env("BW_IO_ENGINE", "uring");
    EXPECT_EQ(ResolveIoEngine(), BuildAsyncDefault());
  }
  {
    ScopedEnv env("BW_IO_ENGINE", "bogus");  // unrecognized: ignored.
    EXPECT_EQ(ResolveIoEngine(), BuildAsyncDefault());
  }
  {
    // An explicit caller choice beats the environment.
    ScopedEnv env("BW_IO_ENGINE", "threads");
    EXPECT_EQ(ResolveIoEngine(IoEngineChoice::kSync), IoEngineKind::kSync);
  }
}

TEST(ReadThreadPoolTest, RunsEveryIndexExactlyOnce) {
  auto& pool = storage::ReadThreadPool::Instance();
  EXPECT_GE(pool.worker_count(), 1u);
  constexpr size_t kN = 100;
  std::vector<std::atomic<int>> counts(kN);
  pool.RunBatch(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ReadThreadPoolTest, ConcurrentBatchesDoNotInterfere) {
  auto& pool = storage::ReadThreadPool::Instance();
  constexpr size_t kSubmitters = 4;
  constexpr size_t kN = 64;
  std::vector<std::vector<std::atomic<int>>> counts(kSubmitters);
  for (auto& c : counts) {
    c = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      pool.RunBatch(kN, [&, s](size_t i) { counts[s][i].fetch_add(1); });
    });
  }
  for (auto& t : submitters) t.join();
  for (size_t s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[s][i].load(), 1);
  }
}

std::string MakePatternFile(const std::string& name, size_t bytes) {
  const std::string path = TempPath(name);
  auto file = File::Open(path, /*truncate=*/true);
  EXPECT_TRUE(file.ok());
  std::vector<uint8_t> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<uint8_t>((i * 131) & 0xff);
  }
  EXPECT_TRUE((*file)->WriteAt(0, data.data(), data.size()).ok());
  EXPECT_TRUE((*file)->Sync().ok());
  return path;
}

TEST(ReadBatchTest, IdenticalBytesOnEveryEngine) {
  const std::string path = MakePatternFile("batch_bytes.bin", 64 * 1024);
  auto file = File::Open(path, /*truncate=*/false);
  ASSERT_TRUE(file.ok());

  constexpr size_t kSpans = 16;
  constexpr size_t kSpanBytes = 1000;
  std::vector<std::vector<uint8_t>> reference(kSpans);
  for (const IoEngineKind engine :
       {IoEngineKind::kSync, IoEngineKind::kThreadPool, ResolveIoEngine()}) {
    std::vector<std::vector<uint8_t>> bufs(kSpans,
                                           std::vector<uint8_t>(kSpanBytes));
    std::vector<ReadSpan> spans(kSpans);
    for (size_t i = 0; i < kSpans; ++i) {
      spans[i].offset = i * 3777;  // overlapping source ranges are fine.
      spans[i].data = bufs[i].data();
      spans[i].n = kSpanBytes;
    }
    (*file)->ReadBatch(spans.data(), kSpans, engine);
    for (size_t i = 0; i < kSpans; ++i) {
      ASSERT_TRUE(spans[i].status.ok()) << spans[i].status.ToString();
      if (engine == IoEngineKind::kSync) {
        reference[i] = bufs[i];
      } else {
        EXPECT_EQ(bufs[i], reference[i]) << "span " << i;
      }
    }
  }
  std::remove(path.c_str());
}

/// Runs one armed batch and returns (per-span ok, per-span buffer).
struct FaultedBatchResult {
  std::vector<bool> ok;
  std::vector<std::vector<uint8_t>> bytes;
  uint64_t reads_seen = 0;
  uint64_t faults = 0;
  uint64_t flips = 0;
};

FaultedBatchResult RunFaultedBatch(const std::string& path,
                                   const FaultInjector::ReadFaultPlan& plan,
                                   IoEngineKind engine, size_t spans_count,
                                   size_t span_bytes) {
  FaultInjector injector;
  injector.ArmReads(plan);
  auto file = File::Open(path, /*truncate=*/false, &injector);
  EXPECT_TRUE(file.ok());
  FaultedBatchResult result;
  result.bytes.assign(spans_count, std::vector<uint8_t>(span_bytes));
  std::vector<ReadSpan> spans(spans_count);
  for (size_t i = 0; i < spans_count; ++i) {
    spans[i].offset = i * span_bytes;
    spans[i].data = result.bytes[i].data();
    spans[i].n = span_bytes;
  }
  (*file)->ReadBatch(spans.data(), spans_count, engine);
  for (size_t i = 0; i < spans_count; ++i) {
    result.ok.push_back(spans[i].status.ok());
  }
  result.reads_seen = injector.reads_seen();
  result.faults = injector.transient_read_faults();
  result.flips = injector.read_flips();
  return result;
}

TEST(ReadBatchTest, OneInjectorTickPerSpanInSubmitOrder) {
  const std::string path = MakePatternFile("batch_ticks.bin", 16 * 1024);
  FaultInjector::ReadFaultPlan plan;
  plan.flip_every_n = 3;  // ticks 3, 6 of 8 => spans 2 and 5 flipped.
  constexpr size_t kSpans = 8;
  constexpr size_t kBytes = 512;
  const auto sync =
      RunFaultedBatch(path, plan, IoEngineKind::kSync, kSpans, kBytes);
  EXPECT_EQ(sync.reads_seen, kSpans);
  EXPECT_EQ(sync.flips, 2u);
  for (size_t i = 0; i < kSpans; ++i) {
    ASSERT_TRUE(sync.ok[i]);
    // Flip lands at bytes[n/2] of exactly the spans whose submit-order
    // tick matches the plan.
    const uint8_t expected = static_cast<uint8_t>(
        (((i * kBytes) + kBytes / 2) * 131) & 0xff);
    if (i == 2 || i == 5) {
      EXPECT_EQ(sync.bytes[i][kBytes / 2], expected ^ 0x10) << i;
    } else {
      EXPECT_EQ(sync.bytes[i][kBytes / 2], expected) << i;
    }
  }
  // The same schedule on every engine: identical tick count, identical
  // flipped spans, byte-identical buffers.
  for (const IoEngineKind engine :
       {IoEngineKind::kThreadPool, ResolveIoEngine()}) {
    const auto other = RunFaultedBatch(path, plan, engine, kSpans, kBytes);
    EXPECT_EQ(other.reads_seen, sync.reads_seen);
    EXPECT_EQ(other.flips, sync.flips);
    EXPECT_EQ(other.ok, sync.ok);
    EXPECT_EQ(other.bytes, sync.bytes);
  }
  std::remove(path.c_str());
}

TEST(ReadBatchTest, TransientBurstScheduleIdenticalAcrossEngines) {
  const std::string path = MakePatternFile("batch_burst.bin", 16 * 1024);
  FaultInjector::ReadFaultPlan plan;
  plan.transient_every_n = 3;
  plan.transient_burst = 2;  // ticks 3,4 then 6,7 ... fail.
  constexpr size_t kSpans = 10;
  const auto sync =
      RunFaultedBatch(path, plan, IoEngineKind::kSync, kSpans, 256);
  ASSERT_EQ(sync.ok.size(), kSpans);
  for (size_t i = 0; i < kSpans; ++i) {
    const size_t tick = i + 1;
    const bool should_fail = tick >= 3 && (tick % 3 == 0 || tick % 3 == 1);
    EXPECT_EQ(sync.ok[i], !should_fail) << "span " << i;
  }
  for (const IoEngineKind engine :
       {IoEngineKind::kThreadPool, ResolveIoEngine()}) {
    const auto other = RunFaultedBatch(path, plan, engine, kSpans, 256);
    EXPECT_EQ(other.ok, sync.ok);
    EXPECT_EQ(other.faults, sync.faults);
    EXPECT_EQ(other.bytes, sync.bytes);  // failed spans: untouched zeros?
  }
  std::remove(path.c_str());
}

TEST(ReadBatchTest, InjectedDelaysOverlapOnAsyncEngines) {
  const std::string path = MakePatternFile("batch_delay.bin", 16 * 1024);
  FaultInjector::ReadFaultPlan plan;
  plan.delay_every_n = 1;  // every span sleeps...
  plan.delay_us = 20000;   // ...20 ms.
  constexpr size_t kSpans = 8;
  const auto t0 = std::chrono::steady_clock::now();
  (void)RunFaultedBatch(path, plan, IoEngineKind::kSync, kSpans, 256);
  const auto sync_elapsed = std::chrono::steady_clock::now() - t0;
  const auto t1 = std::chrono::steady_clock::now();
  (void)RunFaultedBatch(path, plan, IoEngineKind::kThreadPool, kSpans, 256);
  const auto async_elapsed = std::chrono::steady_clock::now() - t1;
  // Sync sums the eight hangs (>= 160 ms); the pool overlaps them.
  EXPECT_GE(sync_elapsed, std::chrono::milliseconds(160));
  EXPECT_LT(async_elapsed, sync_elapsed);
  std::remove(path.c_str());
}

// --- DiskPageFile batched Open / Scrub ---------------------------------

storage::ReadRetryPolicy FastRetry() {
  storage::ReadRetryPolicy policy;
  policy.backoff_us = 1;
  policy.max_backoff_us = 10;
  return policy;
}

void WriteThreePageBase(const std::string& path) {
  auto disk = DiskPageFile::Create(path, 1024);
  ASSERT_TRUE(disk.ok());
  for (int i = 0; i < 3; ++i) {
    const auto id = (*disk)->Allocate();
    auto page = (*disk)->Write(id);
    ASSERT_TRUE(page.ok());
    const std::string record = "page-" + std::to_string(i);
    ASSERT_TRUE((*page)->Insert(record.data(), record.size()).ok());
  }
  ASSERT_TRUE((*disk)->FlushPagesAndSync({0, 1, 2}).ok());
  ASSERT_TRUE((*disk)->CommitHeader(/*checkpoint_lsn=*/0).ok());
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

/// Frame bytes for page `id` in a 1024-byte-page base file start here.
long FrameOffsetOf(uint32_t id) { return 128 + id * (1024 + 32); }

TEST(DiskPageFileBatchTest, OpenEquivalentAcrossEngines) {
  const std::string path = TempPath("batch_open.bwpf");
  WriteThreePageBase(path);
  FlipByteAt(path, FrameOffsetOf(1) + 5);  // rot page 1's frame.

  FaultInjector::ReadFaultPlan plan;
  plan.transient_every_n = 3;  // bursts of two transient faults,
  plan.transient_burst = 2;    // absorbed by per-frame retries.

  uint64_t sync_retries = 0;
  for (const IoEngineChoice choice :
       {IoEngineChoice::kSync, IoEngineChoice::kThreadPool,
        IoEngineChoice::kAuto}) {
    FaultInjector injector;
    injector.ArmReads(plan);
    storage::DiskPageFileOptions options;
    options.injector = &injector;
    options.read_retry = FastRetry();
    options.engine = choice;
    auto disk = DiskPageFile::Open(path, options);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    // The rotted frame (and only it) is suspect + quarantined, on every
    // engine; intact pages decoded identically.
    EXPECT_EQ((*disk)->suspect_pages(), std::vector<pages::PageId>{1});
    EXPECT_EQ((*disk)->health().quarantined_count(), 1u);
    EXPECT_EQ((*disk)->PeekNoIo(0)->slot_count(), 1u);
    EXPECT_EQ((*disk)->PeekNoIo(2)->slot_count(), 1u);
    EXPECT_GT((*disk)->read_retries(), 0u);
    EXPECT_GT(injector.transient_read_faults(), 0u);
    // Fault accounting is a function of the batch alone: every engine
    // absorbs the exact same retry schedule.
    if (choice == IoEngineChoice::kSync) {
      sync_retries = (*disk)->read_retries();
    } else {
      EXPECT_EQ((*disk)->read_retries(), sync_retries);
    }
  }
  std::remove(path.c_str());
}

TEST(DiskPageFileBatchTest, ScrubQuarantinesRotAndCountsUnreadable) {
  const std::string path = TempPath("batch_scrub.bwpf");
  WriteThreePageBase(path);

  FaultInjector injector;
  storage::DiskPageFileOptions options;
  options.injector = &injector;
  options.read_retry = FastRetry();
  options.engine = IoEngineChoice::kThreadPool;
  auto disk = DiskPageFile::Open(path, options);
  ASSERT_TRUE(disk.ok());

  // Rot page 2 on disk under a valid memory copy: the batched scrub
  // must quarantine exactly that frame.
  FlipByteAt(path, FrameOffsetOf(2) + 5);
  storage::ScrubReport report;
  ASSERT_TRUE((*disk)->Scrub(&report).ok());
  EXPECT_EQ(report.frames_checked, 3u);
  EXPECT_EQ(report.frames_quarantined, 1u);
  EXPECT_EQ(report.frames_unreadable, 0u);
  EXPECT_TRUE((*disk)->health().IsQuarantined(2));

  // Now make every read fail transiently: the two healthy frames
  // exhaust their retry budget and count as unreadable (quarantined
  // page 2 is skipped entirely), and nothing is newly quarantined.
  FaultInjector::ReadFaultPlan plan;
  plan.transient_every_n = 1;
  injector.ArmReads(plan);
  ASSERT_TRUE((*disk)->Scrub(&report).ok());
  EXPECT_EQ(report.frames_checked, 3u);
  EXPECT_EQ(report.frames_quarantined, 0u);
  EXPECT_EQ(report.frames_unreadable, 2u);
  injector.DisarmReads();

  // Repair from memory and re-scrub clean.
  ASSERT_TRUE((*disk)->RepairFromMemory(2).ok());
  ASSERT_TRUE((*disk)->Scrub(&report).ok());
  EXPECT_EQ(report.frames_quarantined, 0u);
  EXPECT_EQ(report.frames_unreadable, 0u);
  EXPECT_EQ((*disk)->health().quarantined_count(), 0u);
  std::remove(path.c_str());
}

// --- Pool prefetch ------------------------------------------------------

TEST(PrefetchTest, BufferPoolPrefetchTurnsColdFetchesIntoHits) {
  pages::PageFile file(1024);
  for (int i = 0; i < 10; ++i) file.Allocate();

  pages::BufferPoolOptions options;
  options.charge_file_io = false;
  options.prefetch = true;
  pages::BufferPool pool(&file, /*capacity=*/8, options);
  EXPECT_TRUE(pool.wants_prefetch());

  const pages::PageId batch[] = {1, 3, 5};
  pool.PrefetchBatch(batch, 3);
  // Each cold page was charged as a miss by the prefetch itself...
  EXPECT_EQ(pool.stats().misses, 3u);
  EXPECT_EQ(pool.stats().hits, 0u);
  // ...so its later Fetch is a hit.
  for (const pages::PageId id : batch) {
    ASSERT_TRUE(pool.Fetch(id).ok());
  }
  EXPECT_EQ(pool.stats().hits, 3u);
  EXPECT_EQ(pool.stats().misses, 3u);
  // Re-prefetching resident pages charges nothing.
  pool.PrefetchBatch(batch, 3);
  EXPECT_EQ(pool.stats().misses, 3u);

  // Out-of-range ids are skipped, not errors.
  const pages::PageId bogus[] = {1000};
  pool.PrefetchBatch(bogus, 1);
  EXPECT_EQ(pool.stats().misses, 3u);
}

TEST(PrefetchTest, DisabledOrZeroCapacityPoolIgnoresPrefetch) {
  pages::PageFile file(1024);
  for (int i = 0; i < 4; ++i) file.Allocate();

  pages::BufferPool plain(&file, 8);  // prefetch not requested.
  EXPECT_FALSE(plain.wants_prefetch());
  const pages::PageId batch[] = {0, 1};
  plain.PrefetchBatch(batch, 2);
  EXPECT_EQ(plain.stats().misses, 0u);

  pages::BufferPoolOptions options;
  options.prefetch = true;
  pages::BufferPool uncached(&file, 0, options);  // caches nothing.
  EXPECT_FALSE(uncached.wants_prefetch());
  uncached.PrefetchBatch(batch, 2);
  EXPECT_EQ(uncached.stats().misses, 0u);
}

TEST(PrefetchTest, ShardedSessionPrefetchTurnsColdFetchesIntoHits) {
  pages::PageFile file(1024);
  for (int i = 0; i < 32; ++i) file.Allocate();

  pages::ShardedPoolOptions options;
  options.shards = 4;
  options.prefetch = true;
  pages::ShardedBufferPool pool(&file, /*capacity=*/16, options);
  auto session = pool.MakeSession();
  EXPECT_TRUE(session->wants_prefetch());

  const pages::PageId batch[] = {2, 7, 11, 30};
  session->PrefetchBatch(batch, 4);
  EXPECT_EQ(session->stats().misses, 4u);
  for (const pages::PageId id : batch) {
    ASSERT_TRUE(session->Fetch(id).ok());
  }
  EXPECT_EQ(session->stats().hits, 4u);
  EXPECT_EQ(session->stats().misses, 4u);
  const auto totals = pool.TotalStats();
  EXPECT_EQ(totals.hits, 4u);
  EXPECT_EQ(totals.misses, 4u);
}

TEST(PrefetchTest, TraversalResultsIdenticalWithPrefetchOnAndOff) {
  pages::PageFile file(2048);
  gist::Tree tree(&file, std::make_unique<am::RtreeExtension>(4));
  const auto points = testing::MakeClusteredPoints(3000, 4, 10, 17);
  std::vector<gist::Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);
  ASSERT_TRUE(am::StrBulkLoad(&tree, points, rids).ok());

  pages::BufferPoolOptions off_options;
  off_options.charge_file_io = false;
  pages::BufferPool off_pool(&file, 64, off_options);
  pages::BufferPoolOptions on_options;
  on_options.charge_file_io = false;
  on_options.prefetch = true;
  pages::BufferPool on_pool(&file, 64, on_options);

  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Vec& q = points[rng.NextBelow(points.size())];
    const size_t k = 1 + rng.NextBelow(30);
    auto off = tree.KnnSearch(q, k, nullptr, &off_pool);
    auto on = tree.KnnSearch(q, k, nullptr, &on_pool);
    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    ASSERT_EQ(off->size(), on->size());
    for (size_t i = 0; i < off->size(); ++i) {
      EXPECT_EQ((*off)[i].rid, (*on)[i].rid);
      EXPECT_EQ((*off)[i].distance, (*on)[i].distance);
    }
  }
  // Prefetching populated the cache ahead of the fetches: some fetches
  // that were misses without prefetch became hits.
  EXPECT_GT(on_pool.stats().hits, 0u);

  // The streaming cursor takes the same prefetch path.
  const geom::Vec& q = points[7];
  gist::NnCursor off_cursor(tree, q, nullptr, &off_pool);
  gist::NnCursor on_cursor(tree, q, nullptr, &on_pool);
  for (int i = 0; i < 25; ++i) {
    auto a = off_cursor.Next();
    auto b = on_cursor.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->has_value(), b->has_value());
    if (!a->has_value()) break;
    EXPECT_EQ((*a)->rid, (*b)->rid);
    EXPECT_EQ((*a)->distance, (*b)->distance);
  }
}

}  // namespace
}  // namespace bw
