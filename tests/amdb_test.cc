// Tests for the amdb analysis framework: hypergraph partitioning and the
// loss decomposition (whose additive identity is the load-bearing
// invariant of every reproduction bench).

#include <gtest/gtest.h>

#include <numeric>

#include "pages/page_file.h"
#include "am/bulk_load.h"
#include "am/rtree.h"
#include "amdb/analysis.h"
#include "amdb/partitioning.h"
#include "amdb/workload.h"
#include "tests/test_helpers.h"

namespace bw::amdb {
namespace {

// ---------------------------------------------------------------------------
// Hypergraph partitioning
// ---------------------------------------------------------------------------

TEST(PartitionTest, RespectsCapacity) {
  std::vector<std::vector<uint64_t>> edges;
  Rng rng(1);
  for (int e = 0; e < 40; ++e) {
    std::vector<uint64_t> edge;
    for (int i = 0; i < 20; ++i) edge.push_back(rng.NextBelow(500));
    edges.push_back(std::move(edge));
  }
  PartitionOptions options;
  options.part_capacity = 25;
  auto partition = PartitionHypergraph(500, edges, options);
  ASSERT_TRUE(partition.ok());

  std::vector<size_t> sizes(partition->num_parts, 0);
  for (uint32_t part : partition->part_of_item) {
    ASSERT_LT(part, partition->num_parts);
    ++sizes[part];
  }
  for (size_t s : sizes) EXPECT_LE(s, 25u);
  // Everything assigned.
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, 500u);
}

TEST(PartitionTest, PerfectlySeparableWorkload) {
  // 10 disjoint queries of 10 items each, capacity 10: each query's
  // items must land in exactly one part.
  std::vector<std::vector<uint64_t>> edges;
  for (uint64_t q = 0; q < 10; ++q) {
    std::vector<uint64_t> edge;
    for (uint64_t i = 0; i < 10; ++i) edge.push_back(q * 10 + i);
    edges.push_back(std::move(edge));
  }
  PartitionOptions options;
  options.part_capacity = 10;
  auto partition = PartitionHypergraph(100, edges, options);
  ASSERT_TRUE(partition.ok());
  for (const auto& edge : edges) {
    EXPECT_EQ(partition->PartsSpanned(edge), 1u);
  }
  EXPECT_EQ(TotalConnectivity(*partition, edges), 10u);
}

TEST(PartitionTest, RefinementImprovesOrMatchesSeed) {
  // Overlapping random workload: refined connectivity must not exceed
  // the unrefined greedy seed's.
  Rng rng(7);
  std::vector<std::vector<uint64_t>> edges;
  for (int e = 0; e < 60; ++e) {
    std::vector<uint64_t> edge;
    uint64_t base = rng.NextBelow(900);
    for (int i = 0; i < 30; ++i) edge.push_back((base + i * 3) % 1000);
    edges.push_back(std::move(edge));
  }
  PartitionOptions seed_only;
  seed_only.part_capacity = 40;
  seed_only.refinement_passes = 0;
  PartitionOptions refined = seed_only;
  refined.refinement_passes = 6;
  auto a = PartitionHypergraph(1000, edges, seed_only);
  auto b = PartitionHypergraph(1000, edges, refined);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(TotalConnectivity(*b, edges), TotalConnectivity(*a, edges));
}

TEST(PartitionTest, LowerBoundHolds) {
  // Any edge of size s needs at least ceil(s / capacity) parts.
  Rng rng(9);
  std::vector<std::vector<uint64_t>> edges;
  for (int e = 0; e < 20; ++e) {
    std::vector<uint64_t> edge;
    for (int i = 0; i < 50; ++i) edge.push_back(rng.NextBelow(300));
    edges.push_back(std::move(edge));
  }
  PartitionOptions options;
  options.part_capacity = 15;
  auto partition = PartitionHypergraph(300, edges, options);
  ASSERT_TRUE(partition.ok());
  for (const auto& edge : edges) {
    std::set<uint64_t> distinct(edge.begin(), edge.end());
    const size_t min_parts = (distinct.size() + 14) / 15;
    EXPECT_GE(partition->PartsSpanned(edge), min_parts);
  }
}

TEST(PartitionTest, RejectsBadInput) {
  PartitionOptions zero;
  zero.part_capacity = 0;
  EXPECT_FALSE(PartitionHypergraph(10, {}, zero).ok());
  PartitionOptions ok;
  ok.part_capacity = 5;
  EXPECT_FALSE(PartitionHypergraph(10, {{99}}, ok).ok());  // item o.o.r.
}

// ---------------------------------------------------------------------------
// Loss decomposition
// ---------------------------------------------------------------------------

struct AnalysisFixture {
  pages::PageFile file{4096};
  std::unique_ptr<gist::Tree> tree;
  std::vector<geom::Vec> points;

  explicit AnalysisFixture(size_t n = 5000, uint64_t seed = 3) {
    points = testing::MakeClusteredPoints(n, 5, 12, seed);
    tree = std::make_unique<gist::Tree>(
        &file, std::make_unique<am::RtreeExtension>(5));
    std::vector<gist::Rid> rids(points.size());
    std::iota(rids.begin(), rids.end(), 0);
    BW_CHECK_OK(am::StrBulkLoad(tree.get(), points, rids));
  }
};

TEST(AnalysisTest, AdditiveIdentityPerWorkload) {
  AnalysisFixture fx;
  const auto foci = Rng(5).SampleWithoutReplacement(fx.points.size(), 50);
  std::vector<uint32_t> foci32(foci.begin(), foci.end());
  const Workload workload = Workload::NnOverFoci(fx.points, foci32, 100);

  auto report = AnalyzeWorkload(*fx.tree, workload);
  ASSERT_TRUE(report.ok());
  // accessed = optimal + clustering + utilization + excess (+gain slack).
  EXPECT_EQ(report->leaf_accesses + report->leaf_clustering_gain,
            report->leaf_optimal_accesses + report->leaf_clustering_loss +
                report->leaf_utilization_loss +
                report->leaf_excess_coverage_loss);
  EXPECT_EQ(report->num_queries, 50u);
  EXPECT_GT(report->leaf_accesses, 0u);
  EXPECT_GT(report->internal_accesses, 0u);
}

TEST(AnalysisTest, BulkLoadedTreeHasNoUtilizationLoss) {
  AnalysisFixture fx;
  const auto foci = Rng(7).SampleWithoutReplacement(fx.points.size(), 30);
  std::vector<uint32_t> foci32(foci.begin(), foci.end());
  const Workload workload = Workload::NnOverFoci(fx.points, foci32, 100);
  AnalysisOptions options;
  options.target_utilization = 0.85;  // the bulk-load fill.
  auto report = AnalyzeWorkload(*fx.tree, workload, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->leaf_utilization_loss, 0u);
}

TEST(AnalysisTest, ExcessIsZeroWhenEveryAccessedLeafContributes) {
  // k = 1: the single nearest neighbor lives in some leaf; any other
  // accessed leaf is excess. With k = entire leaf the excess vanishes
  // for the query's own leaf. Use a point query returning many results.
  AnalysisFixture fx(2000, 11);
  std::vector<uint32_t> foci = {0};
  const Workload workload = Workload::NnOverFoci(fx.points, foci, 500);
  auto report = AnalyzeWorkload(*fx.tree, workload);
  ASSERT_TRUE(report.ok());
  // 500 results over ~96-entry leaves: at least 6 leaves are useful.
  EXPECT_GE(report->leaf_accesses - report->leaf_excess_coverage_loss, 6u);
}

TEST(AnalysisTest, InsertionLoadedLosesMoreThanBulk) {
  // Uniform data: STR tiling is near-ideal there, so the Table-2 gap is
  // robust. (On strongly clustered data a penalty-descent insert with
  // exact BP maintenance can rival STR at small scale.)
  const auto points = testing::MakeUniformPoints(4000, 5, 13);
  std::vector<gist::Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);

  pages::PageFile f1(4096), f2(4096);
  gist::Tree bulk(&f1, std::make_unique<am::RtreeExtension>(5));
  gist::Tree inserted(&f2, std::make_unique<am::RtreeExtension>(5));
  BW_CHECK_OK(am::StrBulkLoad(&bulk, points, rids));
  BW_CHECK_OK(am::InsertionLoad(&inserted, points, rids));

  const auto foci = Rng(17).SampleWithoutReplacement(points.size(), 40);
  std::vector<uint32_t> foci32(foci.begin(), foci.end());
  const Workload workload = Workload::NnOverFoci(points, foci32, 100);

  auto a = AnalyzeWorkload(bulk, workload);
  auto b = AnalyzeWorkload(inserted, workload);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The robust core of the Table-2 phenomenon at unit-test scale: the
  // insertion-loaded tree is under-packed (strict utilization loss and
  // more leaves for the same data). The full excess-coverage gap is
  // scale- and data-dependent and is exercised by bench/table2_loading.
  EXPECT_GT(b->leaf_utilization_loss, a->leaf_utilization_loss);
  EXPECT_GT(b->shape.LeafNodes(), a->shape.LeafNodes());
  EXPECT_EQ(b->shape.LeafEntries(), a->shape.LeafEntries());
}

TEST(AnalysisTest, ReportRendersAllFields) {
  AnalysisFixture fx(1000, 19);
  std::vector<uint32_t> foci = {1, 2, 3};
  const Workload workload = Workload::NnOverFoci(fx.points, foci, 50);
  auto report = AnalyzeWorkload(*fx.tree, workload);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  for (const char* needle :
       {"queries: 3", "excess coverage", "utilization loss",
        "clustering loss", "internal accesses", "total accesses"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(WorkloadTest, TracesMatchDirectSearch) {
  AnalysisFixture fx(1500, 23);
  std::vector<uint32_t> foci = {5, 10};
  const Workload workload = Workload::NnOverFoci(fx.points, foci, 20);
  auto traces = ExecuteWorkload(*fx.tree, workload);
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->size(), 2u);
  for (size_t q = 0; q < 2; ++q) {
    gist::TraversalStats stats;
    auto direct = fx.tree->KnnSearch(fx.points[foci[q]], 20, &stats);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ((*traces)[q].results.size(), 20u);
    EXPECT_EQ((*traces)[q].accessed_leaves.size(),
              stats.accessed_leaves.size());
  }
}

}  // namespace
}  // namespace bw::amdb
