// Property tests for the batched node-scan API: for every access
// method, BpMinDistanceBatch / BpConsistentRangeBatch /
// PointDistanceBatch over random nodes must be bit-identical (exact
// double equality, not approximate) to the per-entry scalar methods
// they replace — that is the contract that lets the traversal layer
// batch unconditionally (gist/extension.h). The node-scan suites pin
// kernel dispatch to scalar (util::ScopedKernelIsa): exact equality is
// the SCALAR dispatch contract; the AVX2/FMA variants carry a
// ULP-bounded contract enforced by tests/kernel_dispatch_test.cc. A
// traversal-level test additionally checks that batched degraded-mode
// search (skips under a fault budget) returns exactly the brute-force
// answer over the surviving points, with exact distances — that one
// runs under the build's default dispatch on purpose, since leaf/data
// distances never flow through the dispatched kernels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "gist/extension.h"
#include "gist/tree.h"
#include "pages/sharded_buffer_pool.h"
#include "tests/test_helpers.h"
#include "util/cpu.h"
#include "util/random.h"

namespace bw {
namespace {

constexpr size_t kDim = 5;

const char* const kAms[] = {"rtree", "rstar", "sstree", "srtree",
                            "amap",  "jb",    "xjb"};

std::unique_ptr<gist::Extension> MakeExt(const std::string& am) {
  core::IndexBuildOptions options;
  options.am = am;
  options.amap_samples = 512;
  options.xjb_x = 6;
  auto ext = core::MakeExtension(kDim, options, 5000);
  EXPECT_TRUE(ext.ok()) << ext.status().ToString();
  return std::move(ext).value();
}

/// A random "node": `n` BPs, each built from its own point cluster.
struct RandomNode {
  std::vector<gist::Bytes> bps;
  gist::BatchScratch scratch;

  RandomNode(gist::Extension& ext, size_t n, uint64_t seed) {
    bps.reserve(n);
    scratch.preds.reserve(n);
    for (size_t e = 0; e < n; ++e) {
      const size_t leaf_points = 2 + (seed + e) % 40;
      bps.push_back(ext.BpFromPoints(testing::MakeClusteredPoints(
          leaf_points, kDim, 2, seed * 131 + e)));
    }
    for (const gist::Bytes& bp : bps) {
      scratch.preds.push_back(gist::ByteSpan(bp.data(), bp.size()));
    }
  }
};

class BatchKernelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchKernelTest, MinDistanceBatchBitIdentical) {
  util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
  auto ext = MakeExt(GetParam());
  const auto queries = testing::MakeUniformPoints(16, kDim, 977);
  for (const size_t n : {size_t{1}, size_t{3}, size_t{17}, size_t{64},
                         size_t{96}}) {
    RandomNode node(*ext, n, 5000 + n);
    for (const geom::Vec& q : queries) {
      ext->BpMinDistanceBatch(node.scratch, q);
      ASSERT_EQ(node.scratch.distances.size(), n);
      for (size_t e = 0; e < n; ++e) {
        // Exact equality: the batch kernels promise the same doubles,
        // not merely close ones.
        EXPECT_EQ(node.scratch.distances[e],
                  ext->BpMinDistance(node.scratch.preds[e], q))
            << GetParam() << " entry " << e << " of " << n;
      }
    }
  }
}

TEST_P(BatchKernelTest, ConsistentRangeBatchBitIdentical) {
  util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
  auto ext = MakeExt(GetParam());
  const auto queries = testing::MakeUniformPoints(8, kDim, 991);
  RandomNode node(*ext, 48, 77);
  for (const geom::Vec& q : queries) {
    // Radii that stress the <= boundary: 0, an exact per-entry scalar
    // distance (a forced tie), and a radius covering everything.
    ext->BpMinDistanceBatch(node.scratch, q);
    const std::vector<double> radii = {0.0, node.scratch.distances[7],
                                       node.scratch.distances[31], 1e6};
    for (const double radius : radii) {
      ext->BpConsistentRangeBatch(node.scratch, q, radius);
      ASSERT_EQ(node.scratch.consistent.size(), 48u);
      for (size_t e = 0; e < 48; ++e) {
        EXPECT_EQ(node.scratch.consistent[e] != 0,
                  ext->BpConsistentRange(node.scratch.preds[e], q, radius))
            << GetParam() << " entry " << e << " radius " << radius;
      }
    }
  }
}

TEST_P(BatchKernelTest, PointDistanceBatchBitIdentical) {
  auto ext = MakeExt(GetParam());
  const auto points = testing::MakeClusteredPoints(80, kDim, 4, 1234);
  const auto queries = testing::MakeUniformPoints(16, kDim, 555);
  std::vector<gist::Bytes> keys;
  keys.reserve(points.size());
  gist::BatchScratch scratch;
  for (const geom::Vec& p : points) {
    keys.push_back(ext->EncodePoint(p));
    scratch.preds.push_back(gist::ByteSpan(keys.back().data(),
                                           keys.back().size()));
  }
  for (const geom::Vec& q : queries) {
    ext->PointDistanceBatch(scratch, q);
    for (size_t e = 0; e < points.size(); ++e) {
      const double scalar = q.DistanceTo(ext->DecodePoint(scratch.preds[e]));
      EXPECT_EQ(scratch.distances[e], scalar) << "entry " << e;
      EXPECT_EQ(scratch.distances[e],
                ext->PointDistance(scratch.preds[e], q));
    }
  }
}

/// All RIDs stored under `page` (healthy tree walk).
void GatherRids(const gist::Tree& tree, pages::PageId page,
                std::set<gist::Rid>* out) {
  auto fetched = tree.FetchNode(page);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  const gist::NodeView node(*fetched);
  if (node.IsLeaf()) {
    for (gist::Rid rid : tree.LeafRids(page)) out->insert(rid);
    return;
  }
  for (size_t i = 0; i < node.entry_count(); ++i) {
    GatherRids(tree, node.entry(i).ChildPage(), out);
  }
}

TEST_P(BatchKernelTest, DegradedBatchedSearchMatchesBruteForce) {
  const std::string am = GetParam();
  const auto points = testing::MakeClusteredPoints(1200, kDim, 8, 17);
  core::IndexBuildOptions build;
  build.am = am;
  build.xjb_x = 6;
  build.amap_samples = 512;
  const std::string base = ::testing::TempDir() + "/bk_" + am + ".bwpf";
  const std::string wal = ::testing::TempDir() + "/bk_" + am + ".bwwal";
  std::remove(base.c_str());
  std::remove(wal.c_str());
  auto built = core::BuildDurableIndex(points, build, base, wal);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  core::DurableIndex& index = **built;
  const gist::Tree& tree = index.tree();

  // Read through a sharded-pool session, the serving read path.
  auto* store = const_cast<pages::PageStore*>(tree.file());
  pages::ShardedBufferPool pool(store, 64, {});
  auto session = pool.MakeSession();

  const geom::Vec query = testing::MakeUniformPoints(1, kDim, 3)[0];
  constexpr size_t kK = 25;
  gist::TraversalStats stats;
  auto baseline = tree.KnnSearch(query, kK, &stats, session.get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Victims: one visited leaf plus one visited non-root internal (when
  // the tree is deep enough), so the degraded traversal must skip at
  // both levels.
  ASSERT_FALSE(stats.accessed_leaves.empty());
  std::vector<pages::PageId> victims = {stats.accessed_leaves.front()};
  for (pages::PageId id : stats.accessed_internals) {
    if (id != tree.root()) {
      victims.push_back(id);
      break;
    }
  }
  std::set<gist::Rid> lost;
  for (pages::PageId id : victims) GatherRids(tree, id, &lost);
  ASSERT_FALSE(lost.empty());

  for (pages::PageId id : victims) {
    index.store().disk()->health().Quarantine(id);
  }
  gist::DegradedRead degraded;
  degraded.budget = 16;
  auto result = tree.KnnSearch(query, kK, nullptr, session.get(), &degraded);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(degraded.degraded());

  // Exact expectation: brute-force k-NN over the surviving points, with
  // distances recomputed through the scalar geometry path.
  std::vector<std::pair<double, gist::Rid>> expected;
  for (size_t i = 0; i < points.size(); ++i) {
    if (lost.count(static_cast<gist::Rid>(i)) > 0) continue;
    expected.emplace_back(query.DistanceTo(points[i]),
                          static_cast<gist::Rid>(i));
  }
  std::sort(expected.begin(), expected.end());
  expected.resize(std::min(expected.size(), kK));

  ASSERT_EQ(result->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*result)[i].distance, expected[i].first) << "rank " << i;
    EXPECT_EQ((*result)[i].rid, expected[i].second) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAms, BatchKernelTest, ::testing::ValuesIn(kAms),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace bw
