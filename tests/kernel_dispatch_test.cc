// Dispatch parity suite for the runtime-ISA kernels (util/cpu.h).
//
// Contract under test (am/bp_kernels.h): the scalar dispatch is the
// bit-identity reference; the AVX2/FMA variants may differ only by a
// small ULP band in the FMA-fused double accumulations, and must be
// bit-identical for all compare/select-only work — the float clamp
// (modulo the sign of zero, which float equality already ignores) and
// the jagged covering scan (where the staged stack search must also be
// bit-identical to the recursive scalar reference).
//
// On builds without the AVX2 variants (BW_ENABLE_AVX2=OFF) or hosts
// without AVX2+FMA, forcing kAvx2 resolves to scalar, so every
// assertion here degenerates to exact self-comparison and the suite
// stays green — both CI fallback legs run it.
//
// Inputs are NaN-free by construction (the kernel precondition) and
// include the degraded shapes the read path produces: degenerate
// boxes (lo == hi), queries inside boxes (zero gaps), and coordinates
// spanning many orders of magnitude.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "am/bp_kernels.h"
#include "core/bites.h"
#include "geom/rect.h"
#include "geom/vec.h"
#include "tests/test_helpers.h"
#include "util/cpu.h"

namespace bw {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

// |a - b| within `ulps` units of the larger magnitude (plus an absolute
// floor `abs_scale * ulps * eps` for results near cancellation).
::testing::AssertionResult WithinUlps(double a, double b, size_t ulps,
                                      double abs_scale = 0.0) {
  if (a == b) return ::testing::AssertionSuccess();
  const double diff = std::abs(a - b);
  const double tol =
      static_cast<double>(ulps) * kEps *
      std::max(std::max(std::abs(a), std::abs(b)), abs_scale);
  if (diff <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << diff << " > tol " << tol;
}

struct RandomPlanes {
  size_t dim;
  size_t count;
  std::vector<float> lo;
  std::vector<float> hi;
  geom::Vec query;

  RandomPlanes(size_t d, size_t n, uint64_t seed, bool degenerate_some)
      : dim(d), count(n), lo(d * n), hi(d * n), query(d) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> coord(-100.0f, 100.0f);
    std::uniform_real_distribution<float> extent(0.0f, 50.0f);
    for (size_t dd = 0; dd < d; ++dd) {
      for (size_t e = 0; e < n; ++e) {
        const float a = coord(rng);
        // Every 7th box degenerate in this dimension (a leaf point), and
        // every 11th spanning several magnitudes.
        float ext = extent(rng);
        if (degenerate_some && e % 7 == 0) ext = 0.0f;
        if (degenerate_some && e % 11 == 0) ext *= 1e-6f;
        lo[dd * n + e] = a;
        hi[dd * n + e] = a + ext;
      }
      query[dd] = coord(rng) * 1.5;
    }
  }
};

class KernelDispatchTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(KernelDispatchTest, RectMinDistUlpBounded) {
  const auto [dim, count] = GetParam();
  RandomPlanes p(dim, count, 42 * dim + count, /*degenerate_some=*/true);
  std::vector<double> out_scalar(count), out_simd(count);
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
    am::RectMinDistSquared(dim, count, p.lo.data(), p.hi.data(), p.query,
                           out_scalar.data());
  }
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kAvx2);
    am::RectMinDistSquared(dim, count, p.lo.data(), p.hi.data(), p.query,
                           out_simd.data());
  }
  for (size_t e = 0; e < count; ++e) {
    EXPECT_TRUE(WithinUlps(out_scalar[e], out_simd[e], 4 * dim))
        << "entry " << e;
    // Zero is exact on both paths: FMA of zero gaps rounds nothing.
    if (out_scalar[e] == 0.0) EXPECT_EQ(out_simd[e], 0.0);
  }
}

TEST_P(KernelDispatchTest, RectMaxDistUlpBounded) {
  const auto [dim, count] = GetParam();
  RandomPlanes p(dim, count, 43 * dim + count, /*degenerate_some=*/true);
  std::vector<double> out_scalar(count), out_simd(count);
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
    am::RectMaxDistSquared(dim, count, p.lo.data(), p.hi.data(), p.query,
                           out_scalar.data());
  }
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kAvx2);
    am::RectMaxDistSquared(dim, count, p.lo.data(), p.hi.data(), p.query,
                           out_simd.data());
  }
  for (size_t e = 0; e < count; ++e) {
    EXPECT_TRUE(WithinUlps(out_scalar[e], out_simd[e], 4 * dim))
        << "entry " << e;
  }
}

TEST_P(KernelDispatchTest, RectClampMinDistClampBitIdenticalSumUlpBounded) {
  const auto [dim, count] = GetParam();
  RandomPlanes p(dim, count, 44 * dim + count, /*degenerate_some=*/true);
  std::vector<double> out_scalar(count), out_simd(count);
  std::vector<float> clamp_scalar(dim * count), clamp_simd(dim * count);
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
    am::RectClampMinDistSquared(dim, count, p.lo.data(), p.hi.data(), p.query,
                                clamp_scalar.data(), out_scalar.data());
  }
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kAvx2);
    am::RectClampMinDistSquared(dim, count, p.lo.data(), p.hi.data(), p.query,
                                clamp_simd.data(), out_simd.data());
  }
  for (size_t i = 0; i < dim * count; ++i) {
    // The clamp is compare/select only: identical on both paths. (Float
    // == treats -0.0 and +0.0 as equal, the one permitted divergence.)
    EXPECT_EQ(clamp_scalar[i], clamp_simd[i]) << "clamp coord " << i;
  }
  for (size_t e = 0; e < count; ++e) {
    EXPECT_TRUE(WithinUlps(out_scalar[e], out_simd[e], 4 * dim))
        << "entry " << e;
    if (out_scalar[e] == 0.0) EXPECT_EQ(out_simd[e], 0.0);
  }
}

TEST_P(KernelDispatchTest, SphereMinDistUlpBounded) {
  const auto [dim, count] = GetParam();
  std::mt19937_64 rng(45 * dim + count);
  std::uniform_real_distribution<float> coord(-100.0f, 100.0f);
  std::uniform_real_distribution<double> rad(0.0, 40.0);
  std::vector<float> center(dim * count);
  std::vector<double> radius(count);
  geom::Vec query(dim);
  for (size_t i = 0; i < dim * count; ++i) center[i] = coord(rng);
  for (size_t e = 0; e < count; ++e) radius[e] = rad(rng);
  for (size_t d = 0; d < dim; ++d) query[d] = coord(rng) * 1.5;

  std::vector<double> out_scalar(count), out_simd(count);
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
    am::SphereMinDist(dim, count, center.data(), radius.data(), query,
                      out_scalar.data());
  }
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kAvx2);
    am::SphereMinDist(dim, count, center.data(), radius.data(), query,
                      out_simd.data());
  }
  for (size_t e = 0; e < count; ++e) {
    // sqrt(sum) - radius cancels near the ball surface, so anchor the
    // tolerance at the pre-subtraction magnitude.
    const double scale = out_scalar[e] + radius[e] + 1.0;
    EXPECT_TRUE(WithinUlps(out_scalar[e], out_simd[e], 4 * dim, scale))
        << "entry " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsCounts, KernelDispatchTest,
    ::testing::Values(std::pair<size_t, size_t>{2, 1},
                      std::pair<size_t, size_t>{3, 7},
                      std::pair<size_t, size_t>{5, 64},
                      std::pair<size_t, size_t>{5, 97},
                      std::pair<size_t, size_t>{8, 96}),
    [](const auto& info) {
      return "D" + std::to_string(info.param.first) + "N" +
             std::to_string(info.param.second);
    });

// The jagged region search: the staged stack search (with its SIMD
// covering scan under kAvx2) must be bit-identical — not merely
// ULP-close — to the recursive scalar reference, because the covering
// scan and the stack flattening round nothing. This stages the search
// inputs by hand, exactly as core/jagged.cc's batch scan does.
TEST(JaggedStackDispatchTest, StagedSearchBitIdenticalAcrossIsas) {
  constexpr size_t kDim = 5;
  std::mt19937_64 rng(99);
  size_t covered_queries = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto points =
        testing::MakeClusteredPoints(2 + trial % 37, kDim, 2, 1000 + trial);
    std::vector<geom::Rect> contents;
    contents.reserve(points.size());
    for (const auto& pt : points) contents.emplace_back(pt);
    const geom::Rect mbr = geom::Rect::BoundingBoxOfRects(contents);
    const std::vector<core::Bite> bites =
        core::MaxVolumeCorners(mbr, contents);

    float lo[kDim], hi[kDim];
    for (size_t d = 0; d < kDim; ++d) {
      lo[d] = mbr.lo()[d];
      hi[d] = mbr.hi()[d];
    }
    std::vector<uint32_t> corners;
    std::vector<float> inners;
    for (const core::Bite& b : bites) {
      corners.push_back(b.corner);
      for (size_t d = 0; d < kDim; ++d) inners.push_back(b.inner[d]);
    }
    const size_t bite_count = corners.size();
    // StageAll's SIMD kernel reads whole 8-bite blocks: pad the
    // exact-size staging allocations per its documented contract.
    corners.resize((bite_count + 7) & ~size_t{7}, 0);
    inners.resize(corners.size() * kDim + 8, 0.0f);

    const auto queries = testing::MakeUniformPoints(32, kDim, 7 * trial + 1);
    for (const geom::Vec& q : queries) {
      // Stage exactly as the batch scan: float clamp, ascending-dim
      // squared-gap accumulation, bulk bite staging (no empty-bite
      // compaction — the batch contract), first covering staged bite.
      core::JaggedLiveBites live;
      live.StageAll(kDim, corners.data(), inners.data(), bite_count);
      float clamped[kDim];
      double box_dist_sq = 0.0;
      for (size_t d = 0; d < kDim; ++d) {
        const float v = q[d];
        const float c = v < lo[d] ? lo[d] : (v > hi[d] ? hi[d] : v);
        clamped[d] = c;
        const double gap = double(v) - c;
        box_dist_sq += gap * gap;
      }
      size_t covering_live = core::JaggedLiveBites::kMaxBites;
      for (size_t lb = 0; lb < live.count; ++lb) {
        unsigned inside = 1;
        for (size_t d = 0; d < kDim; ++d) {
          inside &=
              unsigned(live.plane_lo[d * core::JaggedLiveBites::kMaxBites +
                                     lb] < clamped[d]) &
              unsigned(clamped[d] <
                       live.plane_hi[d * core::JaggedLiveBites::kMaxBites +
                                     lb]);
        }
        if (inside) {
          covering_live = lb;
          break;
        }
      }
      if (covering_live == core::JaggedLiveBites::kMaxBites) continue;
      ++covered_queries;

      const double reference = core::JaggedMinDistanceRaw(
          kDim, lo, hi, corners.data(), inners.data(), bite_count, q);
      double staged_scalar, staged_simd;
      {
        util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
        staged_scalar = core::JaggedMinDistanceStaged(
            kDim, lo, hi, live, covering_live, q, clamped, box_dist_sq);
      }
      {
        util::ScopedKernelIsa pin(util::KernelIsa::kAvx2);
        staged_simd = core::JaggedMinDistanceStaged(
            kDim, lo, hi, live, covering_live, q, clamped, box_dist_sq);
      }
      EXPECT_EQ(staged_scalar, reference) << "stack vs recursion, trial "
                                          << trial;
      EXPECT_EQ(staged_simd, staged_scalar) << "SIMD covering scan, trial "
                                            << trial;
    }
  }
  // The clustered-BP/uniform-query mix must actually exercise the
  // covered path, or this test proves nothing.
  EXPECT_GT(covered_queries, 100u);
  (void)rng;
}

TEST(KernelIsaTest, ScopedOverrideRestores) {
  const util::KernelIsa ambient = util::ActiveKernelIsa();
  {
    util::ScopedKernelIsa pin(util::KernelIsa::kScalar);
    EXPECT_EQ(util::ActiveKernelIsa(), util::KernelIsa::kScalar);
    {
      util::ScopedKernelIsa inner(util::KernelIsa::kAvx2);
      // kAvx2 only sticks when the build and host both support it.
#if defined(BW_HAVE_AVX2)
      if (util::CpuSupportsAvx2Fma()) {
        EXPECT_EQ(util::ActiveKernelIsa(), util::KernelIsa::kAvx2);
      } else {
        EXPECT_EQ(util::ActiveKernelIsa(), util::KernelIsa::kScalar);
      }
#else
      EXPECT_EQ(util::ActiveKernelIsa(), util::KernelIsa::kScalar);
#endif
    }
    EXPECT_EQ(util::ActiveKernelIsa(), util::KernelIsa::kScalar);
  }
  EXPECT_EQ(util::ActiveKernelIsa(), ambient);
}

}  // namespace
}  // namespace bw
