// Cross-AM correctness suite: every access method (R, SS, SR, aMAP, JB,
// XJB) must return exactly the brute-force k-NN answer, satisfy the GiST
// structural invariants, and survive insertion loading and deletes.
// This is the strongest property the paper's framework relies on: BP
// distance functions must be admissible lower bounds or search silently
// loses results.

#include <gtest/gtest.h>

#include <set>

#include "am/bulk_load.h"
#include "core/index_factory.h"
#include "tests/test_helpers.h"

namespace bw {
namespace {

struct AmCase {
  const char* name;
  bool insertion_loadable;
};

class AmCorrectnessTest : public ::testing::TestWithParam<AmCase> {
 protected:
  core::IndexBuildOptions Options() const {
    core::IndexBuildOptions options;
    options.am = GetParam().name;
    options.page_bytes = 4096;
    options.xjb_x = 6;
    options.amap_samples = 128;  // keep tests fast.
    return options;
  }
};

TEST_P(AmCorrectnessTest, BulkLoadedKnnMatchesBruteForce) {
  const auto points = testing::MakeClusteredPoints(3000, 5, 12, 99);
  auto built = core::BuildIndex(points, Options());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& index = **built;

  ASSERT_TRUE(index.tree().Validate().ok())
      << index.tree().Validate().ToString();
  EXPECT_EQ(index.tree().size(), points.size());

  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const geom::Vec& query = points[rng.NextBelow(points.size())];
    const size_t k = 1 + rng.NextBelow(60);
    auto result = index.Knn(query, k, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->size(), k);

    const auto expected = testing::BruteForceKnn(points, query, k);
    // Compare distance sequences (sets may differ on exact ties).
    for (size_t i = 0; i < k; ++i) {
      const double expected_dist =
          std::sqrt(points[expected[i]].DistanceSquaredTo(query));
      EXPECT_NEAR((*result)[i].distance, expected_dist, 1e-4)
          << "rank " << i << " for AM " << GetParam().name;
    }
    // Results must be sorted.
    for (size_t i = 1; i < k; ++i) {
      EXPECT_LE((*result)[i - 1].distance, (*result)[i].distance + 1e-12);
    }
  }
}

TEST_P(AmCorrectnessTest, RangeSearchMatchesBruteForce) {
  const auto points = testing::MakeClusteredPoints(2000, 4, 8, 41);
  auto built = core::BuildIndex(points, Options());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& index = **built;

  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Vec& query = points[rng.NextBelow(points.size())];
    const double radius = rng.Uniform(1.0, 15.0);
    gist::TraversalStats stats;
    auto result = index.tree().RangeSearch(query, radius, &stats);
    ASSERT_TRUE(result.ok());

    std::set<gist::Rid> got;
    for (const auto& n : *result) got.insert(n.rid);

    std::set<gist::Rid> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (points[i].DistanceTo(query) <= radius) expected.insert(i);
    }
    EXPECT_EQ(got, expected) << "AM " << GetParam().name;
  }
}

TEST_P(AmCorrectnessTest, InsertionLoadedKnnMatchesBruteForce) {
  if (!GetParam().insertion_loadable) GTEST_SKIP();
  auto options = Options();
  options.bulk_load = false;
  const auto points = testing::MakeClusteredPoints(900, 3, 6, 3);
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& index = **built;

  ASSERT_TRUE(index.tree().Validate().ok())
      << index.tree().Validate().ToString();
  EXPECT_EQ(index.tree().size(), points.size());

  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Vec& query = points[rng.NextBelow(points.size())];
    auto result = index.Knn(query, 20, nullptr);
    ASSERT_TRUE(result.ok());
    const auto expected = testing::BruteForceKnn(points, query, 20);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*result)[i].distance,
                  std::sqrt(points[expected[i]].DistanceSquaredTo(query)),
                  1e-4);
    }
  }
}

TEST_P(AmCorrectnessTest, DeleteRemovesAndKeepsTreeValid) {
  if (!GetParam().insertion_loadable) GTEST_SKIP();
  auto options = Options();
  options.bulk_load = false;
  const auto points = testing::MakeClusteredPoints(400, 3, 4, 11);
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& tree = (*built)->tree();

  // Delete every third point.
  size_t deleted = 0;
  for (size_t i = 0; i < points.size(); i += 3) {
    Status st = tree.Delete(points[i], i);
    ASSERT_TRUE(st.ok()) << st.ToString() << " at " << i;
    ++deleted;
  }
  EXPECT_EQ(tree.size(), points.size() - deleted);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();

  // Deleted points are gone; survivors are findable.
  gist::TraversalStats stats;
  for (size_t i = 0; i < points.size(); ++i) {
    auto result = tree.RangeSearch(points[i], 0.0, &stats);
    ASSERT_TRUE(result.ok());
    bool found = false;
    for (const auto& n : *result) {
      if (n.rid == i) found = true;
    }
    EXPECT_EQ(found, i % 3 != 0) << "rid " << i;
  }

  // Deleting a missing pair reports NotFound.
  EXPECT_EQ(tree.Delete(points[0], 0).code(), StatusCode::kNotFound);
}

TEST_P(AmCorrectnessTest, TraversalStatsCountUniqueNodes) {
  const auto points = testing::MakeClusteredPoints(2000, 5, 10, 5);
  auto built = core::BuildIndex(points, Options());
  ASSERT_TRUE(built.ok());
  auto& index = **built;

  gist::TraversalStats stats;
  auto result = index.Knn(points[0], 50, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.leaf_accesses, stats.accessed_leaves.size());
  EXPECT_EQ(stats.internal_accesses, stats.accessed_internals.size());
  // Best-first search never revisits a node.
  std::set<pages::PageId> unique_leaves(stats.accessed_leaves.begin(),
                                        stats.accessed_leaves.end());
  EXPECT_EQ(unique_leaves.size(), stats.accessed_leaves.size());
  EXPECT_GE(stats.leaf_accesses, 1u);
  EXPECT_GE(stats.internal_accesses, 1u);  // at least the root.
}

TEST_P(AmCorrectnessTest, DfsAndBestFirstAgreeAndDfsCostsAtLeastAsMuch) {
  const auto points = testing::MakeClusteredPoints(2500, 5, 9, 61);
  auto built = core::BuildIndex(points, Options());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& tree = (*built)->tree();

  Rng rng(19);
  for (int trial = 0; trial < 12; ++trial) {
    const geom::Vec& query = points[rng.NextBelow(points.size())];
    const size_t k = 5 + rng.NextBelow(80);
    gist::TraversalStats bf_stats, dfs_stats;
    auto bf = tree.KnnSearch(query, k, &bf_stats);
    auto dfs = tree.KnnSearchDfs(query, k, &dfs_stats);
    ASSERT_TRUE(bf.ok());
    ASSERT_TRUE(dfs.ok());
    ASSERT_EQ(bf->size(), dfs->size());
    for (size_t i = 0; i < bf->size(); ++i) {
      EXPECT_NEAR((*bf)[i].distance, (*dfs)[i].distance, 1e-9);
    }
    // Best-first is optimal for the given bounds; DFS can only match it
    // or wander further.
    EXPECT_GE(dfs_stats.TotalAccesses(), bf_stats.TotalAccesses());
  }
}

TEST_P(AmCorrectnessTest, BufferPoolDoesNotChangeAnswers) {
  const auto points = testing::MakeClusteredPoints(2000, 4, 7, 83);
  auto built = core::BuildIndex(points, Options());
  ASSERT_TRUE(built.ok());
  auto& index = **built;

  auto cold = index.Knn(points[3], 30, nullptr);
  ASSERT_TRUE(cold.ok());
  index.UseBufferPool(64);
  // Twice: once cold-through-pool, once fully cached.
  for (int round = 0; round < 2; ++round) {
    auto warm = index.Knn(points[3], 30, nullptr);
    ASSERT_TRUE(warm.ok());
    for (size_t i = 0; i < 30; ++i) {
      EXPECT_EQ((*warm)[i].rid, (*cold)[i].rid);
    }
  }
  EXPECT_GT(index.buffer_pool()->stats().hits, 0u);
}

TEST_P(AmCorrectnessTest, BulkThenDynamicInsertsKeepInvariants) {
  // Regression: bulk-load half the data, insert the rest, and validate.
  // An early-exit in the enlarge-upward insert path used to leave
  // ancestors of non-convex predicates (aMAP, JB/XJB) not covering
  // freshly inserted points.
  const auto points = testing::MakeUniformPoints(6000, 5, 47);
  const std::vector<geom::Vec> first(points.begin(), points.begin() + 3000);
  auto built = core::BuildIndex(first, Options());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& tree = (*built)->tree();
  for (size_t i = 3000; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], i).ok()) << i;
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_EQ(tree.size(), points.size());

  // And the mixed tree still answers exactly.
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const geom::Vec& q = points[rng.NextBelow(points.size())];
    auto result = tree.KnnSearch(q, 30, nullptr);
    ASSERT_TRUE(result.ok());
    const auto expected = testing::BruteForceKnn(points, q, 30);
    for (size_t i = 0; i < 30; ++i) {
      EXPECT_NEAR((*result)[i].distance,
                  std::sqrt(points[expected[i]].DistanceSquaredTo(q)), 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAccessMethods, AmCorrectnessTest,
    ::testing::Values(AmCase{"rtree", true}, AmCase{"rstar", true},
                      AmCase{"sstree", true},
                      AmCase{"srtree", true}, AmCase{"amap", true},
                      AmCase{"jb", true}, AmCase{"xjb", true}),
    [](const ::testing::TestParamInfo<AmCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bw
