// Cross-module integration tests: the full experiment pipeline at small
// scale, asserting the paper's qualitative findings hold end to end.

#include <gtest/gtest.h>

#include <numeric>

#include "amdb/analysis.h"
#include "blobworld/dataset.h"
#include "blobworld/pipeline.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"

namespace bw {
namespace {

// One shared mid-size experiment (built once; the suite asserts many
// facts against it).
class ExperimentFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    blobworld::DatasetParams params;
    params.num_images = 2000;
    params.within_cluster_sigma = 0.5;
    params.direct_noise = 0.02;
    params.blend_fraction = 0.2;
    params.zipf_exponent = 0.8;
    params.seed = 77;
    dataset_ = new blobworld::BlobDataset(
        blobworld::GenerateDatasetDirect(params));

    reducer_ = new linalg::SvdReducer();
    BW_CHECK_OK(reducer_->Fit(dataset_->Histograms(), 5));
    vectors_ = new std::vector<geom::Vec>(
        reducer_->ProjectAll(dataset_->Histograms(), 5));

    foci_ = new std::vector<uint32_t>(
        blobworld::SampleQueryBlobs(*dataset_, 60, 5));
    workload_ = new amdb::Workload(
        amdb::Workload::NnOverFoci(*vectors_, *foci_, 100));
  }

  static void TearDownTestSuite() {
    delete workload_;
    delete foci_;
    delete vectors_;
    delete reducer_;
    delete dataset_;
  }

  static amdb::AnalysisReport Analyze(const std::string& am) {
    core::IndexBuildOptions options;
    options.am = am;
    options.page_bytes = 4096;
    auto index = core::BuildIndex(*vectors_, options);
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    BW_CHECK_OK((*index)->tree().Validate());
    auto report = amdb::AnalyzeWorkload((*index)->tree(), *workload_);
    BW_CHECK_MSG(report.ok(), report.status().ToString());
    return *report;
  }

  static blobworld::BlobDataset* dataset_;
  static linalg::SvdReducer* reducer_;
  static std::vector<geom::Vec>* vectors_;
  static std::vector<uint32_t>* foci_;
  static amdb::Workload* workload_;
};

blobworld::BlobDataset* ExperimentFixture::dataset_ = nullptr;
linalg::SvdReducer* ExperimentFixture::reducer_ = nullptr;
std::vector<geom::Vec>* ExperimentFixture::vectors_ = nullptr;
std::vector<uint32_t>* ExperimentFixture::foci_ = nullptr;
amdb::Workload* ExperimentFixture::workload_ = nullptr;

TEST_F(ExperimentFixture, AllAmsReturnIdenticalAnswers) {
  // The six AMs disagree in cost, never in results.
  std::vector<std::vector<gist::Rid>> answers;
  for (const std::string& am : core::KnownAccessMethods()) {
    core::IndexBuildOptions options;
    options.am = am;
    auto index = core::BuildIndex(*vectors_, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    auto nn = (*index)->Knn((*vectors_)[(*foci_)[0]], 50, nullptr);
    ASSERT_TRUE(nn.ok());
    std::vector<gist::Rid> rids;
    for (const auto& n : *nn) rids.push_back(n.rid);
    answers.push_back(std::move(rids));
  }
  // Distances are tie-free with overwhelming probability at this scale,
  // so the rid sequences must agree exactly.
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], answers[0]) << core::KnownAccessMethods()[i];
  }
}

TEST_F(ExperimentFixture, PaperOrderingAtLeafLevel) {
  const auto rtree = Analyze("rtree");
  const auto amap = Analyze("amap");
  const auto jb = Analyze("jb");
  const auto xjb = Analyze("xjb");

  // Figures 14/15: JB has the fewest leaf I/Os; both jagged AMs beat the
  // R-tree; aMAP is on par with the R-tree (within 5%).
  EXPECT_LE(jb.leaf_accesses, xjb.leaf_accesses);
  EXPECT_LT(jb.leaf_accesses, rtree.leaf_accesses);
  EXPECT_LT(xjb.leaf_accesses, rtree.leaf_accesses);
  EXPECT_NEAR(double(amap.leaf_accesses), double(rtree.leaf_accesses),
              0.05 * double(rtree.leaf_accesses));

  // Figure 16: taller custom trees pay more inner I/Os in total.
  EXPECT_GT(jb.TotalAccesses(), rtree.TotalAccesses());
  EXPECT_GT(amap.TotalAccesses(), rtree.TotalAccesses());
  EXPECT_GT(jb.internal_accesses, xjb.internal_accesses);

  // Tree heights grow with BP size: R <= XJB <= JB, strictly R < JB.
  EXPECT_LE(rtree.shape.height, xjb.shape.height);
  EXPECT_LE(xjb.shape.height, jb.shape.height);
  EXPECT_LT(rtree.shape.height, jb.shape.height);
}

TEST_F(ExperimentFixture, SsTreeIsTheWorstStandardAm) {
  const auto rtree = Analyze("rtree");
  const auto srtree = Analyze("srtree");
  const auto sstree = Analyze("sstree");
  // Figure 8's headline: SS excess alone exceeds R's total leaf I/Os.
  EXPECT_GT(sstree.leaf_excess_coverage_loss, rtree.leaf_accesses);
  // R and SR are comparable (within 10%).
  EXPECT_NEAR(double(srtree.leaf_accesses), double(rtree.leaf_accesses),
              0.10 * double(rtree.leaf_accesses));
}

TEST_F(ExperimentFixture, BulkLoadingEliminatesUtilizationLoss) {
  const auto report = Analyze("rtree");
  EXPECT_EQ(report.leaf_utilization_loss, 0u);
}

TEST_F(ExperimentFixture, BufferPoolAbsorbsInnerNodes) {
  core::IndexBuildOptions options;
  options.am = "jb";
  auto index = core::BuildIndex(*vectors_, options);
  ASSERT_TRUE(index.ok());
  auto& built = **index;

  auto reads_with_pool = [&](size_t capacity) {
    built.UseBufferPool(capacity);
    if (built.buffer_pool() != nullptr) built.buffer_pool()->Clear();
    built.file().ResetStats();
    for (const auto& q : workload_->queries) {
      BW_CHECK(built.Knn(q.center, q.k, nullptr).ok());
    }
    return built.file().stats().reads;
  };
  const uint64_t cold = reads_with_pool(0);
  const uint64_t warm = reads_with_pool(256);
  EXPECT_LT(warm, cold / 2);
}

TEST_F(ExperimentFixture, SvdConcentratesVariance) {
  // The synthetic collection reproduces the Figure-6 premise: the first
  // five components carry the bulk of the histogram variance and each
  // additional component helps less.
  const double r1 = reducer_->ExplainedVarianceRatio(1);
  const double r5 = reducer_->ExplainedVarianceRatio(5);
  EXPECT_GT(r5, 0.5);
  EXPECT_GT(r1, 0.1);
  double previous_gain = r1;
  for (size_t d = 2; d <= 5; ++d) {
    const double gain = reducer_->ExplainedVarianceRatio(d) -
                        reducer_->ExplainedVarianceRatio(d - 1);
    EXPECT_LE(gain, previous_gain + 0.02) << d;
    previous_gain = gain;
  }
}

TEST_F(ExperimentFixture, AutoXjbBuildsWorkingIndex) {
  core::IndexBuildOptions options;
  options.am = "xjb";
  options.xjb_x = 0;  // auto-select.
  auto index = core::BuildIndex(*vectors_, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_TRUE((*index)->tree().Validate().ok());
  auto nn = (*index)->Knn((*vectors_)[0], 10, nullptr);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->size(), 10u);
}

}  // namespace
}  // namespace bw
