// Unit tests for src/linalg: Matrix, Jacobi eigensolver, thin SVD,
// Cholesky, and the SVD dimensionality reducer.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/vec.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/reducer.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace bw::linalg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.Gaussian();
  }
  return m;
}

Matrix Symmetrize(const Matrix& a) {
  Matrix s(a.rows(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.rows(); ++j) {
      s(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }
  return s;
}

TEST(MatrixTest, MultiplyIdentity) {
  Rng rng(1);
  Matrix a = RandomMatrix(4, 4, rng);
  Matrix prod = a.Multiply(Matrix::Identity(4));
  EXPECT_LT(prod.MaxAbsDiff(a), 1e-12);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 1);
  b(0, 0) = 1; b(1, 0) = 0; b(2, 0) = -1;
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(c(1, 0), -2.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(2);
  Matrix a = RandomMatrix(3, 5, rng);
  EXPECT_LT(a.Transposed().Transposed().MaxAbsDiff(a), 1e-15);
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 1.0, 1e-12);
}

TEST(EigenTest, ReconstructsMatrix) {
  Rng rng(3);
  for (size_t n : {2u, 5u, 12u}) {
    Matrix a = Symmetrize(RandomMatrix(n, n, rng));
    auto eig = SymmetricEigen(a);
    ASSERT_TRUE(eig.ok());
    // A = V diag(w) V^T.
    Matrix reconstructed(n, n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (size_t k = 0; k < n; ++k) {
          acc += eig->eigenvectors(i, k) * eig->eigenvalues[k] *
                 eig->eigenvectors(j, k);
        }
        reconstructed(i, j) = acc;
      }
    }
    EXPECT_LT(reconstructed.MaxAbsDiff(a), 1e-8) << "n=" << n;
  }
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  Rng rng(4);
  Matrix a = Symmetrize(RandomMatrix(8, 8, rng));
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  Matrix vtv = eig->eigenvectors.Transposed().Multiply(eig->eigenvectors);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(8)), 1e-9);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

TEST(SvdTest, ReconstructsMatrix) {
  Rng rng(5);
  Matrix a = RandomMatrix(10, 4, rng);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  // A = U diag(s) V^T.
  Matrix usv(10, 4, 0.0);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < 4; ++k) {
        acc += svd->u(i, k) * svd->singular_values[k] * svd->v(j, k);
      }
      usv(i, j) = acc;
    }
  }
  EXPECT_LT(usv.MaxAbsDiff(a), 1e-9);
  // Singular values descending and non-negative.
  for (size_t k = 1; k < 4; ++k) {
    EXPECT_GE(svd->singular_values[k - 1], svd->singular_values[k]);
    EXPECT_GE(svd->singular_values[k], 0.0);
  }
}

TEST(SvdTest, AgreesWithEigenOfGram) {
  Rng rng(6);
  Matrix a = RandomMatrix(20, 5, rng);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  auto eig = SymmetricEigen(a.Transposed().Multiply(a));
  ASSERT_TRUE(eig.ok());
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(svd->singular_values[k] * svd->singular_values[k],
                eig->eigenvalues[k], 1e-8);
  }
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  Rng rng(7);
  Matrix b = RandomMatrix(6, 6, rng);
  // A = B B^T + eps I is SPD.
  Matrix a = b.Multiply(b.Transposed());
  for (size_t i = 0; i < 6; ++i) a(i, i) += 0.1;
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix llt = l->Multiply(l->Transposed());
  EXPECT_LT(llt.MaxAbsDiff(a), 1e-10);
  // Lower triangular.
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = i + 1; j < 6; ++j) EXPECT_DOUBLE_EQ((*l)(i, j), 0.0);
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_EQ(CholeskyFactor(a).status().code(), StatusCode::kCorruption);
}

TEST(ReducerTest, RecoversPlantedLowRankStructure) {
  // Data = 3-D latent mapped linearly into 20-D + small noise: the first
  // 3 components must capture nearly all variance.
  Rng rng(8);
  std::vector<std::vector<double>> dirs(3, std::vector<double>(20));
  for (auto& dir : dirs) {
    for (double& x : dir) x = rng.Gaussian();
  }
  std::vector<geom::Vec> data;
  for (int i = 0; i < 500; ++i) {
    geom::Vec v(20);
    double z[3] = {rng.Gaussian() * 3, rng.Gaussian() * 2, rng.Gaussian()};
    for (size_t d = 0; d < 20; ++d) {
      double acc = 0.0;
      for (int k = 0; k < 3; ++k) acc += z[k] * dirs[k][d];
      v[d] = float(acc + rng.Gaussian() * 0.01);
    }
    data.push_back(std::move(v));
  }
  SvdReducer reducer;
  ASSERT_TRUE(reducer.Fit(data, 10).ok());
  EXPECT_GT(reducer.ExplainedVarianceRatio(3), 0.99);
  EXPECT_LT(reducer.ExplainedVarianceRatio(2), 0.995);
}

TEST(ReducerTest, ProjectionPreservesPairwiseDistancesOfLowRankData) {
  // For exactly rank-k data, the k-D projection is an isometry on the
  // data (SVD rotation): pairwise distances must match.
  Rng rng(9);
  std::vector<geom::Vec> data;
  for (int i = 0; i < 100; ++i) {
    geom::Vec v(10, 0.0f);
    const float a = float(rng.Gaussian());
    const float b = float(rng.Gaussian());
    v[0] = a + b;
    v[3] = a - b;
    v[7] = 2 * a;
    data.push_back(std::move(v));
  }
  SvdReducer reducer;
  ASSERT_TRUE(reducer.Fit(data, 2).ok());
  auto projected = reducer.ProjectAll(data, 2);
  for (int trial = 0; trial < 50; ++trial) {
    size_t i = rng.NextBelow(100);
    size_t j = rng.NextBelow(100);
    EXPECT_NEAR(data[i].DistanceTo(data[j]),
                projected[i].DistanceTo(projected[j]), 1e-3);
  }
}

TEST(ReducerTest, RejectsEmptyAndInconsistentInput) {
  SvdReducer reducer;
  EXPECT_FALSE(reducer.Fit({}, 3).ok());
  std::vector<geom::Vec> mixed = {geom::Vec(3), geom::Vec(4)};
  EXPECT_FALSE(reducer.Fit(mixed, 2).ok());
}

}  // namespace
}  // namespace bw::linalg
