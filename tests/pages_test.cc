// Unit tests for src/pages: slotted Page, PageFile I/O accounting,
// BufferPool LRU behavior, the process-wide ShardedBufferPool, and the
// IoModel disk arithmetic of the paper's footnote 4.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pages/buffer_pool.h"
#include "pages/io_model.h"
#include "pages/page.h"
#include "pages/page_file.h"
#include "pages/sharded_buffer_pool.h"

namespace bw::pages {
namespace {

Result<size_t> InsertString(Page& page, const std::string& s) {
  return page.Insert(s.data(), s.size());
}

std::string ReadString(const Page& page, size_t slot) {
  return std::string(reinterpret_cast<const char*>(page.RecordData(slot)),
                     page.RecordLength(slot));
}

TEST(PageTest, InsertAndRead) {
  Page page(1024);
  auto a = InsertString(page, "hello");
  auto b = InsertString(page, "world!");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(page.slot_count(), 2u);
  EXPECT_EQ(ReadString(page, 0), "hello");
  EXPECT_EQ(ReadString(page, 1), "world!");
}

TEST(PageTest, FillsUntilNoSpace) {
  Page page(1024);
  std::string record(100, 'x');
  size_t inserted = 0;
  while (true) {
    auto r = page.Insert(record.data(), record.size());
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kNoSpace);
      break;
    }
    ++inserted;
  }
  // 1024 bytes / (100 payload + 8 slot) ~ 9 records.
  EXPECT_GE(inserted, 8u);
  EXPECT_LE(inserted, 10u);
  EXPECT_GT(page.Utilization(), 0.8);
}

TEST(PageTest, EraseShiftsSlots) {
  Page page(1024);
  (void)InsertString(page, "a");
  (void)InsertString(page, "b");
  (void)InsertString(page, "c");
  ASSERT_TRUE(page.Erase(1).ok());
  EXPECT_EQ(page.slot_count(), 2u);
  EXPECT_EQ(ReadString(page, 0), "a");
  EXPECT_EQ(ReadString(page, 1), "c");
}

TEST(PageTest, EraseReclaimsSpaceViaCompaction) {
  Page page(1024);
  std::string big(400, 'x');
  ASSERT_TRUE(page.Insert(big.data(), big.size()).ok());
  ASSERT_TRUE(page.Insert(big.data(), big.size()).ok());
  EXPECT_FALSE(page.Insert(big.data(), big.size()).ok());
  ASSERT_TRUE(page.Erase(0).ok());
  // After erasing, the hole must be reusable.
  EXPECT_TRUE(page.Insert(big.data(), big.size()).ok());
  EXPECT_EQ(ReadString(page, 0), big);
}

TEST(PageTest, UpdateInPlaceAndGrowing) {
  Page page(1024);
  (void)InsertString(page, "abcdef");
  (void)InsertString(page, "tail");
  ASSERT_TRUE(page.Update(0, "XY", 2).ok());
  EXPECT_EQ(ReadString(page, 0), "XY");
  EXPECT_EQ(ReadString(page, 1), "tail");
  std::string grown(100, 'g');
  ASSERT_TRUE(page.Update(0, grown.data(), grown.size()).ok());
  EXPECT_EQ(ReadString(page, 0), grown);
  EXPECT_EQ(ReadString(page, 1), "tail");
}

TEST(PageTest, UpdateBeyondCapacityFails) {
  Page page(512);
  (void)InsertString(page, "x");
  std::string huge(1000, 'h');
  EXPECT_EQ(page.Update(0, huge.data(), huge.size()).code(),
            StatusCode::kNoSpace);
}

TEST(PageTest, HeaderWords) {
  Page page(512);
  page.set_header_word(0, 7);
  page.set_header_word(1, 0xDEADBEEF);
  EXPECT_EQ(page.header_word(0), 7u);
  EXPECT_EQ(page.header_word(1), 0xDEADBEEFu);
}

TEST(PageTest, OutOfRangeOperationsFail) {
  Page page(512);
  EXPECT_EQ(page.Erase(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(page.Update(3, "x", 1).code(), StatusCode::kInvalidArgument);
}

TEST(PageFileTest, AllocateAndAccess) {
  PageFile file(512);
  PageId a = file.Allocate();
  PageId b = file.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(file.page_count(), 2u);
  ASSERT_TRUE(file.Read(a).ok());
  EXPECT_FALSE(file.Read(99).ok());
}

TEST(PageFileTest, ClassifiesSequentialVsRandomReads) {
  PageFile file(512);
  for (int i = 0; i < 10; ++i) file.Allocate();
  file.ResetStats();
  // Sequential sweep: first read is random, the rest sequential.
  for (PageId id = 0; id < 10; ++id) (void)file.Read(id);
  EXPECT_EQ(file.stats().reads, 10u);
  EXPECT_EQ(file.stats().random_reads, 1u);
  EXPECT_EQ(file.stats().sequential_reads, 9u);
  // A backwards jump is random.
  (void)file.Read(0);
  EXPECT_EQ(file.stats().random_reads, 2u);
}

TEST(PageFileTest, PeekDoesNotCount) {
  PageFile file(512);
  file.Allocate();
  file.ResetStats();
  (void)file.PeekNoIo(0);
  EXPECT_EQ(file.stats().reads, 0u);
}

TEST(BufferPoolTest, HitsAvoidFileReads) {
  PageFile file(512);
  for (int i = 0; i < 4; ++i) file.Allocate();
  BufferPool pool(&file, 4);
  file.ResetStats();
  for (int round = 0; round < 3; ++round) {
    for (PageId id = 0; id < 4; ++id) ASSERT_TRUE(pool.Fetch(id).ok());
  }
  EXPECT_EQ(file.stats().reads, 4u);  // only the cold misses
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pool.stats().hits, 8u);
  EXPECT_NEAR(pool.stats().HitRate(), 8.0 / 12.0, 1e-12);
}

TEST(BufferPoolTest, LruEvictsLeastRecent) {
  PageFile file(512);
  for (int i = 0; i < 3; ++i) file.Allocate();
  BufferPool pool(&file, 2);
  (void)pool.Fetch(0);
  (void)pool.Fetch(1);
  (void)pool.Fetch(0);  // 0 is now most recent
  (void)pool.Fetch(2);  // evicts 1
  file.ResetStats();
  (void)pool.Fetch(0);  // hit
  (void)pool.Fetch(1);  // miss (was evicted)
  EXPECT_EQ(file.stats().reads, 1u);
  EXPECT_EQ(pool.stats().evictions, 2u);  // inserting 2 evicted 1; 1 evicted 0
}

TEST(BufferPoolTest, ZeroCapacityCachesNothing) {
  PageFile file(512);
  file.Allocate();
  BufferPool pool(&file, 0);
  (void)pool.Fetch(0);
  (void)pool.Fetch(0);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, PrimeAvoidsColdMiss) {
  PageFile file(512);
  file.Allocate();
  BufferPool pool(&file, 2);
  pool.Prime(0);
  file.ResetStats();
  (void)pool.Fetch(0);
  EXPECT_EQ(file.stats().reads, 0u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

// PageStore wrapper with an injectable quarantine set, mimicking the
// durable store's health gate over the in-memory PageFile.
class QuarantiningFile : public PageStore {
 public:
  explicit QuarantiningFile(size_t page_size) : file_(page_size) {}

  void Quarantine(PageId id) { sick_.push_back(id); }

  size_t page_size() const override { return file_.page_size(); }
  size_t page_count() const override { return file_.page_count(); }
  PageId Allocate() override { return file_.Allocate(); }
  Result<Page*> Read(PageId id) override { return file_.Read(id); }
  Result<Page*> Write(PageId id) override { return file_.Write(id); }
  Page* PeekNoIo(PageId id) override { return file_.PeekNoIo(id); }
  const Page* PeekNoIo(PageId id) const override {
    return file_.PeekNoIo(id);
  }
  Status ReadHealth(PageId id) const override {
    for (PageId sick : sick_) {
      if (sick == id) return Status::Unavailable("page quarantined");
    }
    return Status::OK();
  }
  const IoStats& stats() const override { return file_.stats(); }
  void ResetStats() override { file_.ResetStats(); }

 private:
  PageFile file_;
  std::vector<PageId> sick_;
};

TEST(ShardedPoolTest, MissesAreSharedAcrossSessions) {
  PageFile file(512);
  for (int i = 0; i < 4; ++i) file.Allocate();
  ShardedPoolOptions options;
  options.shards = 4;
  ShardedBufferPool pool(&file, 8, options);
  auto a = pool.MakeSession();
  auto b = pool.MakeSession();
  for (PageId id = 0; id < 4; ++id) ASSERT_TRUE(a->Fetch(id).ok());
  // Session B reuses the pages session A's misses brought in: the whole
  // point of the shared pool.
  for (PageId id = 0; id < 4; ++id) ASSERT_TRUE(b->Fetch(id).ok());
  EXPECT_EQ(a->stats().misses, 4u);
  EXPECT_EQ(a->stats().hits, 0u);
  EXPECT_EQ(b->stats().hits, 4u);
  EXPECT_EQ(b->stats().misses, 0u);
  const BufferStats total = pool.TotalStats();
  EXPECT_EQ(total.hits, 4u);
  EXPECT_EQ(total.misses, 4u);
  EXPECT_EQ(total.evictions, 0u);
}

TEST(ShardedPoolTest, ClockEvictionIsCounted) {
  PageFile file(512);
  for (int i = 0; i < 3; ++i) file.Allocate();
  ShardedPoolOptions options;
  options.shards = 1;  // single shard: deterministic CLOCK behavior.
  ShardedBufferPool pool(&file, 2, options);
  EXPECT_EQ(pool.shard_count(), 1u);
  auto session = pool.MakeSession();
  (void)session->Fetch(0);
  (void)session->Fetch(1);
  (void)session->Fetch(2);  // full: the sweep must evict someone.
  EXPECT_EQ(pool.TotalStats().evictions, 1u);
  EXPECT_EQ(session->stats().evictions, 1u);
  const auto per_shard = pool.PerShardStats();
  ASSERT_EQ(per_shard.size(), 1u);
  EXPECT_EQ(per_shard[0].resident, 2u);
  EXPECT_EQ(per_shard[0].capacity, 2u);
}

TEST(ShardedPoolTest, HashSpreadsPagesOverShards) {
  PageFile file(512);
  for (int i = 0; i < 64; ++i) file.Allocate();
  ShardedPoolOptions options;
  options.shards = 4;
  ShardedBufferPool pool(&file, 64, options);
  auto session = pool.MakeSession();
  for (PageId id = 0; id < 64; ++id) ASSERT_TRUE(session->Fetch(id).ok());
  for (const ShardStats& shard : pool.PerShardStats()) {
    EXPECT_GT(shard.misses, 0u) << "a shard saw none of 64 pages";
  }
}

TEST(ShardedPoolTest, QuarantinedPageRefusedEvenWhenResident) {
  QuarantiningFile store(512);
  store.Allocate();
  ShardedBufferPool pool(&store, 4, {});
  auto session = pool.MakeSession();
  ASSERT_TRUE(session->Fetch(0).ok());  // resident now.
  store.Quarantine(0);
  auto refused = session->Fetch(0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
}

TEST(ShardedPoolTest, OutOfRangeFetchFails) {
  PageFile file(512);
  file.Allocate();
  ShardedBufferPool pool(&file, 4, {});
  auto session = pool.MakeSession();
  EXPECT_FALSE(session->Fetch(99).ok());
}

TEST(ShardedPoolTest, WatchdogCutsOffSimulatedRead) {
  PageFile file(512);
  file.Allocate();
  ShardedPoolOptions options;
  options.miss_delay_us = 200000;  // one read dwarfs the deadline.
  ShardedBufferPool pool(&file, 4, options);
  auto session = pool.MakeSession();
  session->ArmWatchdog(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(2));
  const auto start = std::chrono::steady_clock::now();
  auto aborted = session->Fetch(0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kAborted);
  EXPECT_EQ(session->watchdog_expirations(), 1u);
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.15);
  session->DisarmWatchdog();
  // Watchdog state is per-session: a fresh session reads fine (with the
  // full delay, so drop it first).
  auto other = pool.MakeSession();
  EXPECT_EQ(other->watchdog_expirations(), 0u);
}

TEST(ShardedPoolTest, ConcurrentSessionsAccountExactly) {
  PageFile file(512);
  for (int i = 0; i < 8; ++i) file.Allocate();
  ShardedPoolOptions options;
  options.shards = 4;
  // Ample per-shard headroom: 8 pages never evict even if the hash
  // lands them all in one shard (8 <= 32/4 is not guaranteed per shard,
  // but 32 total leaves every shard at least 8 frames).
  ShardedBufferPool pool(&file, 32, options);
  constexpr size_t kThreads = 4;
  constexpr size_t kFetches = 500;
  std::vector<std::thread> threads;
  std::vector<BufferStats> session_stats(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &session_stats, t] {
      auto session = pool.MakeSession();
      for (size_t i = 0; i < kFetches; ++i) {
        ASSERT_TRUE(session->Fetch((t * 31 + i * 7) % 8).ok());
      }
      session_stats[t] = session->stats();
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t session_total = 0;
  for (const BufferStats& s : session_stats) {
    EXPECT_EQ(s.hits + s.misses, kFetches);
    session_total += s.hits + s.misses;
  }
  const BufferStats total = pool.TotalStats();
  EXPECT_EQ(total.hits + total.misses, session_total);
  EXPECT_EQ(total.evictions, 0u);  // capacity covers every page.
}

TEST(IoModelTest, PaperFootnote4Arithmetic) {
  // Seagate Barracuda defaults, 8 KB pages: the paper derives ~14
  // sequential I/Os per random I/O.
  IoModel model;
  EXPECT_NEAR(model.TransferMs(), 8192.0 / 9000.0, 1e-6);
  EXPECT_NEAR(model.RandomReadMs(), 7.1 + 4.17 + model.TransferMs(), 1e-9);
  EXPECT_GT(model.RandomToSequentialRatio(), 13.0);
  EXPECT_LT(model.RandomToSequentialRatio(), 15.0);
  EXPECT_NEAR(model.BreakEvenPageFraction(),
              1.0 / model.RandomToSequentialRatio(), 1e-12);
}

TEST(IoModelTest, WorkloadCostAdds) {
  IoModel model;
  const double cost = model.WorkloadMs(2, 10);
  EXPECT_NEAR(cost,
              2 * model.RandomReadMs() + 10 * model.SequentialReadMs(),
              1e-9);
}

}  // namespace
}  // namespace bw::pages
