// Unit tests for src/pages: slotted Page, PageFile I/O accounting,
// BufferPool LRU behavior, and the IoModel disk arithmetic of the
// paper's footnote 4.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "pages/buffer_pool.h"
#include "pages/io_model.h"
#include "pages/page.h"
#include "pages/page_file.h"

namespace bw::pages {
namespace {

Result<size_t> InsertString(Page& page, const std::string& s) {
  return page.Insert(s.data(), s.size());
}

std::string ReadString(const Page& page, size_t slot) {
  return std::string(reinterpret_cast<const char*>(page.RecordData(slot)),
                     page.RecordLength(slot));
}

TEST(PageTest, InsertAndRead) {
  Page page(1024);
  auto a = InsertString(page, "hello");
  auto b = InsertString(page, "world!");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(page.slot_count(), 2u);
  EXPECT_EQ(ReadString(page, 0), "hello");
  EXPECT_EQ(ReadString(page, 1), "world!");
}

TEST(PageTest, FillsUntilNoSpace) {
  Page page(1024);
  std::string record(100, 'x');
  size_t inserted = 0;
  while (true) {
    auto r = page.Insert(record.data(), record.size());
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kNoSpace);
      break;
    }
    ++inserted;
  }
  // 1024 bytes / (100 payload + 8 slot) ~ 9 records.
  EXPECT_GE(inserted, 8u);
  EXPECT_LE(inserted, 10u);
  EXPECT_GT(page.Utilization(), 0.8);
}

TEST(PageTest, EraseShiftsSlots) {
  Page page(1024);
  (void)InsertString(page, "a");
  (void)InsertString(page, "b");
  (void)InsertString(page, "c");
  ASSERT_TRUE(page.Erase(1).ok());
  EXPECT_EQ(page.slot_count(), 2u);
  EXPECT_EQ(ReadString(page, 0), "a");
  EXPECT_EQ(ReadString(page, 1), "c");
}

TEST(PageTest, EraseReclaimsSpaceViaCompaction) {
  Page page(1024);
  std::string big(400, 'x');
  ASSERT_TRUE(page.Insert(big.data(), big.size()).ok());
  ASSERT_TRUE(page.Insert(big.data(), big.size()).ok());
  EXPECT_FALSE(page.Insert(big.data(), big.size()).ok());
  ASSERT_TRUE(page.Erase(0).ok());
  // After erasing, the hole must be reusable.
  EXPECT_TRUE(page.Insert(big.data(), big.size()).ok());
  EXPECT_EQ(ReadString(page, 0), big);
}

TEST(PageTest, UpdateInPlaceAndGrowing) {
  Page page(1024);
  (void)InsertString(page, "abcdef");
  (void)InsertString(page, "tail");
  ASSERT_TRUE(page.Update(0, "XY", 2).ok());
  EXPECT_EQ(ReadString(page, 0), "XY");
  EXPECT_EQ(ReadString(page, 1), "tail");
  std::string grown(100, 'g');
  ASSERT_TRUE(page.Update(0, grown.data(), grown.size()).ok());
  EXPECT_EQ(ReadString(page, 0), grown);
  EXPECT_EQ(ReadString(page, 1), "tail");
}

TEST(PageTest, UpdateBeyondCapacityFails) {
  Page page(512);
  (void)InsertString(page, "x");
  std::string huge(1000, 'h');
  EXPECT_EQ(page.Update(0, huge.data(), huge.size()).code(),
            StatusCode::kNoSpace);
}

TEST(PageTest, HeaderWords) {
  Page page(512);
  page.set_header_word(0, 7);
  page.set_header_word(1, 0xDEADBEEF);
  EXPECT_EQ(page.header_word(0), 7u);
  EXPECT_EQ(page.header_word(1), 0xDEADBEEFu);
}

TEST(PageTest, OutOfRangeOperationsFail) {
  Page page(512);
  EXPECT_EQ(page.Erase(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(page.Update(3, "x", 1).code(), StatusCode::kInvalidArgument);
}

TEST(PageFileTest, AllocateAndAccess) {
  PageFile file(512);
  PageId a = file.Allocate();
  PageId b = file.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(file.page_count(), 2u);
  ASSERT_TRUE(file.Read(a).ok());
  EXPECT_FALSE(file.Read(99).ok());
}

TEST(PageFileTest, ClassifiesSequentialVsRandomReads) {
  PageFile file(512);
  for (int i = 0; i < 10; ++i) file.Allocate();
  file.ResetStats();
  // Sequential sweep: first read is random, the rest sequential.
  for (PageId id = 0; id < 10; ++id) (void)file.Read(id);
  EXPECT_EQ(file.stats().reads, 10u);
  EXPECT_EQ(file.stats().random_reads, 1u);
  EXPECT_EQ(file.stats().sequential_reads, 9u);
  // A backwards jump is random.
  (void)file.Read(0);
  EXPECT_EQ(file.stats().random_reads, 2u);
}

TEST(PageFileTest, PeekDoesNotCount) {
  PageFile file(512);
  file.Allocate();
  file.ResetStats();
  (void)file.PeekNoIo(0);
  EXPECT_EQ(file.stats().reads, 0u);
}

TEST(BufferPoolTest, HitsAvoidFileReads) {
  PageFile file(512);
  for (int i = 0; i < 4; ++i) file.Allocate();
  BufferPool pool(&file, 4);
  file.ResetStats();
  for (int round = 0; round < 3; ++round) {
    for (PageId id = 0; id < 4; ++id) ASSERT_TRUE(pool.Fetch(id).ok());
  }
  EXPECT_EQ(file.stats().reads, 4u);  // only the cold misses
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pool.stats().hits, 8u);
  EXPECT_NEAR(pool.stats().HitRate(), 8.0 / 12.0, 1e-12);
}

TEST(BufferPoolTest, LruEvictsLeastRecent) {
  PageFile file(512);
  for (int i = 0; i < 3; ++i) file.Allocate();
  BufferPool pool(&file, 2);
  (void)pool.Fetch(0);
  (void)pool.Fetch(1);
  (void)pool.Fetch(0);  // 0 is now most recent
  (void)pool.Fetch(2);  // evicts 1
  file.ResetStats();
  (void)pool.Fetch(0);  // hit
  (void)pool.Fetch(1);  // miss (was evicted)
  EXPECT_EQ(file.stats().reads, 1u);
  EXPECT_EQ(pool.stats().evictions, 2u);  // inserting 2 evicted 1; 1 evicted 0
}

TEST(BufferPoolTest, ZeroCapacityCachesNothing) {
  PageFile file(512);
  file.Allocate();
  BufferPool pool(&file, 0);
  (void)pool.Fetch(0);
  (void)pool.Fetch(0);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, PrimeAvoidsColdMiss) {
  PageFile file(512);
  file.Allocate();
  BufferPool pool(&file, 2);
  pool.Prime(0);
  file.ResetStats();
  (void)pool.Fetch(0);
  EXPECT_EQ(file.stats().reads, 0u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(IoModelTest, PaperFootnote4Arithmetic) {
  // Seagate Barracuda defaults, 8 KB pages: the paper derives ~14
  // sequential I/Os per random I/O.
  IoModel model;
  EXPECT_NEAR(model.TransferMs(), 8192.0 / 9000.0, 1e-6);
  EXPECT_NEAR(model.RandomReadMs(), 7.1 + 4.17 + model.TransferMs(), 1e-9);
  EXPECT_GT(model.RandomToSequentialRatio(), 13.0);
  EXPECT_LT(model.RandomToSequentialRatio(), 15.0);
  EXPECT_NEAR(model.BreakEvenPageFraction(),
              1.0 / model.RandomToSequentialRatio(), 1e-12);
}

TEST(IoModelTest, WorkloadCostAdds) {
  IoModel model;
  const double cost = model.WorkloadMs(2, 10);
  EXPECT_NEAR(cost,
              2 * model.RandomReadMs() + 10 * model.SequentialReadMs(),
              1e-9);
}

}  // namespace
}  // namespace bw::pages
