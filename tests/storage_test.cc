// Unit tests for the durable storage engine's parts: CRC32, the page
// codec, fault-injected file I/O, the WAL (framing, group commit, torn
// tails, corruption), the checksummed base file (DiskPageFile), and the
// DurableStore commit/checkpoint/recover protocol. End-to-end crash
// sweeps over a real index live in crash_recovery_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "pages/page.h"
#include "pages/page_codec.h"
#include "pages/page_file.h"
#include "storage/disk_page_file.h"
#include "storage/fault_injector.h"
#include "storage/file_io.h"
#include "storage/store.h"
#include "storage/wal.h"
#include "util/crc32.h"
#include "util/status.h"

namespace bw {
namespace {

using storage::DiskPageFile;
using storage::DurableStore;
using storage::FaultInjector;
using storage::File;
using storage::RecoveryManager;
using storage::StoreOptions;
using storage::Wal;
using storage::WalOptions;
using storage::WalRecordType;
using storage::WalRecordView;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(c ^ 0x01, f), EOF);
  std::fclose(f);
}

void TruncateTo(const std::string& path, uint64_t size) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(storage::ReadFile(path, &bytes).ok());
  ASSERT_LE(size, bytes.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, size, f), size);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownAnswer) {
  // The IEEE CRC-32 check value for the ASCII digits "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Extend(0, data.data(), split);
    crc = Crc32Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  uint8_t buf[64];
  for (size_t i = 0; i < sizeof(buf); ++i) buf[i] = static_cast<uint8_t>(i);
  const uint32_t clean = Crc32(buf, sizeof(buf));
  for (size_t byte = 0; byte < sizeof(buf); byte += 7) {
    buf[byte] ^= 0x20;
    EXPECT_NE(Crc32(buf, sizeof(buf)), clean);
    buf[byte] ^= 0x20;
  }
}

// ---------------------------------------------------------------------------
// Page codec
// ---------------------------------------------------------------------------

TEST(PageCodecTest, RoundTripsRecordsAndHeaderWords) {
  pages::Page page(1024);
  page.set_header_word(0, 0xDEAD);
  page.set_header_word(3, 42);
  for (int i = 0; i < 5; ++i) {
    std::string record = "record-" + std::to_string(i);
    record.resize(8 + static_cast<size_t>(i) * 13, 'x');
    ASSERT_TRUE(page.Insert(record.data(), record.size()).ok());
  }
  ASSERT_TRUE(page.Erase(2).ok());  // leave a compaction hole behind.

  std::vector<uint8_t> encoded;
  pages::EncodePage(page, &encoded);
  ASSERT_LE(encoded.size(), pages::MaxEncodedPageBytes(1024));

  pages::Page decoded(1024);
  ASSERT_TRUE(pages::DecodePage(encoded.data(), encoded.size(), &decoded)
                  .ok());
  EXPECT_EQ(decoded.header_word(0), 0xDEADu);
  EXPECT_EQ(decoded.header_word(3), 42u);
  ASSERT_EQ(decoded.slot_count(), page.slot_count());
  for (size_t s = 0; s < page.slot_count(); ++s) {
    ASSERT_EQ(decoded.RecordLength(s), page.RecordLength(s));
    EXPECT_EQ(std::memcmp(decoded.RecordData(s), page.RecordData(s),
                          page.RecordLength(s)),
              0);
  }
}

TEST(PageCodecTest, RejectsTruncatedAndOversizedInput) {
  pages::Page page(512);
  ASSERT_TRUE(page.Insert("hello", 5).ok());
  std::vector<uint8_t> encoded;
  pages::EncodePage(page, &encoded);

  pages::Page out(512);
  EXPECT_FALSE(
      pages::DecodePage(encoded.data(), encoded.size() - 1, &out).ok());
  encoded.push_back(0);
  EXPECT_FALSE(
      pages::DecodePage(encoded.data(), encoded.size(), &out).ok());
}

// ---------------------------------------------------------------------------
// File + fault injection
// ---------------------------------------------------------------------------

TEST(FileIoTest, WriteReadAppendRoundTrip) {
  const std::string path = TempPath("file_io.bin");
  auto file = File::Open(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->WriteAt(0, "abcdef", 6).ok());
  ASSERT_TRUE((*file)->Append("ghi", 3).ok());
  ASSERT_TRUE((*file)->WriteAt(2, "XY", 2).ok());
  EXPECT_EQ((*file)->size(), 9u);
  ASSERT_TRUE((*file)->Sync().ok());

  char buf[9];
  ASSERT_TRUE((*file)->ReadAt(0, buf, sizeof(buf)).ok());
  EXPECT_EQ(std::string(buf, 9), "abXYefghi");
  EXPECT_FALSE((*file)->ReadAt(5, buf, 9).ok());  // short read is an error.

  std::vector<uint8_t> all;
  ASSERT_TRUE(storage::ReadFile(path, &all).ok());
  EXPECT_EQ(all.size(), 9u);
}

TEST(FileIoTest, CrashFaultKillsTheWriteStream) {
  const std::string path = TempPath("file_crash.bin");
  FaultInjector injector;
  auto file = File::Open(path, /*truncate=*/true, &injector);
  ASSERT_TRUE(file.ok());
  injector.Arm(FaultInjector::Fault::kCrash, /*nth_write=*/2);

  ASSERT_TRUE((*file)->WriteAt(0, "first", 5).ok());
  EXPECT_FALSE((*file)->WriteAt(5, "second", 6).ok());
  EXPECT_TRUE(injector.crashed());
  // The "process" is dead: every later write and sync fails too.
  EXPECT_FALSE((*file)->WriteAt(20, "later", 5).ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_EQ(injector.writes_seen(), 3u);

  std::vector<uint8_t> all;
  ASSERT_TRUE(storage::ReadFile(path, &all).ok());
  EXPECT_EQ(all.size(), 5u);  // only the pre-crash write persisted.
}

TEST(FileIoTest, TornWritePersistsHalfThePrefix) {
  const std::string path = TempPath("file_torn.bin");
  FaultInjector injector;
  auto file = File::Open(path, /*truncate=*/true, &injector);
  ASSERT_TRUE(file.ok());
  injector.Arm(FaultInjector::Fault::kTornWrite, /*nth_write=*/1);

  std::vector<uint8_t> data(100, 0xAB);
  EXPECT_FALSE((*file)->WriteAt(0, data.data(), data.size()).ok());
  EXPECT_TRUE(injector.crashed());

  std::vector<uint8_t> all;
  ASSERT_TRUE(storage::ReadFile(path, &all).ok());
  ASSERT_EQ(all.size(), 50u);
  EXPECT_EQ(all[0], 0xAB);
  EXPECT_EQ(all[49], 0xAB);
}

TEST(FileIoTest, BitFlipSilentlyCorruptsOneBit) {
  const std::string path = TempPath("file_flip.bin");
  FaultInjector injector;
  auto file = File::Open(path, /*truncate=*/true, &injector);
  ASSERT_TRUE(file.ok());
  injector.Arm(FaultInjector::Fault::kBitFlip, /*nth_write=*/1);

  std::vector<uint8_t> data(64, 0x00);
  ASSERT_TRUE((*file)->WriteAt(0, data.data(), data.size()).ok());
  EXPECT_FALSE(injector.crashed());  // the write "succeeded".

  std::vector<uint8_t> all;
  ASSERT_TRUE(storage::ReadFile(path, &all).ok());
  ASSERT_EQ(all.size(), data.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      flipped_bits += ((all[i] ^ data[i]) >> b) & 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FileIoTest, CleanEnospcKeepsTheFdUsable) {
  const std::string path = TempPath("file_enospc.bin");
  FaultInjector injector;
  auto file = File::Open(path, /*truncate=*/true, &injector);
  ASSERT_TRUE(file.ok());

  FaultInjector::WriteFaultPlan plan;
  plan.enospc_every_n = 2;  // the second write hits a full disk.
  plan.enospc_burst = 1;
  injector.ArmWrites(plan);

  std::vector<uint8_t> data(16, 0x11);
  ASSERT_TRUE((*file)->WriteAt(0, data.data(), data.size()).ok());
  const Status refused = (*file)->WriteAt(16, data.data(), data.size());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(injector.enospc_faults(), 1u);
  EXPECT_FALSE((*file)->fail_stopped());  // clean refusal, fd intact.

  // Space "frees up": the same fd keeps working, and nothing of the
  // refused write ever landed.
  injector.DisarmWrites();
  ASSERT_TRUE((*file)->WriteAt(16, data.data(), data.size()).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  std::vector<uint8_t> all;
  ASSERT_TRUE(storage::ReadFile(path, &all).ok());
  EXPECT_EQ(all.size(), 32u);
}

TEST(FileIoTest, EioFailStopsTheFd) {
  const std::string path = TempPath("file_eio.bin");
  FaultInjector injector;
  auto file = File::Open(path, /*truncate=*/true, &injector);
  ASSERT_TRUE(file.ok());

  FaultInjector::WriteFaultPlan plan;
  plan.eio_every_n = 1;
  injector.ArmWrites(plan);

  std::vector<uint8_t> data(16, 0x22);
  const Status hard = (*file)->WriteAt(0, data.data(), data.size());
  EXPECT_EQ(hard.code(), StatusCode::kIoError);
  EXPECT_TRUE((*file)->fail_stopped());

  // The device error left the range in an unknown state: even with the
  // injector quiet again, the fd sheds everything.
  injector.DisarmWrites();
  EXPECT_FALSE((*file)->WriteAt(0, data.data(), data.size()).ok());
  EXPECT_FALSE((*file)->Sync().ok());
}

TEST(FileIoTest, FailedFsyncCannotBeRetriedIntoDurability) {
  // Fsyncgate regression: after fsync reports failure the kernel may
  // already have dropped the dirty pages, so a later write+fsync pair
  // that "succeeds" would acknowledge a commit that never reached the
  // platter. The fd must fail-stop instead.
  const std::string path = TempPath("file_fsyncgate.bin");
  FaultInjector injector;
  auto file = File::Open(path, /*truncate=*/true, &injector);
  ASSERT_TRUE(file.ok());

  FaultInjector::WriteFaultPlan plan;
  plan.sync_fail_at = 1;
  injector.ArmWrites(plan);

  std::vector<uint8_t> data(16, 0x33);
  ASSERT_TRUE((*file)->WriteAt(0, data.data(), data.size()).ok());
  const Status failed = (*file)->Sync();
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(injector.sync_failures(), 1u);
  EXPECT_TRUE((*file)->fail_stopped());

  // The "retry the commit" sequence a naive caller would attempt: both
  // legs must fail, so no layer above can ever report durable.
  EXPECT_FALSE((*file)->WriteAt(16, data.data(), data.size()).ok());
  EXPECT_FALSE((*file)->Sync().ok());
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("roundtrip.wal");
  auto wal = Wal::Create(path, WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kAlloc, 7, nullptr, 0).ok());
  ASSERT_TRUE(
      (*wal)->Append(WalRecordType::kPageImage, 7, "payload!", 8).ok());
  const uint64_t tag = 99;
  ASSERT_TRUE(
      (*wal)->Append(WalRecordType::kCommit, pages::kInvalidPageId, &tag, 8)
          .ok());
  EXPECT_EQ((*wal)->last_lsn(), 3u);
  EXPECT_EQ((*wal)->durable_lsn(), 3u);  // sync_every_records == 1.

  std::vector<std::tuple<WalRecordType, pages::PageId, std::string>> seen;
  auto replay = storage::ReplayWal(path, [&](const WalRecordView& r) {
    seen.emplace_back(r.type, r.page_id,
                      std::string(reinterpret_cast<const char*>(r.payload),
                                  r.payload_len));
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 3u);
  EXPECT_EQ(replay->commits, 1u);
  EXPECT_EQ(replay->last_lsn, 3u);
  EXPECT_FALSE(replay->tail_truncated);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(std::get<0>(seen[0]), WalRecordType::kAlloc);
  EXPECT_EQ(std::get<1>(seen[0]), 7u);
  EXPECT_EQ(std::get<0>(seen[1]), WalRecordType::kPageImage);
  EXPECT_EQ(std::get<2>(seen[1]), "payload!");
  EXPECT_EQ(std::get<0>(seen[2]), WalRecordType::kCommit);
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  auto replay = storage::ReplayWal(TempPath("nonexistent.wal"),
                                   [](const WalRecordView&) {
                                     ADD_FAILURE() << "no records expected";
                                     return Status::OK();
                                   });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 0u);
}

TEST(WalTest, TornTailIsDetectedAndContinuable) {
  const std::string path = TempPath("torn_tail.wal");
  {
    auto wal = Wal::Create(path, WalOptions());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
    }
  }
  auto intact = storage::ReplayWal(
      path, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records, 3u);

  // Tear 3 bytes off the last record: the scan must stop cleanly after
  // the second record, not error.
  TruncateTo(path, intact->valid_bytes - 3);
  auto torn = storage::ReplayWal(
      path, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ(torn->records, 2u);
  EXPECT_TRUE(torn->tail_truncated);
  EXPECT_EQ(torn->last_lsn, 2u);

  // Continue drops the torn tail and appends at the next LSN.
  auto cont = Wal::Continue(path, WalOptions(), torn->valid_bytes,
                            torn->last_lsn + 1);
  ASSERT_TRUE(cont.ok()) << cont.status().ToString();
  ASSERT_TRUE(
      (*cont)->Append(WalRecordType::kPageImage, 9, "resumed", 7).ok());

  std::vector<uint64_t> lsns;
  auto resumed = storage::ReplayWal(path, [&](const WalRecordView& r) {
    lsns.push_back(r.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed->tail_truncated);
  ASSERT_EQ(lsns.size(), 3u);
  EXPECT_EQ(lsns.back(), 3u);
}

TEST(WalTest, CorruptRecordIsDataLoss) {
  const std::string path = TempPath("corrupt.wal");
  {
    auto wal = Wal::Create(path, WalOptions());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
    }
  }
  // Flip one payload bit of the middle record: a *complete* record that
  // fails its CRC is corruption, never a benign torn tail.
  FlipByteAt(path, 38 + 25);  // record 1 starts at 38; payload at +24.
  auto replay = storage::ReplayWal(
      path, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, GroupCommitBatchesFsyncs) {
  const std::string path = TempPath("group_commit.wal");
  WalOptions options;
  options.sync_every_records = 4;
  auto wal = Wal::Create(path, options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(WalRecordType::kAlloc, i, nullptr, 0).ok());
  }
  EXPECT_EQ((*wal)->sync_count(), 0u);
  EXPECT_EQ((*wal)->durable_lsn(), 0u);  // still buffered, not on disk.
  ASSERT_TRUE((*wal)->Append(WalRecordType::kAlloc, 3, nullptr, 0).ok());
  EXPECT_EQ((*wal)->sync_count(), 1u);  // fourth record triggered it.
  EXPECT_EQ((*wal)->durable_lsn(), 4u);
}

TEST(WalTest, UnsyncedRecordsDieWithTheProcess) {
  const std::string path = TempPath("unsynced.wal");
  WalOptions options;
  options.sync_every_records = 100;
  {
    auto wal = Wal::Create(path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kAlloc, i, nullptr, 0).ok());
    }
    // Dropped without Sync: the buffered records were never written.
  }
  auto replay = storage::ReplayWal(
      path, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 0u);
}

TEST(WalTest, ResetEmptiesLogButLsnsKeepRising) {
  const std::string path = TempPath("reset.wal");
  auto wal = Wal::Create(path, WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kAlloc, 0, nullptr, 0).ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kAlloc, 1, nullptr, 0).ok());

  std::vector<uint64_t> lsns;
  auto replay = storage::ReplayWal(path, [&](const WalRecordView& r) {
    lsns.push_back(r.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(lsns.size(), 1u);
  EXPECT_EQ(lsns[0], 2u);  // the pre-reset record is gone, its LSN is not.
}

// ---------------------------------------------------------------------------
// WAL segment rotation
// ---------------------------------------------------------------------------

std::string SegPath(const std::string& base, uint64_t seq) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(seq));
  return base + suffix;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// Every record below is 24 (header) + 10 (payload) + 4 (crc) = 38 bytes;
// the segment header is 20 bytes. With segment_bytes = 128 the active
// segment seals after its third record (20 + 3*38 = 134 >= 128).
WalOptions RotatingOptions() {
  WalOptions options;
  options.segment_bytes = 128;
  return options;
}

TEST(WalRotationTest, RotationSealsSegmentsAndReplaySpansThem) {
  const std::string base = TempPath("rotating.wal");
  auto wal = Wal::Create(base, RotatingOptions());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
  }
  EXPECT_EQ((*wal)->segments_created(), 4u);  // 3+3+3+1 records.
  EXPECT_EQ((*wal)->segments_sealed(), 3u);
  EXPECT_EQ((*wal)->active_segment_seq(), 4u);
  EXPECT_FALSE(FileExists(base));  // segmented mode: no legacy file.
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    EXPECT_TRUE(FileExists(SegPath(base, seq))) << seq;
  }

  std::vector<uint64_t> lsns;
  auto replay = storage::ReplayWal(base, [&](const WalRecordView& r) {
    lsns.push_back(r.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 10u);
  EXPECT_EQ(replay->segments, 4u);
  EXPECT_EQ(replay->last_segment_seq, 4u);
  EXPECT_FALSE(replay->tail_truncated);
  ASSERT_EQ(lsns.size(), 10u);
  for (size_t i = 0; i < lsns.size(); ++i) {
    EXPECT_EQ(lsns[i], i + 1);  // seq order across segment boundaries.
  }
}

TEST(WalRotationTest, TornTailInFinalSegmentIsBenignAndContinuable) {
  const std::string base = TempPath("rotating_torn.wal");
  {
    auto wal = Wal::Create(base, RotatingOptions());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
    }
  }
  // Tear 3 bytes off the single record of the active (4th) segment: the
  // benign crash-mid-append shape, even though earlier segments exist.
  TruncateTo(SegPath(base, 4), 20 + 38 - 3);
  auto torn = storage::ReplayWal(
      base, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ(torn->records, 9u);
  EXPECT_TRUE(torn->tail_truncated);
  EXPECT_EQ(torn->last_lsn, 9u);
  EXPECT_EQ(torn->last_segment_seq, 4u);

  // Continue truncates the torn tail and appends into the same segment.
  auto cont = Wal::Continue(base, RotatingOptions(), *torn,
                            torn->last_lsn + 1);
  ASSERT_TRUE(cont.ok()) << cont.status().ToString();
  ASSERT_TRUE(
      (*cont)->Append(WalRecordType::kPageImage, 99, "resumed!!!", 10).ok());
  auto resumed = storage::ReplayWal(
      base, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->records, 10u);
  EXPECT_EQ(resumed->last_lsn, 10u);
  EXPECT_FALSE(resumed->tail_truncated);
}

TEST(WalRotationTest, TornSealedSegmentIsDataLoss) {
  const std::string base = TempPath("rotating_sealed_tear.wal");
  {
    auto wal = Wal::Create(base, RotatingOptions());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
    }
  }
  // The same 3-byte tear, but in a SEALED segment: sealing synced it, so
  // a short file there means the disk lost acknowledged bytes.
  TruncateTo(SegPath(base, 2), 20 + 2 * 38 + 35);
  auto replay = storage::ReplayWal(
      base, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST(WalRotationTest, SegmentSequenceGapIsDataLoss) {
  const std::string base = TempPath("rotating_gap.wal");
  {
    auto wal = Wal::Create(base, RotatingOptions());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
    }
  }
  // Retirement removes oldest-first, so a missing MIDDLE segment can
  // only mean a whole file of acknowledged records vanished.
  ASSERT_EQ(std::remove(SegPath(base, 2).c_str()), 0);
  auto replay = storage::ReplayWal(
      base, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST(WalRotationTest, ResetRetiresSealedSegmentsAndBoundsLiveBytes) {
  const std::string base = TempPath("rotating_reset.wal");
  auto wal = Wal::Create(base, RotatingOptions());
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 7; ++i) {  // 2 sealed segments + 1 record active.
    ASSERT_TRUE(
        (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
  }
  ASSERT_EQ((*wal)->segments_sealed(), 2u);
  const uint64_t before = (*wal)->live_bytes();
  ASSERT_GT(before, 3 * 20u);

  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->segments_retired(), 2u);
  EXPECT_EQ((*wal)->segments_sealed(), 0u);
  EXPECT_EQ((*wal)->live_bytes(), 20u);  // just the active header.
  EXPECT_FALSE(FileExists(SegPath(base, 1)));
  EXPECT_FALSE(FileExists(SegPath(base, 2)));

  // The log keeps working after the reset; LSNs keep rising.
  ASSERT_TRUE(
      (*wal)->Append(WalRecordType::kPageImage, 8, "afterreset", 10).ok());
  std::vector<uint64_t> lsns;
  auto replay = storage::ReplayWal(base, [&](const WalRecordView& r) {
    lsns.push_back(r.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(lsns.size(), 1u);
  EXPECT_EQ(lsns[0], 8u);
}

TEST(WalRotationTest, ArchivedSegmentsAreKeptButIgnoredByReplay) {
  const std::string base = TempPath("rotating_archive.wal");
  WalOptions options = RotatingOptions();
  options.archive_sealed = true;
  auto wal = Wal::Create(base, options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(WalRecordType::kPageImage, i, "0123456789", 10).ok());
  }
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->segments_retired(), 2u);
  // Retired segments were renamed, not deleted: an audit trail replay
  // must not mistake for live log.
  EXPECT_FALSE(FileExists(SegPath(base, 1)));
  EXPECT_TRUE(FileExists(SegPath(base, 1) + ".archived"));
  EXPECT_TRUE(FileExists(SegPath(base, 2) + ".archived"));
  auto replay = storage::ReplayWal(
      base, [](const WalRecordView&) { return Status::OK(); });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 0u);
}

// ---------------------------------------------------------------------------
// DiskPageFile
// ---------------------------------------------------------------------------

TEST(DiskPageFileTest, CreateFlushReopenRoundTrip) {
  const std::string path = TempPath("base_roundtrip.bwpf");
  {
    auto disk = DiskPageFile::Create(path, 1024);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    for (int i = 0; i < 3; ++i) {
      const pages::PageId id = (*disk)->Allocate();
      auto page = (*disk)->Write(id);
      ASSERT_TRUE(page.ok());
      (*page)->set_header_word(0, 100 + i);
      const std::string record = "page-" + std::to_string(i);
      ASSERT_TRUE((*page)->Insert(record.data(), record.size()).ok());
    }
    ASSERT_TRUE((*disk)->FlushPagesAndSync({0, 1, 2}).ok());
    ASSERT_TRUE((*disk)->CommitHeader(/*checkpoint_lsn=*/7).ok());
  }
  auto reopened = DiskPageFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->page_count(), 3u);
  EXPECT_EQ((*reopened)->page_size(), 1024u);
  EXPECT_EQ((*reopened)->checkpoint_lsn(), 7u);
  EXPECT_TRUE((*reopened)->suspect_pages().empty());
  for (int i = 0; i < 3; ++i) {
    const pages::Page* page = (*reopened)->PeekNoIo(i);
    EXPECT_EQ(page->header_word(0), 100u + i);
    ASSERT_EQ(page->slot_count(), 1u);
    const std::string expected = "page-" + std::to_string(i);
    EXPECT_EQ(std::memcmp(page->RecordData(0), expected.data(),
                          expected.size()),
              0);
  }
}

TEST(DiskPageFileTest, BitFlippedFrameIsSuspectAndRepairable) {
  const std::string path = TempPath("base_suspect.bwpf");
  std::vector<uint8_t> good_image;
  {
    auto disk = DiskPageFile::Create(path, 1024);
    ASSERT_TRUE(disk.ok());
    for (int i = 0; i < 2; ++i) {
      const pages::PageId id = (*disk)->Allocate();
      auto page = (*disk)->Write(id);
      ASSERT_TRUE(page.ok());
      ASSERT_TRUE((*page)->Insert("some bytes", 10).ok());
    }
    pages::EncodePage(*(*disk)->PeekNoIo(1), &good_image);
    ASSERT_TRUE((*disk)->FlushPagesAndSync({0, 1}).ok());
    ASSERT_TRUE((*disk)->CommitHeader(0).ok());
  }
  // Frames start at byte 128; each is page_size + 32 bytes. Rot a byte
  // in the middle of frame 1.
  FlipByteAt(path, 128 + (1024 + 32) + 5);

  auto reopened = DiskPageFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->suspect_pages(), std::vector<pages::PageId>{1});
  // Page 0 survived; the suspect page reads as empty until repaired.
  EXPECT_EQ((*reopened)->PeekNoIo(0)->slot_count(), 1u);
  EXPECT_EQ((*reopened)->PeekNoIo(1)->slot_count(), 0u);

  ASSERT_TRUE(
      (*reopened)
          ->ApplyPageImage(1, good_image.data(), good_image.size())
          .ok());
  EXPECT_TRUE((*reopened)->suspect_pages().empty());
  EXPECT_EQ((*reopened)->PeekNoIo(1)->slot_count(), 1u);
}

TEST(DiskPageFileTest, TornHeaderFallsBackToPreviousEpoch) {
  const std::string path = TempPath("base_header.bwpf");
  {
    auto disk = DiskPageFile::Create(path, 1024);  // epoch 1 -> slot B.
    ASSERT_TRUE(disk.ok());
    const pages::PageId id = (*disk)->Allocate();
    auto page = (*disk)->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("x", 1).ok());
    ASSERT_TRUE((*disk)->FlushPagesAndSync({id}).ok());
    ASSERT_TRUE((*disk)->CommitHeader(5).ok());  // epoch 2 -> slot A.
    ASSERT_TRUE((*disk)->CommitHeader(9).ok());  // epoch 3 -> slot B.
  }
  {
    auto intact = DiskPageFile::Open(path);
    ASSERT_TRUE(intact.ok());
    EXPECT_EQ((*intact)->checkpoint_lsn(), 9u);
  }
  // Corrupt the newest header (slot B, bytes 64..127): Open must fall
  // back to the epoch-2 header instead of failing.
  FlipByteAt(path, 64 + 20);
  auto fallback = DiskPageFile::Open(path);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ((*fallback)->checkpoint_lsn(), 5u);
  EXPECT_EQ((*fallback)->page_count(), 1u);

  // With both headers gone the store is unrecoverable: DataLoss.
  FlipByteAt(path, 0 + 20);
  auto dead = DiskPageFile::Open(path);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// DurableStore: commit, recover, checkpoint
// ---------------------------------------------------------------------------

StoreOptions SmallStore() {
  StoreOptions options;
  options.page_size = 512;
  return options;
}

TEST(DurableStoreTest, CommittedBatchesSurviveACrash) {
  const std::string base = TempPath("store_commit.bwpf");
  const std::string wal = TempPath("store_commit.wal");
  {
    auto store = DurableStore::Create(base, wal, SmallStore());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 0; i < 2; ++i) {
      const pages::PageId id = (*store)->pages()->Allocate();
      auto page = (*store)->pages()->Write(id);
      ASSERT_TRUE(page.ok());
      ASSERT_TRUE((*page)->Insert("batch-one", 9).ok());
    }
    ASSERT_TRUE((*store)->CommitBatch(1).ok());

    auto page = (*store)->pages()->Write(0);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("batch-two", 9).ok());
    ASSERT_TRUE((*store)->CommitBatch(2).ok());

    // Mutated but never committed: must not survive.
    auto lost = (*store)->pages()->Write(1);
    ASSERT_TRUE(lost.ok());
    ASSERT_TRUE((*lost)->Insert("uncommitted", 11).ok());
    // "Crash": drop the store with no checkpoint.
  }
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, SmallStore(), &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.committed_batches, 2u);
  EXPECT_EQ(summary.last_commit_tag, 2u);
  EXPECT_FALSE(summary.wal_tail_truncated);
  ASSERT_EQ((*recovered)->pages()->page_count(), 2u);
  EXPECT_EQ((*recovered)->pages()->PeekNoIo(0)->slot_count(), 2u);
  EXPECT_EQ((*recovered)->pages()->PeekNoIo(1)->slot_count(), 1u);

  // The recovered store keeps working: commit, crash, recover again.
  {
    auto page = (*recovered)->pages()->Write(1);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("round two", 9).ok());
    ASSERT_TRUE((*recovered)->CommitBatch(3).ok());
    recovered->reset();
  }
  auto again = RecoveryManager::Recover(base, wal, SmallStore(), &summary);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(summary.last_commit_tag, 3u);
  EXPECT_EQ((*again)->pages()->PeekNoIo(1)->slot_count(), 2u);
}

TEST(DurableStoreTest, UncommittedWalTailIsDiscarded) {
  const std::string base = TempPath("store_tail.bwpf");
  const std::string wal = TempPath("store_tail.wal");
  {
    auto store = DurableStore::Create(base, wal, SmallStore());
    ASSERT_TRUE(store.ok());
    const pages::PageId id = (*store)->pages()->Allocate();
    auto page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("durable", 7).ok());
    ASSERT_TRUE((*store)->CommitBatch(1).ok());
    // A batch that reached the log but never committed — as if the
    // process died between the page images and the commit record.
    ASSERT_TRUE((*store)
                    ->wal()
                    ->Append(WalRecordType::kAlloc, 5, nullptr, 0)
                    .ok());
  }
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, SmallStore(), &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.committed_batches, 1u);
  EXPECT_EQ(summary.records_discarded, 1u);
  EXPECT_EQ((*recovered)->pages()->page_count(), 1u);  // alloc 5 dropped.
}

TEST(DurableStoreTest, CheckpointEmptiesWalAndPreservesState) {
  const std::string base = TempPath("store_ckpt.bwpf");
  const std::string wal = TempPath("store_ckpt.wal");
  {
    auto store = DurableStore::Create(base, wal, SmallStore());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 4; ++i) {
      const pages::PageId id = (*store)->pages()->Allocate();
      auto page = (*store)->pages()->Write(id);
      ASSERT_TRUE(page.ok());
      ASSERT_TRUE((*page)->Insert(&i, sizeof(i)).ok());
      ASSERT_TRUE((*store)->CommitBatch(i + 1).ok());
    }
    ASSERT_TRUE((*store)->Checkpoint().ok());
  }
  // The WAL is empty after the checkpoint...
  std::vector<uint8_t> wal_bytes;
  ASSERT_TRUE(storage::ReadFile(wal, &wal_bytes).ok());
  EXPECT_EQ(wal_bytes.size(), 0u);
  // ...and the state comes back from the base file alone.
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, SmallStore(), &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.committed_batches, 0u);  // nothing left to replay.
  ASSERT_EQ((*recovered)->pages()->page_count(), 4u);
  for (pages::PageId id = 0; id < 4; ++id) {
    EXPECT_EQ((*recovered)->pages()->PeekNoIo(id)->slot_count(), 1u);
  }
}

TEST(DurableStoreTest, TornCheckpointFrameIsRepairedFromWal) {
  const std::string base = TempPath("store_torn_frame.bwpf");
  const std::string wal = TempPath("store_torn_frame.wal");
  FaultInjector injector;
  StoreOptions options = SmallStore();
  options.injector = &injector;
  {
    auto store = DurableStore::Create(base, wal, options);
    ASSERT_TRUE(store.ok());
    const pages::PageId id = (*store)->pages()->Allocate();
    auto page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("v1", 2).ok());
    ASSERT_TRUE((*store)->CommitBatch(1).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());

    page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("v2", 2).ok());
    ASSERT_TRUE((*store)->CommitBatch(2).ok());

    // Kill the next checkpoint mid-frame-flush: the base frame tears,
    // but the WAL already holds the batch-2 image.
    injector.Arm(FaultInjector::Fault::kTornWrite, /*nth_write=*/1);
    EXPECT_FALSE((*store)->Checkpoint().ok());
    EXPECT_TRUE(injector.crashed());
  }
  injector.Disarm();
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, SmallStore(), &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.last_commit_tag, 2u);
  EXPECT_EQ((*recovered)->pages()->PeekNoIo(0)->slot_count(), 2u);
}

TEST(DurableStoreTest, UnrepairableRotIsDataLoss) {
  const std::string base = TempPath("store_rot.bwpf");
  const std::string wal = TempPath("store_rot.wal");
  {
    auto store = DurableStore::Create(base, wal, SmallStore());
    ASSERT_TRUE(store.ok());
    const pages::PageId id = (*store)->pages()->Allocate();
    auto page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("precious", 8).ok());
    ASSERT_TRUE((*store)->CommitBatch(1).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());  // WAL now empty.
  }
  // Rot the only copy: frame 0 starts at byte 128 (512-byte pages).
  FlipByteAt(base, 128 + 16);
  auto recovered = RecoveryManager::Recover(base, wal, SmallStore());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
}

TEST(DurableStoreTest, CleanEnospcCommitIsRetriedWithoutLosingChanges) {
  const std::string base = TempPath("store_enospc.bwpf");
  const std::string wal = TempPath("store_enospc.wal");
  FaultInjector injector;
  StoreOptions options = SmallStore();
  options.injector = &injector;
  {
    auto store = DurableStore::Create(base, wal, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    const pages::PageId id = (*store)->pages()->Allocate();
    auto page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("survives", 8).ok());

    // The disk fills up: every write refuses cleanly with ENOSPC.
    FaultInjector::WriteFaultPlan plan;
    plan.enospc_every_n = 1;
    plan.enospc_burst = 1;
    injector.ArmWrites(plan);
    const Status shed = (*store)->CommitBatch(1);
    EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

    // Space returns: the SAME changes must be re-logged by the retry —
    // the failed commit put the drained dirty/alloc tracking back.
    injector.DisarmWrites();
    ASSERT_TRUE((*store)->CommitBatch(1).ok());
  }
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, SmallStore(), &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.last_commit_tag, 1u);
  ASSERT_EQ((*recovered)->pages()->page_count(), 1u);
  EXPECT_EQ((*recovered)->pages()->PeekNoIo(0)->slot_count(), 1u);
}

TEST(DurableStoreTest, FailedFsyncCommitNeverReportsDurable) {
  // Store-level fsyncgate: once the WAL's fsync fails, no later commit
  // may succeed on this store — only crash recovery can continue, and it
  // must surface exactly the batches that were durable BEFORE the
  // failure.
  const std::string base = TempPath("store_fsyncgate.bwpf");
  const std::string wal = TempPath("store_fsyncgate.wal");
  FaultInjector injector;
  StoreOptions options = SmallStore();
  options.injector = &injector;
  {
    auto store = DurableStore::Create(base, wal, options);
    ASSERT_TRUE(store.ok());
    const pages::PageId id = (*store)->pages()->Allocate();
    auto page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("batch-one", 9).ok());
    ASSERT_TRUE((*store)->CommitBatch(1).ok());

    FaultInjector::WriteFaultPlan plan;
    plan.sync_fail_at = 1;
    injector.ArmWrites(plan);
    page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("batch-two", 9).ok());
    const Status failed = (*store)->CommitBatch(2);
    EXPECT_FALSE(failed.ok());
    EXPECT_NE(failed.code(), StatusCode::kResourceExhausted)
        << "a failed fsync is not a clean, retryable refusal";

    // The naive retry: it must fail too (the fd fail-stopped), so the
    // store can never acknowledge batch 2.
    EXPECT_FALSE((*store)->CommitBatch(2).ok());
  }
  injector.DisarmWrites();
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, SmallStore(), &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.last_commit_tag, 1u);  // batch 2 was never durable.
  EXPECT_EQ((*recovered)->pages()->PeekNoIo(0)->slot_count(), 1u);
}

TEST(DurableStoreTest, SegmentedWalRotatesAndCheckpointRetiresSegments) {
  const std::string base = TempPath("store_segmented.bwpf");
  const std::string wal = TempPath("store_segmented.wal");
  StoreOptions options = SmallStore();
  options.wal_segment_bytes = 512;  // a handful of commit batches each.
  {
    auto store = DurableStore::Create(base, wal, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 0; i < 24; ++i) {
      const pages::PageId id = (*store)->pages()->Allocate();
      auto page = (*store)->pages()->Write(id);
      ASSERT_TRUE(page.ok());
      ASSERT_TRUE((*page)->Insert(&i, sizeof(i)).ok());
      ASSERT_TRUE((*store)->CommitBatch(i + 1).ok());
    }
    ASSERT_GT((*store)->wal()->segments_created(), 2u);
    // The checkpoint folds the log into the base and retires every
    // sealed segment: the live log shrinks back to one header.
    ASSERT_TRUE((*store)->Checkpoint().ok());
    EXPECT_GT((*store)->wal()->segments_retired(), 0u);
    EXPECT_EQ((*store)->wal()->segments_sealed(), 0u);
    EXPECT_EQ((*store)->wal()->live_bytes(), 20u);
  }
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, options, &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ((*recovered)->pages()->page_count(), 24u);
}

TEST(DurableStoreTest, RecoveryReplaysAcrossSegmentBoundaries) {
  const std::string base = TempPath("store_segspan.bwpf");
  const std::string wal = TempPath("store_segspan.wal");
  StoreOptions options = SmallStore();
  options.wal_segment_bytes = 512;
  uint64_t segments_written = 0;
  {
    auto store = DurableStore::Create(base, wal, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 0; i < 16; ++i) {
      const pages::PageId id = (*store)->pages()->Allocate();
      auto page = (*store)->pages()->Write(id);
      ASSERT_TRUE(page.ok());
      ASSERT_TRUE((*page)->Insert(&i, sizeof(i)).ok());
      ASSERT_TRUE((*store)->CommitBatch(i + 1).ok());
    }
    segments_written = (*store)->wal()->segments_created();
    ASSERT_GE(segments_written, 3u);
    // "Crash": no checkpoint — recovery must stitch every batch back
    // together across all the segment files.
  }
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, options, &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.last_commit_tag, 16u);
  EXPECT_EQ(summary.wal_segments_replayed, segments_written);
  ASSERT_EQ((*recovered)->pages()->page_count(), 16u);
  for (pages::PageId id = 0; id < 16; ++id) {
    EXPECT_EQ((*recovered)->pages()->PeekNoIo(id)->slot_count(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Self-healing read path: retry, scrub, quarantine, repair
// ---------------------------------------------------------------------------

storage::ReadRetryPolicy FastRetry() {
  storage::ReadRetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_us = 5;
  retry.max_backoff_us = 50;
  retry.jitter_seed = 1;
  return retry;
}

/// Creates a flushed, committed 3-page base file at `path`; page i holds
/// one record "page-i".
void WriteThreePageBase(const std::string& path) {
  auto disk = DiskPageFile::Create(path, 1024);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  for (int i = 0; i < 3; ++i) {
    const pages::PageId id = (*disk)->Allocate();
    auto page = (*disk)->Write(id);
    ASSERT_TRUE(page.ok());
    const std::string record = "page-" + std::to_string(i);
    ASSERT_TRUE((*page)->Insert(record.data(), record.size()).ok());
  }
  ASSERT_TRUE((*disk)->FlushPagesAndSync({0, 1, 2}).ok());
  ASSERT_TRUE((*disk)->CommitHeader(/*checkpoint_lsn=*/0).ok());
}

TEST(ReadRetryTest, TransientOpenFaultsAbsorbedByBackoffRetry) {
  const std::string path = TempPath("retry_absorbed.bwpf");
  WriteThreePageBase(path);

  FaultInjector injector;
  FaultInjector::ReadFaultPlan plan;
  plan.transient_every_n = 3;  // two consecutive faults, then success:
  plan.transient_burst = 2;    // always inside the 4-attempt budget.
  injector.ArmReads(plan);
  storage::DiskPageFileOptions options;
  options.injector = &injector;
  options.read_retry = FastRetry();
  auto disk = DiskPageFile::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE((*disk)->suspect_pages().empty());
  EXPECT_EQ((*disk)->health().quarantined_count(), 0u);
  EXPECT_GT((*disk)->read_retries(), 0u);
  EXPECT_GT(injector.transient_read_faults(), 0u);
  EXPECT_EQ((*disk)->PeekNoIo(2)->slot_count(), 1u);
}

TEST(ReadRetryTest, ExhaustedRetryBudgetIsUnavailable) {
  const std::string path = TempPath("retry_exhausted.bwpf");
  WriteThreePageBase(path);
  FaultInjector injector;
  storage::DiskPageFileOptions options;
  options.injector = &injector;
  options.read_retry = FastRetry();
  auto disk = DiskPageFile::Open(path, options);
  ASSERT_TRUE(disk.ok());

  FaultInjector::ReadFaultPlan plan;
  plan.transient_every_n = 1;  // every read (and every retry) faults.
  injector.ArmReads(plan);
  const Status status = (*disk)->VerifyFrame(0);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(status.IsRetryable());
  // All attempts were burned: the original read plus three retries.
  EXPECT_EQ((*disk)->read_retries(), 3u);
  injector.DisarmReads();
  EXPECT_TRUE((*disk)->VerifyFrame(0).ok());
}

TEST(PageHealthTest, RegistryGatesCountsAndReleases) {
  const std::string path = TempPath("health_registry.bwpf");
  WriteThreePageBase(path);
  auto disk = DiskPageFile::Open(path);
  ASSERT_TRUE(disk.ok());

  EXPECT_TRUE((*disk)->ReadHealth(1).ok());
  EXPECT_TRUE((*disk)->health().Quarantine(1));
  EXPECT_FALSE((*disk)->health().Quarantine(1));  // no double-count.
  const Status gated = (*disk)->ReadHealth(1);
  EXPECT_EQ(gated.code(), StatusCode::kUnavailable);
  EXPECT_EQ((*disk)->health().quarantined_count(), 1u);
  EXPECT_EQ((*disk)->health().Quarantined(), std::vector<pages::PageId>{1});

  (*disk)->health().Release(1);
  EXPECT_TRUE((*disk)->ReadHealth(1).ok());
  EXPECT_EQ((*disk)->health().quarantined_count(), 0u);
  EXPECT_EQ((*disk)->health().total_quarantined(), 1u);
  EXPECT_EQ((*disk)->health().total_repaired(), 1u);
}

TEST(SelfHealTest, ScrubQuarantinesRotAndRepairFromMemoryHeals) {
  const std::string path = TempPath("scrub_repair.bwpf");
  auto disk = DiskPageFile::Create(path, 1024);
  ASSERT_TRUE(disk.ok());
  for (int i = 0; i < 3; ++i) {
    const pages::PageId id = (*disk)->Allocate();
    auto page = (*disk)->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("payload", 7).ok());
  }
  ASSERT_TRUE((*disk)->FlushPagesAndSync({0, 1, 2}).ok());
  ASSERT_TRUE((*disk)->CommitHeader(0).ok());

  // Disk rot under a live store: the memory copy stays valid.
  FlipByteAt(path, 128 + (1024 + 32) + 5);
  storage::ScrubReport report;
  ASSERT_TRUE((*disk)->Scrub(&report).ok());
  EXPECT_EQ(report.frames_checked, 3u);
  EXPECT_EQ(report.frames_quarantined, 1u);
  EXPECT_EQ((*disk)->health().Quarantined(), std::vector<pages::PageId>{1});
  EXPECT_FALSE((*disk)->memory_invalid(1));
  EXPECT_EQ((*disk)->VerifyFrame(1).code(), StatusCode::kDataLoss);

  ASSERT_TRUE((*disk)->RepairFromMemory(1).ok());
  EXPECT_EQ((*disk)->health().quarantined_count(), 0u);
  EXPECT_TRUE((*disk)->VerifyFrame(1).ok());
  // A second scrub confirms the heal is durable on disk.
  ASSERT_TRUE((*disk)->Scrub(&report).ok());
  EXPECT_EQ(report.frames_quarantined, 0u);
}

TEST(SelfHealTest, ReloadFromDiskHealsTransientOpenRot) {
  const std::string path = TempPath("reload_heal.bwpf");
  WriteThreePageBase(path);

  const long rotten_byte = 128 + (1024 + 32) + 5;
  FlipByteAt(path, rotten_byte);
  auto disk = DiskPageFile::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->suspect_pages(), std::vector<pages::PageId>{1});
  EXPECT_TRUE((*disk)->memory_invalid(1));
  EXPECT_EQ((*disk)->PeekNoIo(1)->slot_count(), 0u);  // cleared, gated.

  // The rot clears up (as a transient medium fault at Open would):
  // ReloadFromDisk re-materializes the page without any WAL.
  FlipByteAt(path, rotten_byte);
  ASSERT_TRUE((*disk)->ReloadFromDisk(1).ok());
  EXPECT_FALSE((*disk)->memory_invalid(1));
  EXPECT_EQ((*disk)->health().quarantined_count(), 0u);
  EXPECT_EQ((*disk)->PeekNoIo(1)->slot_count(), 1u);
}

TEST(SelfHealTest, WalMinedRepairHealsPageQuarantinedAtOpen) {
  const std::string base = TempPath("wal_repair.bwpf");
  const std::string wal = TempPath("wal_repair.wal");
  StoreOptions options = SmallStore();
  std::vector<uint8_t> wal_bytes;
  {
    auto store = DurableStore::Create(base, wal, options);
    ASSERT_TRUE(store.ok());
    const pages::PageId id = (*store)->pages()->Allocate();
    auto page = (*store)->pages()->Write(id);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->Insert("precious", 8).ok());
    ASSERT_TRUE((*store)->CommitBatch(1).ok());
    // Snapshot the log while it still holds the batch-1 image, then
    // checkpoint. Restoring these bytes below reproduces a crash that
    // landed between header publish and WAL truncation.
    ASSERT_TRUE(storage::ReadFile(wal, &wal_bytes).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());
  }
  {
    std::FILE* f = std::fopen(wal.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(wal_bytes.data(), 1, wal_bytes.size(), f),
              wal_bytes.size());
    std::fclose(f);
  }
  FlipByteAt(base, 128 + 16);  // rot the only base copy of page 0.

  // Fail-closed recovery refuses; tolerant recovery opens degraded.
  ASSERT_FALSE(RecoveryManager::Recover(base, wal, options).ok());
  options.quarantine_unrepaired = true;
  RecoveryManager::Summary summary;
  auto recovered = RecoveryManager::Recover(base, wal, options, &summary);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(summary.pages_quarantined, 1u);
  EXPECT_EQ((*recovered)->disk()->ReadHealth(0).code(),
            StatusCode::kUnavailable);

  // The unrepaired page pins the WAL: checkpoints must refuse to
  // truncate the only surviving redo image.
  EXPECT_EQ((*recovered)->Checkpoint().code(), StatusCode::kUnavailable);

  DurableStore::RepairReport report;
  ASSERT_TRUE((*recovered)->RepairQuarantined(&report).ok());
  EXPECT_EQ(report.repaired_from_wal, 1u);
  EXPECT_EQ(report.unrepaired, 0u);
  EXPECT_TRUE((*recovered)->disk()->ReadHealth(0).ok());
  EXPECT_EQ((*recovered)->pages()->PeekNoIo(0)->slot_count(), 1u);
  // With the page healed the WAL is no longer pinned.
  EXPECT_TRUE((*recovered)->Checkpoint().ok());
}

// ---------------------------------------------------------------------------
// PageFile thread-contract enforcement (debug builds)
// ---------------------------------------------------------------------------

#ifndef NDEBUG
using PageFileContractDeathTest = ::testing::Test;

TEST(PageFileContractDeathTest, MutatorOverlappingPeekersAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pages::PageFile file(512);
        file.Allocate();
        std::atomic<bool> stop{false};
        std::thread peeker([&] {
          while (!stop.load(std::memory_order_relaxed)) {
            file.PeekNoIo(0);
          }
        });
        // Keep mutating until the occupancy counters catch an overlap
        // (the loop bound only matters if the abort never happens).
        for (int i = 0; i < 50'000'000; ++i) {
          (void)file.Write(0);
        }
        stop.store(true);
        peeker.join();
      },
      "PageFile contract violation");
}
#else
TEST(PageFileContractTest, GuardsCompileOutInReleaseBuilds) {
  GTEST_SKIP() << "occupancy guards are compiled out under NDEBUG";
}
#endif

}  // namespace
}  // namespace bw
