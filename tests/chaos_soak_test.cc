// Chaos soak harness for the self-healing read path: a durable index is
// served by a QueryService while a chaos thread rots frames on disk,
// arms the FaultInjector's transient/flip/delay read schedules, scrubs,
// and repairs — all concurrently with query threads that verify every
// single response against a fault-free brute-force reference:
//
//  - complete responses must match the reference exactly;
//  - degraded responses must be flagged (completeness/pages_skipped) and
//    subset-valid: every returned neighbor is a genuine point at its true
//    distance, in ascending order, and range results are a subset of the
//    reference answer set — a degraded answer may miss neighbors but may
//    never invent or misplace one;
//  - quarantined pages are eventually all repaired (memory/disk/WAL
//    routes) and the final query round is exact again;
//  - service metrics are consistent with what the queries observed and
//    with the store's own health counters.
//
// The sweep is seeded and deterministic per seed; BW_CHAOS_SEEDS picks
// how many consecutive seeds to run (default keeps CI fast; acceptance
// is 100 consecutive seeds locally: BW_CHAOS_SEEDS=100).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "geom/vec.h"
#include "gist/tree.h"
#include "service/query_service.h"
#include "storage/disk_page_file.h"
#include "storage/fault_injector.h"
#include "storage/store.h"
#include "tests/test_helpers.h"
#include "util/random.h"

namespace bw {
namespace {

using service::OverflowPolicy;
using service::QueryService;
using service::ServiceOptions;
using service::StreamOptions;
using storage::DiskPageFile;
using storage::FaultInjector;
using storage::StoreOptions;

constexpr size_t kNumPoints = 400;
constexpr size_t kDim = 3;
constexpr size_t kPageBytes = 1024;
constexpr size_t kK = 10;

// Mirrors the DiskPageFile frame layout (two 64-byte header slots, then
// page_size + 32 bytes per frame); byte +5 is always inside the
// CRC-covered encoded image, so flipping it is guaranteed detectable rot.
long FrameRotOffset(pages::PageId id) {
  return static_cast<long>(128 + id * (kPageBytes + 32) + 5);
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(c ^ 0x40, f), EOF);
  std::fclose(f);
}

std::set<gist::Rid> RidSet(const std::vector<gist::Neighbor>& neighbors) {
  std::set<gist::Rid> rids;
  for (const auto& n : neighbors) rids.insert(n.rid);
  return rids;
}

/// One query's fault-free reference answers, brute-forced.
struct Reference {
  geom::Vec query;
  std::set<gist::Rid> knn;        // the true k nearest, as a rid set.
  double radius = 0;              // range radius (off any point boundary).
  std::set<gist::Rid> in_radius;  // the true range answer set.
};

std::vector<Reference> MakeReferences(const std::vector<geom::Vec>& points,
                                      uint64_t seed) {
  std::vector<geom::Vec> queries = testing::MakeUniformPoints(4, kDim, seed);
  queries.push_back(points[seed % points.size()]);
  queries.push_back(points[(seed * 31 + 7) % points.size()]);
  std::vector<Reference> refs;
  for (geom::Vec& q : queries) {
    Reference ref;
    const auto knn = testing::BruteForceKnn(points, q, kK);
    for (const size_t i : knn) ref.knn.insert(i);
    // 1.001x keeps the boundary off any point, so inclusive-vs-exclusive
    // floating-point edge cases cannot make the reference set ambiguous.
    ref.radius = points[knn.back()].DistanceTo(q) * 1.001;
    for (size_t i = 0; i < points.size(); ++i) {
      if (points[i].DistanceTo(q) <= ref.radius) ref.in_radius.insert(i);
    }
    ref.query = std::move(q);
    refs.push_back(std::move(ref));
  }
  return refs;
}

/// The no-silently-wrong-results invariant: every neighbor in any
/// response (complete, degraded, or truncated) must be a real point at
/// its true distance, and the list must be ascending.
void ExpectGenuine(const std::vector<geom::Vec>& points, const geom::Vec& query,
                   const std::vector<gist::Neighbor>& neighbors) {
  double prev = -1.0;
  for (const auto& n : neighbors) {
    ASSERT_LT(n.rid, points.size());
    EXPECT_NEAR(n.distance, points[n.rid].DistanceTo(query), 1e-6);
    EXPECT_GE(n.distance, prev - 1e-9);
    prev = n.distance;
  }
}

/// Checks one k-NN response: exact when complete, flagged + genuine when
/// degraded. Returns whether it was degraded.
bool CheckKnnResponse(const std::vector<geom::Vec>& points,
                      const Reference& ref,
                      const service::QueryResponse& response) {
  EXPECT_EQ(response.degraded(), response.metrics.pages_skipped > 0);
  ExpectGenuine(points, ref.query, response.neighbors);
  if (!response.degraded()) {
    EXPECT_EQ(RidSet(response.neighbors), ref.knn);
  } else {
    EXPECT_LE(response.neighbors.size(), kK);
  }
  return response.degraded();
}

/// Checks one range response: exact when complete, a flagged subset of
/// the reference answer set when degraded. Returns whether degraded.
bool CheckRangeResponse(const std::vector<geom::Vec>& points,
                        const Reference& ref,
                        const service::QueryResponse& response) {
  EXPECT_EQ(response.degraded(), response.metrics.pages_skipped > 0);
  ExpectGenuine(points, ref.query, response.neighbors);
  const auto rids = RidSet(response.neighbors);
  if (!response.degraded()) {
    EXPECT_EQ(rids, ref.in_radius);
  } else {
    EXPECT_TRUE(std::includes(ref.in_radius.begin(), ref.in_radius.end(),
                              rids.begin(), rids.end()))
        << "degraded range answer is not a subset of the reference set";
  }
  return response.degraded();
}

void RunSeed(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  const std::string base =
      TempPath("chaos_base_" + std::to_string(seed) + ".bwpf");
  const std::string wal =
      TempPath("chaos_wal_" + std::to_string(seed) + ".bwwal");
  const auto points =
      testing::MakeClusteredPoints(kNumPoints, kDim, 6, seed * 7919 + 3);
  const auto refs = MakeReferences(points, seed + 101);

  FaultInjector injector;
  StoreOptions store_options;
  store_options.injector = &injector;
  store_options.read_retry.max_attempts = 4;
  store_options.read_retry.backoff_us = 20;
  store_options.read_retry.max_backoff_us = 200;
  store_options.read_retry.jitter_seed = seed;
  core::IndexBuildOptions build;
  build.am = "rtree";
  build.page_bytes = kPageBytes;
  auto built = core::BuildDurableIndex(points, build, base, wal, store_options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  core::DurableIndex* index = built->get();
  DiskPageFile* disk = index->store().disk();
  const size_t page_count = disk->page_count();
  ASSERT_GE(page_count, 8u);

  ServiceOptions options;
  options.num_workers = 3;
  options.queue_capacity = 64;
  options.overflow = OverflowPolicy::kBlock;
  options.worker_pool_pages = 4;  // small pool: quarantine gate on every walk.
  options.io_delay_us = 30;       // gives stream deadlines something to cut.
  options.fault_budget = page_count + 8;  // never fail a query outright.
  QueryService service(index, options);

  std::atomic<uint64_t> degraded_seen{0};
  std::atomic<uint64_t> skipped_seen{0};

  auto run_query_round = [&](bool expect_exact) {
    for (const Reference& ref : refs) {
      auto knn = service.Knn(ref.query, kK);
      ASSERT_TRUE(knn.ok()) << knn.status().ToString();
      if (CheckKnnResponse(points, ref, *knn)) {
        degraded_seen.fetch_add(1);
        skipped_seen.fetch_add(knn->metrics.pages_skipped);
        EXPECT_FALSE(expect_exact);
      }
      auto range_future = service.SubmitRange(ref.query, ref.radius);
      ASSERT_TRUE(range_future.ok()) << range_future.status().ToString();
      auto range = range_future->get();
      ASSERT_TRUE(range.ok()) << range.status().ToString();
      if (CheckRangeResponse(points, ref, *range)) {
        degraded_seen.fetch_add(1);
        skipped_seen.fetch_add(range->metrics.pages_skipped);
        EXPECT_FALSE(expect_exact);
      }
    }
  };

  // --- Phase 1: fault-free baseline — every answer exact. ---------------
  run_query_round(/*expect_exact=*/true);

  // --- Phase 2: transient read faults are absorbed by retry. ------------
  {
    FaultInjector::ReadFaultPlan plan;
    plan.transient_every_n = 5;
    plan.transient_burst = 2;  // < max_attempts, so every burst is absorbed.
    injector.ArmReads(plan);
    storage::ScrubReport report;
    ASSERT_TRUE(disk->Scrub(&report).ok());
    injector.DisarmReads();
    EXPECT_EQ(report.frames_quarantined, 0u);
    EXPECT_EQ(report.frames_unreadable, 0u);
    EXPECT_GT(disk->read_retries(), 0u);
    EXPECT_EQ(disk->health().quarantined_count(), 0u);
    run_query_round(/*expect_exact=*/true);
  }

  // --- Phase 3: deterministic rot -> quarantine -> degraded serving. ----
  {
    Rng rng(seed ^ 0x0513);
    std::set<pages::PageId> rotten;
    while (rotten.size() < 3) {
      rotten.insert(static_cast<pages::PageId>(rng.NextBelow(page_count)));
    }
    for (const pages::PageId id : rotten) FlipByteAt(base, FrameRotOffset(id));
    storage::ScrubReport report;
    ASSERT_TRUE(disk->Scrub(&report).ok());
    EXPECT_EQ(report.frames_quarantined, rotten.size());
    EXPECT_EQ(disk->health().quarantined_count(), rotten.size());
    run_query_round(/*expect_exact=*/false);
  }

  // --- Phase 4: on-demand repair heals from memory; exact again. --------
  {
    storage::DurableStore::RepairReport report;
    ASSERT_TRUE(index->store().RepairQuarantined(&report).ok());
    EXPECT_EQ(report.repaired_from_memory, 3u);
    EXPECT_EQ(report.unrepaired, 0u);
    EXPECT_EQ(disk->health().quarantined_count(), 0u);
    run_query_round(/*expect_exact=*/true);
  }

  // --- Phase 5: concurrent soak — chaos vs queries vs repair. -----------
  {
    std::atomic<bool> stop{false};
    std::thread chaos([&] {
      Rng rng(seed ^ 0xC4A05u);
      for (int round = 0; round < 12; ++round) {
        FaultInjector::ReadFaultPlan plan;
        plan.transient_every_n = 4;
        plan.transient_burst = 2;
        plan.flip_every_n = 9;  // read-path rot: quarantines clean frames.
        plan.delay_every_n = 6;
        plan.delay_us = 100;
        injector.ArmReads(plan);
        for (int i = 0; i < 2; ++i) {
          FlipByteAt(base, FrameRotOffset(static_cast<pages::PageId>(
                               rng.NextBelow(page_count))));
        }
        (void)disk->Scrub(nullptr);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        if (round % 2 == 1) {
          (void)index->store().RepairQuarantined(nullptr);
        }
      }
      injector.DisarmReads();
      stop.store(true);
    });

    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
      clients.emplace_back([&, t] {
        size_t iter = 0;
        while (!stop.load()) {
          const Reference& ref = refs[(t + iter) % refs.size()];
          auto knn = service.Knn(ref.query, kK);
          ASSERT_TRUE(knn.ok()) << knn.status().ToString();
          if (CheckKnnResponse(points, ref, *knn)) {
            degraded_seen.fetch_add(1);
            skipped_seen.fetch_add(knn->metrics.pages_skipped);
          }
          if (iter % 3 == 0) {
            auto range_future = service.SubmitRange(ref.query, ref.radius);
            ASSERT_TRUE(range_future.ok());
            auto range = range_future->get();
            ASSERT_TRUE(range.ok()) << range.status().ToString();
            if (CheckRangeResponse(points, ref, *range)) {
              degraded_seen.fetch_add(1);
              skipped_seen.fetch_add(range->metrics.pages_skipped);
            }
          }
          if (iter % 5 == 0) {
            // Deadline stream: the I/O watchdog may cut it off mid-read;
            // whatever streamed out must still be genuine and ascending.
            StreamOptions stream;
            stream.max_results = 25;
            stream.deadline_us = 200;
            auto stream_future = service.SubmitStream(ref.query, stream);
            ASSERT_TRUE(stream_future.ok());
            auto streamed = stream_future->get();
            ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
            ExpectGenuine(points, ref.query, streamed->neighbors);
            if (streamed->degraded()) {
              degraded_seen.fetch_add(1);
              skipped_seen.fetch_add(streamed->metrics.pages_skipped);
            }
          }
          ++iter;
        }
      });
    }
    chaos.join();
    for (auto& client : clients) client.join();
  }

  // --- Quiesce: every quarantined page is eventually repaired. ----------
  for (int attempt = 0;
       attempt < 10 && disk->health().quarantined_count() > 0; ++attempt) {
    ASSERT_TRUE(disk->Scrub(nullptr).ok());
    ASSERT_TRUE(index->store().RepairQuarantined(nullptr).ok());
  }
  EXPECT_EQ(disk->health().quarantined_count(), 0u);
  run_query_round(/*expect_exact=*/true);

  // --- Metrics must be consistent with what the queries observed. -------
  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.completed, snap.submitted);
  EXPECT_EQ(snap.degraded_responses, degraded_seen.load());
  EXPECT_EQ(snap.pages_skipped, skipped_seen.load());
  EXPECT_LE(snap.watchdog_expirations, snap.truncated_streams);
  EXPECT_EQ(snap.store_read_retries, disk->read_retries());
  EXPECT_GT(snap.store_read_retries, 0u);
  EXPECT_EQ(snap.store_pages_quarantined, 0u);
  EXPECT_EQ(snap.store_quarantines_total, disk->health().total_quarantined());
  EXPECT_EQ(snap.store_repairs_total, snap.store_quarantines_total)
      << "lifetime repairs must balance lifetime quarantines once quiesced";
  EXPECT_GE(snap.store_quarantines_total, 3u);  // phase 3's rot alone.

  std::remove(base.c_str());
  std::remove(wal.c_str());
}

TEST(ChaosSoakTest, SeededSweep) {
  int seeds = 4;
  if (const char* env = std::getenv("BW_CHAOS_SEEDS")) {
    seeds = std::max(1, std::atoi(env));
  }
  for (int seed = 1; seed <= seeds; ++seed) {
    RunSeed(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// The same soak with batched frame reads forced onto the thread-pool
// engine: the one-tick-per-span injector contract (File::ReadBatch)
// must keep the chaos schedule and every quarantine/repair/metrics
// invariant identical to the sync engine's.
TEST(ChaosSoakTest, ThreadPoolEngineSeed) {
  ::setenv("BW_IO_ENGINE", "threads", 1);
  RunSeed(1001);
  ::unsetenv("BW_IO_ENGINE");
}

}  // namespace
}  // namespace bw
