// Tests for the Blobworld application substrate: color space, histogram
// layout, synthetic images, segmentation, dataset round-trips, the
// quadratic-form ranker and the end-to-end pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <set>

#include "blobworld/color.h"
#include "blobworld/dataset.h"
#include "blobworld/pipeline.h"
#include "blobworld/ranker.h"
#include "blobworld/segmentation.h"
#include "blobworld/synthetic.h"

namespace bw::blobworld {
namespace {

// ---------------------------------------------------------------------------
// Color
// ---------------------------------------------------------------------------

TEST(ColorTest, RgbToLabKnownAnchors) {
  // White: L ~ 100, a ~ b ~ 0. Black: L ~ 0.
  const LabColor white = RgbToLab(1.0f, 1.0f, 1.0f);
  EXPECT_NEAR(white.l, 100.0, 0.5);
  EXPECT_NEAR(white.a, 0.0, 0.5);
  EXPECT_NEAR(white.b, 0.0, 0.5);
  const LabColor black = RgbToLab(0.0f, 0.0f, 0.0f);
  EXPECT_NEAR(black.l, 0.0, 0.5);
  // Red has positive a; blue has negative b.
  EXPECT_GT(RgbToLab(1.0f, 0.0f, 0.0f).a, 40.0);
  EXPECT_LT(RgbToLab(0.0f, 0.0f, 1.0f).b, -40.0);
}

TEST(HistogramLayoutTest, Has218Bins) {
  HistogramLayout layout;
  EXPECT_EQ(layout.num_bins(), 218u);
  EXPECT_EQ(layout.bin_colors().size(), 218u);
}

TEST(HistogramLayoutTest, AccumulatedMassIsConserved) {
  HistogramLayout layout;
  std::vector<double> histogram(layout.num_bins(), 0.0);
  Rng rng(1);
  double mass = 0.0;
  for (int i = 0; i < 100; ++i) {
    LabColor c{float(rng.Uniform(0, 100)), float(rng.Uniform(-60, 60)),
               float(rng.Uniform(-60, 60))};
    layout.Accumulate(c, 1.0, 7.0, &histogram);
    mass += 1.0;
  }
  double total = 0.0;
  for (double v : histogram) total += v;
  EXPECT_NEAR(total, mass, 1e-9);
}

TEST(HistogramLayoutTest, AchromaticColorsRouteToExtraBins) {
  HistogramLayout layout;
  std::vector<double> histogram(layout.num_bins(), 0.0);
  layout.Accumulate(LabColor{1.0f, 0.0f, 0.0f}, 1.0, 7.0, &histogram);
  layout.Accumulate(LabColor{99.0f, 0.0f, 0.0f}, 2.0, 7.0, &histogram);
  EXPECT_DOUBLE_EQ(histogram[216], 1.0);  // near-black
  EXPECT_DOUBLE_EQ(histogram[217], 2.0);  // near-white
}

TEST(HistogramLayoutTest, SimilarColorsProduceSimilarHistograms) {
  HistogramLayout layout;
  auto histogram_of = [&](float l, float a, float b) {
    std::vector<double> h(layout.num_bins(), 0.0);
    layout.Accumulate(LabColor{l, a, b}, 1.0, 7.0, &h);
    return HistogramLayout::Normalize(h);
  };
  const geom::Vec base = histogram_of(50, 10, 10);
  const geom::Vec near = histogram_of(52, 11, 9);
  const geom::Vec far = histogram_of(80, -40, -40);
  EXPECT_LT(base.DistanceTo(near), base.DistanceTo(far));
}

TEST(HistogramLayoutTest, NormalizeHandlesZeroMass) {
  std::vector<double> empty(218, 0.0);
  const geom::Vec v = HistogramLayout::Normalize(empty);
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Synthetic model and images
// ---------------------------------------------------------------------------

TEST(LatentModelTest, SamplesStayInGamut) {
  LatentModel model(20, 5);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const BlobLatent latent = model.Sample(rng);
    EXPECT_GE(latent.color.l, 2.0f);
    EXPECT_LE(latent.color.l, 98.0f);
    EXPECT_GE(latent.spread, 6.0f);
    EXPECT_LE(latent.spread, 34.0f);
    EXPECT_GE(latent.texture, 0.0f);
    EXPECT_LE(latent.texture, 1.0f);
  }
}

TEST(LatentModelTest, ZipfSkewsClusterPopularity) {
  // With a strong skew, samples concentrate on early clusters.
  LatentModel uniform(50, 5, 1.5, 0.0);
  LatentModel zipf(50, 5, 1.5, 1.5);
  (void)uniform;
  Rng rng(3);
  // Measure by histogram expectation: draw colors; the zipf model's draws
  // should repeat a small set of colors much more often.
  std::set<int> zipf_colors;
  std::set<int> uniform_colors;
  Rng rng2(3);
  for (int i = 0; i < 300; ++i) {
    zipf_colors.insert(int(zipf.Sample(rng).color.l * 10));
    uniform_colors.insert(int(uniform.Sample(rng2).color.l * 10));
  }
  EXPECT_LT(zipf_colors.size(), uniform_colors.size());
}

TEST(LatentModelTest, ExpectedHistogramIsUnitMassAndPeaked) {
  LatentModel model(10, 7);
  HistogramLayout layout;
  Rng rng(4);
  const BlobLatent latent = model.Sample(rng);
  const geom::Vec h = model.ExpectedHistogram(latent, layout);
  EXPECT_NEAR(h.Sum(), 1.0, 1e-5);
  // The bin nearest the latent color should carry above-average mass.
  const size_t peak = layout.NearestLatticeBin(latent.color);
  EXPECT_GT(h[peak], 1.0 / 218.0);
}

TEST(ImageGeneratorTest, RendersRequestedGeometry) {
  LatentModel model(10, 11);
  ImageParams params;
  params.width = 32;
  params.height = 24;
  ImageGenerator generator(&model, params);
  Rng rng(5);
  size_t regions = 0;
  const Image image = generator.Generate(rng, &regions);
  EXPECT_EQ(image.width(), 32u);
  EXPECT_EQ(image.height(), 24u);
  EXPECT_GE(regions, params.min_objects + 1);
  EXPECT_LE(regions, params.max_objects + 1);
  // Pixels carry plausible Lab values and contrast in [0, 1].
  for (size_t y = 0; y < image.height(); ++y) {
    for (size_t x = 0; x < image.width(); ++x) {
      EXPECT_GE(image.color(x, y).l, 0.0f);
      EXPECT_LE(image.color(x, y).l, 100.0f);
      EXPECT_GE(image.contrast(x, y), 0.0f);
      EXPECT_LE(image.contrast(x, y), 1.0f);
    }
  }
}

// ---------------------------------------------------------------------------
// Segmentation
// ---------------------------------------------------------------------------

TEST(SegmenterTest, RegionsPartitionKeptPixels) {
  LatentModel model(10, 13);
  ImageParams params;
  params.width = 48;
  params.height = 48;
  ImageGenerator generator(&model, params);
  Rng rng(6);
  const Image image = generator.Generate(rng);

  Segmenter segmenter;
  const auto regions = segmenter.Segment(image);
  ASSERT_GE(regions.size(), 1u);
  std::set<uint32_t> seen;
  for (const auto& region : regions) {
    EXPECT_GE(region.pixels.size(),
              size_t(0.02 * 48 * 48));  // min_region_fraction
    for (uint32_t p : region.pixels) {
      EXPECT_LT(p, 48u * 48u);
      EXPECT_TRUE(seen.insert(p).second) << "pixel in two regions";
    }
  }
  // Largest-first ordering.
  for (size_t i = 1; i < regions.size(); ++i) {
    EXPECT_GE(regions[i - 1].pixels.size(), regions[i].pixels.size());
  }
}

TEST(SegmenterTest, RegionsAreConnected) {
  LatentModel model(8, 17);
  ImageParams params;
  params.width = 40;
  params.height = 40;
  ImageGenerator generator(&model, params);
  Rng rng(7);
  const Image image = generator.Generate(rng);
  Segmenter segmenter;
  for (const auto& region : segmenter.Segment(image)) {
    // BFS from the first pixel must reach every pixel of the region.
    std::set<uint32_t> members(region.pixels.begin(), region.pixels.end());
    std::set<uint32_t> reached;
    std::vector<uint32_t> queue = {region.pixels[0]};
    reached.insert(region.pixels[0]);
    while (!queue.empty()) {
      uint32_t p = queue.back();
      queue.pop_back();
      const uint32_t w = 40;
      const uint32_t x = p % w;
      const uint32_t y = p / w;
      for (uint32_t q : {x > 0 ? p - 1 : p, x + 1 < w ? p + 1 : p,
                         y > 0 ? p - w : p, p + w}) {
        if (q != p && members.count(q) && !reached.count(q)) {
          reached.insert(q);
          queue.push_back(q);
        }
      }
    }
    EXPECT_EQ(reached.size(), members.size());
  }
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(DatasetTest, DirectModeShapes) {
  DatasetParams params;
  params.num_images = 100;
  const BlobDataset dataset = GenerateDatasetDirect(params);
  EXPECT_EQ(dataset.num_images(), 100u);
  EXPECT_GE(dataset.num_blobs(), 200u);  // >= 2 blobs per image
  for (const auto& blob : dataset.blobs()) {
    EXPECT_EQ(blob.histogram.dim(), 218u);
    EXPECT_NEAR(blob.histogram.Sum(), 1.0, 1e-4);
    EXPECT_LT(blob.image, 100u);
  }
}

TEST(DatasetTest, FullPipelineProducesBlobs) {
  DatasetParams params;
  params.num_images = 6;
  params.image.width = 32;
  params.image.height = 32;
  const BlobDataset dataset = GenerateDataset(params);
  EXPECT_EQ(dataset.num_images(), 6u);
  EXPECT_GE(dataset.num_blobs(), 6u);  // at least one region per image
  for (const auto& blob : dataset.blobs()) {
    EXPECT_NEAR(blob.histogram.Sum(), 1.0, 1e-4);
    EXPECT_GE(blob.size, 0.0f);
    EXPECT_LE(blob.size, 1.0f);
    EXPECT_GE(blob.x, 0.0f);
    EXPECT_LE(blob.x, 1.0f);
  }
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  DatasetParams params;
  params.num_images = 30;
  const BlobDataset original = GenerateDatasetDirect(params);
  const std::string path = ::testing::TempDir() + "/blobs.bin";
  ASSERT_TRUE(original.SaveTo(path).ok());
  auto loaded = BlobDataset::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_blobs(), original.num_blobs());
  EXPECT_EQ(loaded->num_images(), original.num_images());
  for (size_t i = 0; i < original.num_blobs(); ++i) {
    EXPECT_EQ(loaded->blob(i).histogram, original.blob(i).histogram);
    EXPECT_EQ(loaded->blob(i).image, original.blob(i).image);
    EXPECT_FLOAT_EQ(loaded->blob(i).texture, original.blob(i).texture);
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a dataset", f);
  std::fclose(f);
  EXPECT_FALSE(BlobDataset::LoadFrom(path).ok());
  EXPECT_FALSE(BlobDataset::LoadFrom("/nonexistent/x.bin").ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, BlobsOfImageInvertsMapping) {
  DatasetParams params;
  params.num_images = 20;
  const BlobDataset dataset = GenerateDatasetDirect(params);
  size_t total = 0;
  for (ImageId img = 0; img < 20; ++img) {
    for (uint32_t blob : dataset.BlobsOfImage(img)) {
      EXPECT_EQ(dataset.blob(blob).image, img);
    }
    total += dataset.BlobsOfImage(img).size();
  }
  EXPECT_EQ(total, dataset.num_blobs());
}

// ---------------------------------------------------------------------------
// Ranker + pipeline
// ---------------------------------------------------------------------------

TEST(RankerTest, QueryBlobRanksItsOwnImageFirst) {
  DatasetParams params;
  params.num_images = 150;
  const BlobDataset dataset = GenerateDatasetDirect(params);
  auto ranker = FullRanker::Create(&dataset);
  ASSERT_TRUE(ranker.ok());
  for (uint32_t blob : {0u, 17u, 101u}) {
    const auto ranked = ranker->RankAllImages(blob, 5);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked[0].image, dataset.blob(blob).image);
    EXPECT_NEAR(ranked[0].score, 0.0, 1e-9);
    // Scores ascending.
    for (size_t i = 1; i < ranked.size(); ++i) {
      EXPECT_GE(ranked[i].score, ranked[i - 1].score);
    }
  }
}

TEST(RankerTest, CandidateRankingIsConsistentWithFullRanking) {
  DatasetParams params;
  params.num_images = 100;
  const BlobDataset dataset = GenerateDatasetDirect(params);
  auto ranker = FullRanker::Create(&dataset);
  ASSERT_TRUE(ranker.ok());
  // Restricting to ALL blobs must reproduce the full ranking.
  std::vector<uint32_t> all(dataset.num_blobs());
  std::iota(all.begin(), all.end(), 0);
  const auto full = ranker->RankAllImages(3, 10);
  const auto restricted = ranker->RankCandidates(3, all, 10);
  ASSERT_EQ(full.size(), restricted.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].image, restricted[i].image);
  }
}

TEST(RankerTest, WeightsChangeTheRanking) {
  DatasetParams params;
  params.num_images = 120;
  const BlobDataset dataset = GenerateDatasetDirect(params);
  auto ranker = FullRanker::Create(&dataset);
  ASSERT_TRUE(ranker.ok());
  QueryWeights color_only;
  QueryWeights with_texture;
  with_texture.texture = 50.0;
  const auto a = ranker->RankAllImages(5, 20, color_only);
  const auto b = ranker->RankAllImages(5, 20, with_texture);
  bool differs = false;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i].image != b[i].image) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RecallTest, Bounds) {
  std::vector<RankedImage> truth = {{1, 0.1, 0}, {2, 0.2, 0}, {3, 0.3, 0}};
  EXPECT_DOUBLE_EQ(RecallAgainst(truth, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(RecallAgainst(truth, {1, 9}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAgainst(truth, {}), 0.0);
}

TEST(PipelineTest, EndToEndQueryRecall) {
  DatasetParams params;
  params.num_images = 400;
  const BlobDataset dataset = GenerateDatasetDirect(params);

  PipelineOptions options;
  options.reduced_dim = 5;
  options.am_candidates = 200;
  options.answer_size = 20;
  options.index.am = "xjb";
  auto pipeline = Pipeline::Build(&dataset, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  const auto foci = SampleQueryBlobs(dataset, 10, 1);
  double recall_sum = 0.0;
  for (uint32_t focus : foci) {
    auto recall = (*pipeline)->QueryRecall(focus);
    ASSERT_TRUE(recall.ok());
    recall_sum += *recall;
  }
  // The AM's 200 candidates over 5-D vectors must recover the bulk of
  // the full query's top-20 images.
  EXPECT_GT(recall_sum / 10.0, 0.6);
}

TEST(PipelineTest, QueryValidatesBlobId) {
  DatasetParams params;
  params.num_images = 50;
  const BlobDataset dataset = GenerateDatasetDirect(params);
  PipelineOptions options;
  auto pipeline = Pipeline::Build(&dataset, options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_FALSE((*pipeline)->Query(10000000).ok());
}

TEST(PipelineTest, SampleQueryBlobsDistinct) {
  DatasetParams params;
  params.num_images = 40;
  const BlobDataset dataset = GenerateDatasetDirect(params);
  const auto foci = SampleQueryBlobs(dataset, 50, 3);
  std::set<uint32_t> distinct(foci.begin(), foci.end());
  EXPECT_EQ(distinct.size(), foci.size());
  for (uint32_t f : foci) EXPECT_LT(f, dataset.num_blobs());
}

}  // namespace
}  // namespace bw::blobworld
