// Unit tests for the GiST framework itself: node layout, tree structure
// maintenance under inserts/splits/deletes, validation, search cursors
// and the best-first vs DFS k-NN equivalence.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "pages/page_file.h"
#include "am/bulk_load.h"
#include "am/rtree.h"
#include "gist/node.h"
#include "gist/tree.h"
#include "tests/test_helpers.h"

namespace bw::gist {
namespace {

std::unique_ptr<Tree> MakeRtree(pages::PageFile* file, size_t dim = 3) {
  return std::make_unique<Tree>(file,
                                std::make_unique<am::RtreeExtension>(dim));
}

TEST(NodeViewTest, FormatAndAppend) {
  pages::Page page(1024);
  NodeView node(&page);
  node.Format(2);
  EXPECT_TRUE(node.IsFormatted());
  EXPECT_EQ(node.level(), 2);
  EXPECT_FALSE(node.IsLeaf());

  Bytes pred = {1, 2, 3, 4};
  ASSERT_TRUE(node.Append(pred, 0xABCDEF).ok());
  ASSERT_EQ(node.entry_count(), 1u);
  EntryView e = node.entry(0);
  EXPECT_EQ(e.payload, 0xABCDEFu);
  ASSERT_EQ(e.predicate.size(), 4u);
  EXPECT_EQ(e.predicate[2], 3);
}

TEST(NodeViewTest, UpdatePredicateKeepsPayload) {
  pages::Page page(1024);
  NodeView node(&page);
  node.Format(0);
  ASSERT_TRUE(node.Append(Bytes{9, 9}, 77).ok());
  ASSERT_TRUE(node.UpdatePredicate(0, Bytes{1, 2, 3}).ok());
  EntryView e = node.entry(0);
  EXPECT_EQ(e.payload, 77u);
  EXPECT_EQ(e.predicate.size(), 3u);
}

TEST(NodeViewTest, HasRoomForAccountsForPayload) {
  pages::Page page(512);
  NodeView node(&page);
  node.Format(0);
  size_t appended = 0;
  Bytes pred(20, 1);
  while (node.HasRoomFor(pred.size())) {
    ASSERT_TRUE(node.Append(pred, appended).ok());
    ++appended;
  }
  // One more append must genuinely fail.
  EXPECT_FALSE(node.Append(pred, 999).ok());
  EXPECT_GT(appended, 10u);
}

TEST(TreeTest, EmptyTreeBehaves) {
  pages::PageFile file(4096);
  auto tree = MakeRtree(&file);
  EXPECT_TRUE(tree->empty());
  EXPECT_EQ(tree->height(), 0);
  EXPECT_TRUE(tree->Validate().ok());
  auto knn = tree->KnnSearch(geom::Vec(3), 5, nullptr);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
  EXPECT_EQ(tree->Delete(geom::Vec(3), 0).code(), StatusCode::kNotFound);
}

TEST(TreeTest, SingleInsertMakesLeafRoot) {
  pages::PageFile file(4096);
  auto tree = MakeRtree(&file);
  ASSERT_TRUE(tree->Insert(geom::Vec{1.0f, 2.0f, 3.0f}, 42).ok());
  EXPECT_EQ(tree->height(), 1);
  EXPECT_EQ(tree->size(), 1u);
  auto knn = tree->KnnSearch(geom::Vec{1.0f, 2.0f, 3.0f}, 1, nullptr);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 1u);
  EXPECT_EQ((*knn)[0].rid, 42u);
  EXPECT_DOUBLE_EQ((*knn)[0].distance, 0.0);
}

TEST(TreeTest, DimensionMismatchRejected) {
  pages::PageFile file(4096);
  auto tree = MakeRtree(&file, 3);
  EXPECT_EQ(tree->Insert(geom::Vec(4), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(TreeTest, GrowsInHeightUnderInserts) {
  pages::PageFile file(1024);  // small pages force early splits
  auto tree = MakeRtree(&file, 3);
  const auto points = testing::MakeUniformPoints(2000, 3, 5);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree->Insert(points[i], i).ok());
  }
  EXPECT_GE(tree->height(), 3);
  EXPECT_EQ(tree->size(), points.size());
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();

  // Every point findable by exact-match range search.
  for (size_t i = 0; i < points.size(); i += 97) {
    auto hits = tree->RangeSearch(points[i], 0.0, nullptr);
    ASSERT_TRUE(hits.ok());
    bool found = false;
    for (const auto& n : *hits) found |= (n.rid == i);
    EXPECT_TRUE(found) << i;
  }
}

TEST(TreeTest, DuplicatePointsDistinctRids) {
  pages::PageFile file(4096);
  auto tree = MakeRtree(&file, 3);
  geom::Vec p{1.0f, 1.0f, 1.0f};
  for (Rid rid = 0; rid < 500; ++rid) {
    ASSERT_TRUE(tree->Insert(p, rid).ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  auto hits = tree->RangeSearch(p, 0.0, nullptr);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 500u);
  // Delete one specific rid among identical keys.
  ASSERT_TRUE(tree->Delete(p, 250).ok());
  hits = tree->RangeSearch(p, 0.0, nullptr);
  EXPECT_EQ(hits->size(), 499u);
}

TEST(TreeTest, DeleteEverythingEmptiesTree) {
  pages::PageFile file(2048);
  auto tree = MakeRtree(&file, 2);
  const auto points = testing::MakeUniformPoints(300, 2, 9);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree->Insert(points[i], i).ok());
  }
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree->Delete(points[i], i).ok()) << i;
  }
  EXPECT_EQ(tree->size(), 0u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  auto knn = tree->KnnSearch(points[0], 5, nullptr);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
}

TEST(TreeTest, RootShrinksAfterMassDeletes) {
  pages::PageFile file(1024);
  auto tree = MakeRtree(&file, 2);
  const auto points = testing::MakeUniformPoints(1000, 2, 13);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree->Insert(points[i], i).ok());
  }
  const int tall = tree->height();
  EXPECT_GE(tall, 3);
  for (size_t i = 0; i + 3 < points.size(); ++i) {
    ASSERT_TRUE(tree->Delete(points[i], i).ok());
  }
  // With 3 points left, condensation must have collapsed the tree.
  EXPECT_LT(tree->height(), tall);
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->size(), 3u);
}

TEST(TreeTest, BestFirstAndDfsKnnAgree) {
  pages::PageFile file(2048);
  auto tree = MakeRtree(&file, 4);
  const auto points = testing::MakeClusteredPoints(3000, 4, 10, 17);
  std::vector<Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);
  ASSERT_TRUE(am::StrBulkLoad(tree.get(), points, rids).ok());

  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Vec& q = points[rng.NextBelow(points.size())];
    const size_t k = 1 + rng.NextBelow(40);
    auto a = tree->KnnSearch(q, k, nullptr);
    auto b = tree->KnnSearchDfs(q, k, nullptr);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-9);
    }
  }
}

TEST(TreeTest, DfsNeverAccessesFewerNodesThanBestFirst) {
  pages::PageFile file(2048);
  auto tree = MakeRtree(&file, 4);
  const auto points = testing::MakeClusteredPoints(4000, 4, 8, 23);
  std::vector<Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);
  ASSERT_TRUE(am::StrBulkLoad(tree.get(), points, rids).ok());

  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const geom::Vec& q = points[rng.NextBelow(points.size())];
    TraversalStats bf, dfs;
    ASSERT_TRUE(tree->KnnSearch(q, 50, &bf).ok());
    ASSERT_TRUE(tree->KnnSearchDfs(q, 50, &dfs).ok());
    EXPECT_GE(dfs.TotalAccesses(), bf.TotalAccesses());
  }
}

TEST(TreeTest, ShapeReportsPerLevelStructure) {
  pages::PageFile file(2048);
  auto tree = MakeRtree(&file, 3);
  const auto points = testing::MakeUniformPoints(5000, 3, 29);
  std::vector<Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);
  ASSERT_TRUE(am::StrBulkLoad(tree.get(), points, rids).ok());

  TreeShape shape = tree->Shape();
  EXPECT_EQ(shape.height, tree->height());
  EXPECT_EQ(shape.LeafEntries(), points.size());
  EXPECT_EQ(shape.nodes_per_level.back(), 1u);  // single root.
  // Level sizes strictly decrease going up.
  for (size_t l = 1; l < shape.nodes_per_level.size(); ++l) {
    EXPECT_LT(shape.nodes_per_level[l], shape.nodes_per_level[l - 1]);
  }
  // Bulk-loaded leaves near target utilization.
  EXPECT_GT(shape.avg_utilization_per_level[0], 0.75);
}

TEST(TreeTest, LeafIterationCoversAllRids) {
  pages::PageFile file(2048);
  auto tree = MakeRtree(&file, 3);
  const auto points = testing::MakeUniformPoints(1500, 3, 31);
  std::vector<Rid> rids(points.size());
  std::iota(rids.begin(), rids.end(), 0);
  ASSERT_TRUE(am::StrBulkLoad(tree.get(), points, rids).ok());

  std::set<Rid> seen;
  tree->ForEachNode([&](pages::PageId id, const NodeView& node) {
    if (!node.IsLeaf()) return;
    for (Rid rid : tree->LeafRids(id)) {
      EXPECT_TRUE(seen.insert(rid).second) << "duplicate rid " << rid;
    }
  });
  EXPECT_EQ(seen.size(), points.size());
}

TEST(TreeTest, RangeSearchRadiusZeroFindsOnlyExact) {
  pages::PageFile file(2048);
  auto tree = MakeRtree(&file, 2);
  ASSERT_TRUE(tree->Insert(geom::Vec{0.0f, 0.0f}, 1).ok());
  ASSERT_TRUE(tree->Insert(geom::Vec{0.5f, 0.0f}, 2).ok());
  auto hits = tree->RangeSearch(geom::Vec{0.0f, 0.0f}, 0.0, nullptr);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].rid, 1u);
}

TEST(TreeTest, KnnKLargerThanTreeReturnsAll) {
  pages::PageFile file(2048);
  auto tree = MakeRtree(&file, 2);
  for (Rid i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree->Insert(geom::Vec{float(i), 0.0f}, i).ok());
  }
  auto knn = tree->KnnSearch(geom::Vec{0.0f, 0.0f}, 100, nullptr);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), 10u);
}

}  // namespace
}  // namespace bw::gist
