// Tests for the chaos proxy (src/net/chaos_proxy.h) and for replica
// catch-up running over the real wire through injected faults. The
// proxy's fault model is exercised one knob at a time — clean relay,
// reset-at-accept, truncate-then-close, one-way blackhole — asserting
// that every fault surfaces as a clean per-connection error (never a
// crash, never a poisoned server), and then the flagship: a stale
// replica converges onto a healthy sibling through a proxy injecting
// latency and cut frames, carried by RemoteShardBackend's bounded
// retries. This file is part of the ASan/UBSan and TSan gates.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/durable_index.h"
#include "net/chaos_proxy.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/shard_backend.h"
#include "tests/test_helpers.h"

namespace bw::net {
namespace {

constexpr size_t kDim = 4;

std::string TempDir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "bw_chaosnet_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::IndexBuildOptions TestBuild() {
  core::IndexBuildOptions build;
  build.am = "xjb";
  build.xjb_x = 0;
  return build;
}

geom::Vec MakePoint(float base) {
  geom::Vec v(kDim);
  for (size_t d = 0; d < kDim; ++d) v[d] = base + 0.25f * d;
  return v;
}

/// One durable write-enabled replica served over the wire.
struct WireReplica {
  std::unique_ptr<core::DurableIndex> index;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<Server> server;
};

WireReplica MakeWireReplica(const std::vector<geom::Vec>& points,
                            const std::string& stem) {
  std::vector<gist::Rid> rids(points.size());
  for (size_t i = 0; i < rids.size(); ++i) rids[i] = i;
  WireReplica r;
  auto index = shard::BuildShardIndex(points, rids, TestBuild(),
                                      stem + ".idx", stem + ".wal");
  BW_CHECK_MSG(index.ok(), index.status().ToString());
  r.index = std::move(*index);
  service::ServiceOptions sopts;
  sopts.write.enabled = true;
  r.service = std::make_unique<service::QueryService>(r.index.get(), sopts);
  r.server = std::make_unique<Server>(r.service.get(), ServerOptions());
  BW_CHECK_OK(r.server->Start());
  return r;
}

ClientOptions ChaosClientOptions() {
  ClientOptions copts;
  copts.io_timeout = std::chrono::milliseconds(2000);  // stalls fail fast.
  return copts;
}

// ---------------------------------------------------------------------------
// Fault model, one knob at a time
// ---------------------------------------------------------------------------

TEST(ChaosProxyTest, CleanRelayIsTransparent) {
  const auto points = testing::MakeClusteredPoints(300, kDim, 4, 41);
  WireReplica replica = MakeWireReplica(points, TempDir("clean") + "/a");

  ChaosProxy proxy;
  ASSERT_TRUE(proxy.Start(0, "127.0.0.1", replica.server->port(),
                          ChaosOptions())
                  .ok());

  auto client = Client::Connect("127.0.0.1", proxy.port(),
                                ChaosClientOptions());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();

  auto through = (*client)->Knn(points[0], 7);
  ASSERT_TRUE(through.ok()) << through.status().ToString();
  auto direct = replica.service->Knn(points[0], 7);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(through->neighbors.size(), direct->neighbors.size());
  for (size_t i = 0; i < direct->neighbors.size(); ++i) {
    EXPECT_EQ(through->neighbors[i].rid, direct->neighbors[i].rid);
    EXPECT_EQ(through->neighbors[i].distance, direct->neighbors[i].distance);
  }

  const ChaosStats stats = proxy.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_GT(stats.bytes_relayed, 0u);
  EXPECT_EQ(stats.resets + stats.delays + stats.truncations +
                stats.blackholes,
            0u);
  proxy.Stop();
}

TEST(ChaosProxyTest, ResetAtAcceptIsACleanConnectFailure) {
  const auto points = testing::MakeClusteredPoints(200, kDim, 3, 43);
  WireReplica replica = MakeWireReplica(points, TempDir("reset") + "/a");

  ChaosOptions chaos;
  chaos.seed = 7;
  chaos.reset_prob = 1.0;
  ChaosProxy proxy;
  ASSERT_TRUE(
      proxy.Start(0, "127.0.0.1", replica.server->port(), chaos).ok());

  auto client = Client::Connect("127.0.0.1", proxy.port(),
                                ChaosClientOptions());
  EXPECT_FALSE(client.ok());  // handshake dies on the reset connection.
  EXPECT_GE(proxy.stats().resets, 1u);

  // The server behind the proxy is untouched: a direct client works.
  auto direct = Client::Connect("127.0.0.1", replica.server->port());
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_TRUE((*direct)->Health().ok());
  proxy.Stop();
}

TEST(ChaosProxyTest, TruncatedFramesAreCleanErrorsNeverACrash) {
  const auto points = testing::MakeClusteredPoints(200, kDim, 3, 47);
  WireReplica replica = MakeWireReplica(points, TempDir("trunc") + "/a");

  ChaosOptions chaos;
  chaos.seed = 11;
  chaos.drop_frame_prob = 1.0;  // every read forwards a prefix, then cuts.
  ChaosProxy proxy;
  ASSERT_TRUE(
      proxy.Start(0, "127.0.0.1", replica.server->port(), chaos).ok());

  for (int attempt = 0; attempt < 4; ++attempt) {
    auto client = Client::Connect("127.0.0.1", proxy.port(),
                                  ChaosClientOptions());
    if (!client.ok()) continue;  // hello already truncated: fine.
    auto response = (*client)->Knn(points[0], 5);
    EXPECT_FALSE(response.ok());  // a cut frame can never decode.
  }
  EXPECT_GE(proxy.stats().truncations, 1u);

  // No poisoned state behind the proxy: direct traffic still serves.
  auto direct = Client::Connect("127.0.0.1", replica.server->port());
  ASSERT_TRUE(direct.ok());
  auto response = (*direct)->Knn(points[0], 5);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->neighbors.size(), 5u);
  proxy.Stop();
}

TEST(ChaosProxyTest, BlackholeIsASilentStallNotAnError) {
  const auto points = testing::MakeClusteredPoints(200, kDim, 3, 53);
  WireReplica replica = MakeWireReplica(points, TempDir("hole") + "/a");

  ChaosOptions chaos;
  chaos.seed = 13;
  chaos.blackhole_prob = 1.0;  // both directions go dark on first read.
  ChaosProxy proxy;
  ASSERT_TRUE(
      proxy.Start(0, "127.0.0.1", replica.server->port(), chaos).ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval tv{0, 500000};  // 500ms: the stall must outlive this.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(proxy.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[] = "anything";
  ASSERT_GT(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL), 0);

  // A one-way partition looks like silence, not an error: recv times
  // out with no bytes and no EOF.
  char buf[64];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_LT(n, 0);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
  EXPECT_GE(proxy.stats().blackholes, 1u);
  ::close(fd);
  proxy.Stop();
}

TEST(ChaosProxyTest, BrownoutWindowDelaysReadsThenLifts) {
  const auto points = testing::MakeClusteredPoints(200, kDim, 3, 61);
  WireReplica replica = MakeWireReplica(points, TempDir("brown") + "/a");

  // A window covering the whole test: every relayed read eats the
  // spike, but every byte still arrives — a brownout is slowness, not
  // loss.
  ChaosOptions browned;
  browned.seed = 17;
  browned.brownout_start_ms = 0;
  browned.brownout_duration_ms = 10 * 60 * 1000;
  browned.brownout_delay_ms = 100;
  ChaosProxy proxy;
  ASSERT_TRUE(
      proxy.Start(0, "127.0.0.1", replica.server->port(), browned).ok());

  const auto start = std::chrono::steady_clock::now();
  auto client = Client::Connect("127.0.0.1", proxy.port(),
                                ChaosClientOptions());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto through = (*client)->Knn(points[3], 6);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(through.ok()) << through.status().ToString();
  auto direct = replica.service->Knn(points[3], 6);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(through->neighbors.size(), direct->neighbors.size());
  for (size_t i = 0; i < direct->neighbors.size(); ++i) {
    EXPECT_EQ(through->neighbors[i].rid, direct->neighbors[i].rid);
    EXPECT_EQ(through->neighbors[i].distance, direct->neighbors[i].distance);
  }
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            100);  // at least one read crossed the browned window.
  EXPECT_GE(proxy.stats().brownout_reads, 1u);
  proxy.Stop();

  // A window that has not opened yet injects nothing: the schedule is
  // purely a function of the clock, never of traffic.
  ChaosOptions pending = browned;
  pending.brownout_start_ms = 10 * 60 * 1000;
  pending.brownout_duration_ms = 1000;
  ChaosProxy calm;
  ASSERT_TRUE(
      calm.Start(0, "127.0.0.1", replica.server->port(), pending).ok());
  auto clean = Client::Connect("127.0.0.1", calm.port(),
                               ChaosClientOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto fast = (*clean)->Knn(points[3], 6);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(fast->neighbors.size(), direct->neighbors.size());
  EXPECT_EQ(calm.stats().brownout_reads, 0u);
  calm.Stop();
}

// ---------------------------------------------------------------------------
// The flagship: remote catch-up converges through injected faults
// ---------------------------------------------------------------------------

TEST(ChaosCatchupTest, WalCatchupConvergesThroughLatencyAndCutFrames) {
  const auto points = testing::MakeClusteredPoints(300, kDim, 4, 59);
  const std::string dir = TempDir("catchup");
  WireReplica source = MakeWireReplica(points, dir + "/src");
  WireReplica target = MakeWireReplica(points, dir + "/dst");

  // The source takes writes the target misses entirely.
  for (int i = 0; i < 10; ++i) {
    auto future = source.service->SubmitInsert(MakePoint(600.0f + i),
                                               9000 + i);
    ASSERT_TRUE(future.ok());
    auto outcome = future->get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }

  // Every byte to the source crosses chaos: frequent added latency,
  // occasional truncate-then-close. The target is reached directly
  // (the fleet's faults are on the catch-up read path here).
  ChaosOptions chaos;
  chaos.seed = 99;
  chaos.delay_prob = 0.4;
  chaos.delay_ms = 1;
  chaos.drop_frame_prob = 0.05;
  ChaosProxy proxy;
  ASSERT_TRUE(
      proxy.Start(0, "127.0.0.1", source.server->port(), chaos).ok());

  shard::RemoteShardBackend src("127.0.0.1", proxy.port(),
                                ChaosClientOptions());
  shard::RemoteShardBackend dst("127.0.0.1", target.server->port(),
                                ChaosClientOptions());
  src.set_retry_policy(shard::RetryPolicy());  // 4 bounded attempts.

  // The same pull-apply-verify loop the router's driver runs, with the
  // round budget absorbing whole-schedule retry failures: a round that
  // dies mid-pull just runs again.
  bool converged = false;
  for (int round = 0; round < 200 && !converged; ++round) {
    auto src_pos = src.CatchupPosition();
    if (!src_pos.ok()) continue;
    auto dst_pos = dst.CatchupPosition();
    ASSERT_TRUE(dst_pos.ok()) << dst_pos.status().ToString();
    if (src_pos->last_tag == dst_pos->last_tag) {
      auto src_sum = src.TreeChecksum();
      if (!src_sum.ok()) continue;
      auto dst_sum = dst.TreeChecksum();
      ASSERT_TRUE(dst_sum.ok());
      ASSERT_EQ(src_sum->tag, dst_sum->tag);
      ASSERT_EQ(src_sum->page_count, dst_sum->page_count);
      ASSERT_EQ(src_sum->crc, dst_sum->crc);
      converged = true;
      break;
    }
    // Tiny pulls: many wire round trips, maximum chaos exposure.
    auto tail = src.ReadWalTail(dst_pos->last_tag, 2, 64u << 10);
    if (!tail.ok()) continue;
    ASSERT_FALSE(tail->snapshot_needed);
    for (const storage::ShippedBatch& batch : tail->batches) {
      ASSERT_TRUE(dst.ApplyWalBatch(batch).ok());
    }
  }
  ASSERT_TRUE(converged) << "catch-up did not converge within the round "
                            "budget under chaos";

  // The shipped writes actually serve on the caught-up replica.
  auto nearest = target.service->Knn(MakePoint(600.0f), 1);
  ASSERT_TRUE(nearest.ok());
  ASSERT_EQ(nearest->neighbors.size(), 1u);
  EXPECT_EQ(nearest->neighbors[0].rid, 9000u);

  // And the chaos was real, not a clean wire.
  const ChaosStats stats = proxy.stats();
  EXPECT_GT(stats.delays + stats.truncations, 0u);
  proxy.Stop();
}

// ---------------------------------------------------------------------------
// The second flagship: hedged reads mask a browned replica on the wire
// ---------------------------------------------------------------------------

TEST(ChaosRouterTest, HedgedReadsMaskABrownedReplicaBitIdentically) {
  const auto points = testing::MakeClusteredPoints(400, kDim, 4, 67);
  const std::string dir = TempDir("hedge");
  WireReplica slow = MakeWireReplica(points, dir + "/slow");
  WireReplica fast = MakeWireReplica(points, dir + "/fast");

  // The preferred replica sits behind a brownout for the whole test:
  // alive, correct, +50ms on every relayed read. The sibling is a
  // clean wire.
  ChaosOptions chaos;
  chaos.seed = 23;
  chaos.brownout_start_ms = 0;
  chaos.brownout_duration_ms = 10 * 60 * 1000;
  chaos.brownout_delay_ms = 50;
  ChaosProxy proxy;
  ASSERT_TRUE(
      proxy.Start(0, "127.0.0.1", slow.server->port(), chaos).ok());

  ClientOptions copts = ChaosClientOptions();
  copts.features = kFeatureStreaming | kFeatureRouter;
  std::vector<shard::Router::Shard> shards(1);
  shards[0].replicas.push_back(std::make_unique<shard::RemoteShardBackend>(
      "127.0.0.1", proxy.port(), copts));
  shards[0].replicas.push_back(std::make_unique<shard::RemoteShardBackend>(
      "127.0.0.1", fast.server->port(), copts));

  shard::RouterOptions ropts;
  ropts.hedge = true;
  ropts.hedge_delay_floor_us = 1'000;
  ropts.hedge_delay_fallback_us = 5'000;
  ropts.breaker.enabled = false;  // isolate hedging; shard_test owns breakers.
  ropts.jitter_seed = 42;
  const shard::Partition partition = shard::PartitionByStr(points, 1);
  shard::Router router(shard::ShardMap(kDim, partition.bounds),
                       std::move(shards), ropts);

  // Every query prefers the browned replica, stalls past the hedge
  // delay, and is rescued by the clean sibling — with answers
  // bit-identical to asking the healthy replica directly.
  for (size_t q = 0; q < 4; ++q) {
    const geom::Vec& focus = points[(q * 71) % points.size()];
    service::StreamOptions stream;
    stream.max_results = 9;
    auto routed = router.Knn(focus, stream);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    EXPECT_FALSE(routed->degraded());
    auto direct = fast.service->Knn(focus, 9);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(routed->neighbors.size(), direct->neighbors.size());
    for (size_t i = 0; i < direct->neighbors.size(); ++i) {
      EXPECT_EQ(routed->neighbors[i].rid, direct->neighbors[i].rid);
      EXPECT_EQ(routed->neighbors[i].distance, direct->neighbors[i].distance);
    }
  }

  const shard::RouterStats stats = router.stats();
  EXPECT_GE(stats.hedges_attempted, 1u);
  EXPECT_GE(stats.hedges_won, 1u);
  // A brownout is slowness, not death: no failover ever fired and both
  // replicas are still kHealthy — hedging is invisible to the failover
  // state machine.
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(router.replica_state(0, 0), shard::ReplicaState::kHealthy);
  EXPECT_EQ(router.replica_state(0, 1), shard::ReplicaState::kHealthy);
  EXPECT_GE(proxy.stats().brownout_reads, 1u);
  proxy.Stop();
}

}  // namespace
}  // namespace bw::net
