// Unit and property tests for src/geom: Vec, Rect, Sphere, distances.
// The MinDistance properties here are the foundation of exact k-NN for
// every access method in the library.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/distance.h"
#include "geom/rect.h"
#include "geom/sphere.h"
#include "geom/vec.h"
#include "tests/test_helpers.h"
#include "util/random.h"

namespace bw::geom {
namespace {

TEST(VecTest, BasicAccessors) {
  Vec v{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_FLOAT_EQ(v[1], 2.0f);
  EXPECT_DOUBLE_EQ(v.Sum(), 6.0);
}

TEST(VecTest, DistanceIsEuclidean) {
  Vec a{0.0f, 0.0f};
  Vec b{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(a.DistanceSquaredTo(b), 25.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(b.Norm(), 5.0);
}

TEST(VecTest, Arithmetic) {
  Vec a{1.0f, 2.0f};
  Vec b{3.0f, 5.0f};
  EXPECT_EQ(a + b, Vec({4.0f, 7.0f}));
  EXPECT_EQ(b - a, Vec({2.0f, 3.0f}));
  EXPECT_EQ(a * 2.0f, Vec({2.0f, 4.0f}));
}

TEST(VecTest, TruncatedTakesPrefix) {
  Vec v{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_EQ(v.Truncated(2), Vec({1.0f, 2.0f}));
  EXPECT_EQ(v.Truncated(4), v);
}

TEST(RectTest, BoundingBoxCoversAllPoints) {
  const auto points = testing::MakeUniformPoints(50, 4, 3);
  Rect box = Rect::BoundingBox(points);
  for (const auto& p : points) {
    EXPECT_TRUE(box.Contains(p));
    EXPECT_DOUBLE_EQ(box.MinDistanceSquared(p), 0.0);
  }
}

TEST(RectTest, VolumeAndMargin) {
  Rect r(Vec{0.0f, 0.0f}, Vec{2.0f, 3.0f});
  EXPECT_DOUBLE_EQ(r.Volume(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
  EXPECT_EQ(r.Center(), Vec({1.0f, 1.5f}));
}

TEST(RectTest, DegeneratePointRect) {
  Rect r(Vec{1.0f, 2.0f});
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);
  EXPECT_TRUE(r.Contains(Vec{1.0f, 2.0f}));
  EXPECT_FALSE(r.Contains(Vec{1.0f, 2.1f}));
}

TEST(RectTest, IntersectionLogic) {
  Rect a(Vec{0.0f, 0.0f}, Vec{2.0f, 2.0f});
  Rect b(Vec{1.0f, 1.0f}, Vec{3.0f, 3.0f});
  Rect c(Vec{5.0f, 5.0f}, Vec{6.0f, 6.0f});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 1.0);
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(c), 0.0);
  // Touching edges intersect with zero volume.
  Rect d(Vec{2.0f, 0.0f}, Vec{4.0f, 2.0f});
  EXPECT_TRUE(a.Intersects(d));
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(d), 0.0);
}

TEST(RectTest, ContainsRect) {
  Rect outer(Vec{0.0f, 0.0f}, Vec{10.0f, 10.0f});
  Rect inner(Vec{2.0f, 3.0f}, Vec{4.0f, 5.0f});
  EXPECT_TRUE(outer.ContainsRect(inner));
  EXPECT_FALSE(inner.ContainsRect(outer));
  EXPECT_TRUE(outer.ContainsRect(outer));
}

TEST(RectTest, EnlargementMatchesVolumeDelta) {
  Rect a(Vec{0.0f, 0.0f}, Vec{2.0f, 2.0f});
  Rect b(Vec{3.0f, 0.0f}, Vec{4.0f, 1.0f});
  Rect merged = a;
  merged.ExpandToInclude(b);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), merged.Volume() - a.Volume());
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(RectTest, MinDistanceKnownValues) {
  Rect r(Vec{0.0f, 0.0f}, Vec{1.0f, 1.0f});
  EXPECT_DOUBLE_EQ(r.MinDistanceSquared(Vec{0.5f, 0.5f}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(r.MinDistanceSquared(Vec{2.0f, 0.5f}), 1.0);  // face
  EXPECT_DOUBLE_EQ(r.MinDistanceSquared(Vec{2.0f, 2.0f}), 2.0);  // corner
}

// Property: MinDistance is the true minimum over the rect (verified by
// comparing against the clamped point) and MaxDistance bounds every
// contained point.
TEST(RectTest, PropertyMinMaxDistanceBracketContainedPoints) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = 2 + rng.NextBelow(5);
    auto corner_points = testing::MakeUniformPoints(2, dim, trial * 2 + 1);
    Rect box(Rect::BoundingBox(corner_points));
    auto queries = testing::MakeUniformPoints(4, dim, trial * 3 + 7);
    for (const auto& q : queries) {
      const Vec closest = box.ClosestPointTo(q);
      EXPECT_NEAR(box.MinDistanceSquared(q), q.DistanceSquaredTo(closest),
                  1e-9);
      EXPECT_TRUE(box.Contains(closest));
      // Any contained point is at least MinDistance away and at most
      // MaxDistance away.
      Vec inside = box.Center();
      const double d = q.DistanceSquaredTo(inside);
      EXPECT_GE(d + 1e-9, box.MinDistanceSquared(q));
      EXPECT_LE(d, box.MaxDistanceSquared(q) + 1e-9);
    }
  }
}

TEST(SphereTest, CentroidBoundCoversPoints) {
  const auto points = testing::MakeClusteredPoints(100, 3, 2, 5);
  Sphere ball = Sphere::CentroidBound(points);
  for (const auto& p : points) {
    EXPECT_TRUE(ball.Contains(p));
    EXPECT_DOUBLE_EQ(ball.MinDistance(p), 0.0);
  }
}

TEST(SphereTest, MinDistanceOutside) {
  Sphere ball(Vec{0.0f, 0.0f}, 1.0);
  EXPECT_DOUBLE_EQ(ball.MinDistance(Vec{3.0f, 0.0f}), 2.0);
  EXPECT_DOUBLE_EQ(ball.MinDistance(Vec{0.5f, 0.0f}), 0.0);
}

TEST(SphereTest, CentroidBoundOfSpheresCoversChildren) {
  Rng rng(31);
  std::vector<Sphere> children;
  std::vector<double> weights;
  for (int i = 0; i < 8; ++i) {
    Vec c(3);
    for (size_t d = 0; d < 3; ++d) c[d] = float(rng.Uniform(-5, 5));
    children.emplace_back(c, rng.Uniform(0.1, 2.0));
    weights.push_back(double(1 + rng.NextBelow(20)));
  }
  Sphere parent = Sphere::CentroidBoundOfSpheres(children, weights);
  for (const auto& child : children) {
    // Every point of the child (center +/- radius along any direction)
    // must be inside the parent; test the extreme along the separating
    // direction.
    const double center_gap = parent.center().DistanceTo(child.center());
    EXPECT_LE(center_gap + child.radius(), parent.radius() + 1e-6);
  }
}

TEST(SphereTest, BoundingRectIsTight) {
  Sphere ball(Vec{1.0f, 2.0f}, 3.0);
  Rect box = ball.BoundingRect();
  EXPECT_FLOAT_EQ(box.lo()[0], -2.0f);
  EXPECT_FLOAT_EQ(box.hi()[1], 5.0f);
}

TEST(SphereTest, VolumeMatchesKnownFormulas) {
  // V_2 = pi r^2, V_3 = 4/3 pi r^3.
  Sphere circle(Vec{0.0f, 0.0f}, 2.0);
  EXPECT_NEAR(circle.Volume(), M_PI * 4.0, 1e-9);
  Sphere ball(Vec{0.0f, 0.0f, 0.0f}, 1.0);
  EXPECT_NEAR(ball.Volume(), 4.0 / 3.0 * M_PI, 1e-9);
}

TEST(DistanceTest, WeightedL2) {
  Vec a{1.0f, 2.0f};
  Vec b{2.0f, 4.0f};
  EXPECT_DOUBLE_EQ(WeightedL2Squared(a, b, {1.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(WeightedL2Squared(a, b, {2.0, 0.0}), 2.0);
}

TEST(QuadraticFormTest, ZeroForIdenticalHistograms) {
  std::vector<Vec> bins = {Vec{0.0f}, Vec{1.0f}, Vec{2.0f}};
  QuadraticFormDistance qf(bins, 4.0);
  Vec h{0.2f, 0.5f, 0.3f};
  EXPECT_NEAR(qf.Distance(h, h), 0.0, 1e-12);
}

TEST(QuadraticFormTest, CrossBinSimilarityOrdersDistances) {
  // Bins at positions 0, 1, 10: mass moving to a NEAR bin must cost less
  // than mass moving to a FAR bin — the defining property the plain L2
  // lacks.
  std::vector<Vec> bins = {Vec{0.0f}, Vec{1.0f}, Vec{10.0f}};
  QuadraticFormDistance qf(bins, 4.0);
  Vec base{1.0f, 0.0f, 0.0f};
  Vec near{0.0f, 1.0f, 0.0f};
  Vec far{0.0f, 0.0f, 1.0f};
  EXPECT_LT(qf.Distance(base, near), qf.Distance(base, far));
}

TEST(QuadraticFormTest, SymmetricAndNonNegative) {
  std::vector<Vec> bins;
  Rng rng(41);
  for (int i = 0; i < 10; ++i) {
    bins.push_back(Vec{float(rng.Uniform(0, 100)), float(rng.Uniform(0, 50))});
  }
  QuadraticFormDistance qf(bins, 8.0);
  for (int trial = 0; trial < 20; ++trial) {
    Vec x(10), y(10);
    for (size_t i = 0; i < 10; ++i) {
      x[i] = rng.NextFloat();
      y[i] = rng.NextFloat();
    }
    const double dxy = qf.Distance(x, y);
    EXPECT_GE(dxy, 0.0);
    EXPECT_NEAR(dxy, qf.Distance(y, x), 1e-9);
  }
}

}  // namespace
}  // namespace bw::geom
