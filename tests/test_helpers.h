// Shared helpers for the test suite: deterministic clustered point
// generation and brute-force reference search.

#ifndef BLOBWORLD_TESTS_TEST_HELPERS_H_
#define BLOBWORLD_TESTS_TEST_HELPERS_H_

#include <algorithm>
#include <vector>

#include "geom/vec.h"
#include "util/random.h"

namespace bw::testing {

/// Clustered points: `clusters` Gaussian blobs in [0, 100]^dim, matching
/// the shape of SVD-reduced Blobworld vectors.
inline std::vector<geom::Vec> MakeClusteredPoints(size_t n, size_t dim,
                                                  size_t clusters,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Vec> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    geom::Vec v(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>(rng.Uniform(0.0, 100.0));
    }
    centers.push_back(std::move(v));
  }
  std::vector<geom::Vec> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Vec& center = centers[rng.NextBelow(clusters)];
    geom::Vec v(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>(rng.Gaussian(center[d], 4.0));
    }
    points.push_back(std::move(v));
  }
  return points;
}

/// Uniform points in [0, 100]^dim.
inline std::vector<geom::Vec> MakeUniformPoints(size_t n, size_t dim,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Vec> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    geom::Vec v(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>(rng.Uniform(0.0, 100.0));
    }
    points.push_back(std::move(v));
  }
  return points;
}

/// Brute-force k-NN: indices of the k nearest points, sorted by distance
/// (ties broken by index for determinism).
inline std::vector<size_t> BruteForceKnn(const std::vector<geom::Vec>& points,
                                         const geom::Vec& query, size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    scored.emplace_back(points[i].DistanceSquaredTo(query), i);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<size_t> out;
  out.reserve(std::min(k, scored.size()));
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace bw::testing

#endif  // BLOBWORLD_TESTS_TEST_HELPERS_H_
