// Tests for the paper's core contribution (src/core): corner bites and
// the MAP/JB/XJB bounding predicates. The central properties:
//
//  * no bite ever contains a content element (covering preserved),
//  * JaggedMinDistance is an admissible lower bound on the distance to
//    any covered point, and exact when the clamp point is in the region,
//  * the maximal-bite construction dominates the Figure-13 nibble,
//  * codecs round-trip and match Table 3 sizes,
//  * auto-X selection never grows the estimated tree height.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bites.h"
#include "core/jagged.h"
#include "core/map_tree.h"
#include "tests/test_helpers.h"
#include "util/random.h"

namespace bw::core {
namespace {

std::vector<geom::Rect> AsRects(const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> rects;
  rects.reserve(points.size());
  for (const auto& p : points) rects.emplace_back(p);
  return rects;
}

// ---------------------------------------------------------------------------
// Bites
// ---------------------------------------------------------------------------

class BiteConstructionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BiteConstructionTest, NibbledBitesContainNoContent) {
  const size_t dim = GetParam();
  Rng rng(dim * 100 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto points =
        testing::MakeClusteredPoints(60, dim, 3, trial * 7 + dim);
    const auto contents = AsRects(points);
    const geom::Rect mbr = geom::Rect::BoundingBox(points);
    const std::vector<std::vector<Bite>> constructions = {
        NibbleAllCorners(mbr, contents), MaxVolumeCorners(mbr, contents)};
    for (const auto& bites : constructions) {
      for (const Bite& bite : bites) {
        for (const auto& p : points) {
          EXPECT_FALSE(PointInsideBite(mbr, bite, p))
              << "dim=" << dim << " corner=" << bite.corner;
        }
      }
    }
  }
}

TEST_P(BiteConstructionTest, MaxVolumeDominatesNibble) {
  const size_t dim = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    const auto points =
        testing::MakeClusteredPoints(50, dim, 2, trial * 13 + dim);
    const auto contents = AsRects(points);
    const geom::Rect mbr = geom::Rect::BoundingBox(points);
    const auto nibbled = NibbleAllCorners(mbr, contents);
    const auto maximal = MaxVolumeCorners(mbr, contents);
    ASSERT_EQ(nibbled.size(), maximal.size());
    for (size_t c = 0; c < nibbled.size(); ++c) {
      EXPECT_GE(maximal[c].Volume(mbr), nibbled[c].Volume(mbr) - 1e-12);
    }
  }
}

TEST_P(BiteConstructionTest, JaggedMinDistanceIsAdmissible) {
  const size_t dim = GetParam();
  Rng rng(dim * 31);
  for (int trial = 0; trial < 15; ++trial) {
    const auto points =
        testing::MakeClusteredPoints(40, dim, 2, trial * 3 + dim * 11);
    const auto contents = AsRects(points);
    const geom::Rect mbr = geom::Rect::BoundingBox(points);
    const auto bites = MaxVolumeCorners(mbr, contents);
    const auto queries = testing::MakeUniformPoints(30, dim, trial + 5);
    for (const auto& q : queries) {
      const double bound = JaggedMinDistance(mbr, bites, q);
      for (const auto& p : points) {
        EXPECT_LE(bound, q.DistanceTo(p) + 1e-5)
            << "bound must never exceed a covered point's distance";
      }
      // And it is at least as tight as the raw MBR bound.
      EXPECT_GE(bound + 1e-9, std::sqrt(mbr.MinDistanceSquared(q)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BiteConstructionTest,
                         ::testing::Values(2, 3, 5, 7),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "D" + std::to_string(info.param);
                         });

TEST(BiteTest, KnownTwoDimensionalDiagonal) {
  // Points on the diagonal of the unit square: the off-diagonal corners
  // must receive non-empty bites; the diagonal corners must not.
  std::vector<geom::Vec> points;
  for (int i = 0; i <= 10; ++i) {
    points.push_back(geom::Vec{float(i) / 10.0f, float(i) / 10.0f});
  }
  const geom::Rect mbr = geom::Rect::BoundingBox(points);
  const auto bites = NibbleAllCorners(mbr, AsRects(points));
  ASSERT_EQ(bites.size(), 4u);
  EXPECT_TRUE(bites[0b00].IsEmpty(mbr));   // (lo, lo): on the diagonal.
  EXPECT_TRUE(bites[0b11].IsEmpty(mbr));   // (hi, hi): on the diagonal.
  EXPECT_FALSE(bites[0b01].IsEmpty(mbr));  // (hi, lo): empty corner.
  EXPECT_FALSE(bites[0b10].IsEmpty(mbr));  // (lo, hi): empty corner.
  // The bite at (hi_x, lo_y) shields a query beyond that corner.
  const geom::Vec graze{1.05f, -0.05f};
  const double jagged = JaggedMinDistance(mbr, bites, graze);
  const double plain = std::sqrt(mbr.MinDistanceSquared(graze));
  EXPECT_GT(jagged, plain + 0.1);
}

TEST(BiteTest, SinglePointMbrHasNoBites) {
  std::vector<geom::Vec> points = {geom::Vec{1.0f, 2.0f, 3.0f}};
  const geom::Rect mbr = geom::Rect::BoundingBox(points);
  for (const Bite& b : NibbleAllCorners(mbr, AsRects(points))) {
    EXPECT_TRUE(b.IsEmpty(mbr));
  }
}

TEST(BiteTest, RectContentsRespected) {
  // Contents given as rectangles (internal tree levels): bites must not
  // intersect any child rect.
  Rng rng(71);
  std::vector<geom::Rect> children;
  for (int i = 0; i < 12; ++i) {
    auto pts = testing::MakeUniformPoints(2, 3, i * 5 + 2);
    children.push_back(geom::Rect::BoundingBox(pts));
  }
  const geom::Rect mbr = geom::Rect::BoundingBoxOfRects(children);
  for (const Bite& bite : MaxVolumeCorners(mbr, children)) {
    if (bite.IsEmpty(mbr)) continue;
    for (const auto& child : children) {
      EXPECT_FALSE(RectIntersectsBite(mbr, bite, child));
    }
  }
}

// ---------------------------------------------------------------------------
// MAP
// ---------------------------------------------------------------------------

TEST(MapTest, PairVolumeCountsOverlapOnce) {
  geom::Rect a(geom::Vec{0.0f, 0.0f}, geom::Vec{2.0f, 2.0f});
  geom::Rect b(geom::Vec{1.0f, 1.0f}, geom::Vec{3.0f, 3.0f});
  EXPECT_DOUBLE_EQ(MapExtension::PairVolume(a, b), 4.0 + 4.0 - 1.0);
}

TEST(MapTest, BpCoversAllPointsAndBeatsOrMatchesMbr) {
  MapExtension ext(4, 42, 0.4, 512);
  for (int trial = 0; trial < 10; ++trial) {
    // Two separated clusters: the two-rectangle BP should enclose less
    // volume than the single MBR.
    const auto points = testing::MakeClusteredPoints(80, 4, 2, trial * 9 + 1);
    const gist::Bytes bp = ext.BpFromPoints(points);
    auto [a, b] = ext.DecodePair(bp);
    for (const auto& p : points) {
      EXPECT_TRUE(a.Contains(p) || b.Contains(p));
      EXPECT_DOUBLE_EQ(ext.BpMinDistance(bp, p), 0.0);
    }
    const geom::Rect mbr = geom::Rect::BoundingBox(points);
    EXPECT_LE(MapExtension::PairVolume(a, b), mbr.Volume() + 1e-9);
  }
}

TEST(MapTest, CodecRoundTrips) {
  MapExtension ext(3);
  geom::Rect a(geom::Vec{0.0f, 1.0f, 2.0f}, geom::Vec{3.0f, 4.0f, 5.0f});
  geom::Rect b(geom::Vec{-1.0f, -2.0f, -3.0f}, geom::Vec{0.5f, 0.5f, 0.5f});
  auto [da, db] = ext.DecodePair(ext.EncodePair(a, b));
  EXPECT_EQ(da, a);
  EXPECT_EQ(db, b);
}

TEST(MapTest, MinDistanceIsMinOverRects) {
  MapExtension ext(2);
  geom::Rect a(geom::Vec{0.0f, 0.0f}, geom::Vec{1.0f, 1.0f});
  geom::Rect b(geom::Vec{5.0f, 0.0f}, geom::Vec{6.0f, 1.0f});
  const gist::Bytes bp = ext.EncodePair(a, b);
  EXPECT_NEAR(ext.BpMinDistance(bp, geom::Vec{4.5f, 0.5f}), 0.5, 1e-6);
  EXPECT_NEAR(ext.BpMinDistance(bp, geom::Vec{1.5f, 0.5f}), 0.5, 1e-6);
}

// ---------------------------------------------------------------------------
// JB / XJB codecs
// ---------------------------------------------------------------------------

TEST(JbTest, CodecSizeMatchesTable3) {
  for (size_t d : {2u, 3u, 5u}) {
    JbExtension ext(d);
    const auto points = testing::MakeClusteredPoints(50, d, 3, d);
    EXPECT_EQ(ext.BpFromPoints(points).size(),
              (2 + (size_t{1} << d)) * d * sizeof(float));
  }
}

TEST(JbTest, DecodePreservesAllCorners) {
  JbExtension ext(3);
  const auto points = testing::MakeClusteredPoints(40, 3, 2, 9);
  const JaggedBp bp = ext.Decode(ext.BpFromPoints(points));
  EXPECT_EQ(bp.bites.size(), 8u);
  for (size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(bp.bites[c].corner, c);
  }
  EXPECT_EQ(bp.mbr, geom::Rect::BoundingBox(points));
}

TEST(XjbTest, CodecSizeMatchesTable3) {
  for (size_t x : {1u, 4u, 10u}) {
    XjbExtension ext(5, x);
    const auto points = testing::MakeClusteredPoints(50, 5, 3, x);
    EXPECT_EQ(ext.BpFromPoints(points).size(),
              (2 * 5 + (5 + 1) * x) * sizeof(float));
  }
}

TEST(XjbTest, KeepsLargestBites) {
  // XJB with X=2 must keep the two largest-volume bites of the full set.
  XjbExtension xjb(3, 2);
  JbExtension jb(3);
  const auto points = testing::MakeClusteredPoints(60, 3, 2, 77);
  const JaggedBp all = jb.Decode(jb.BpFromPoints(points));
  const JaggedBp top = xjb.Decode(xjb.BpFromPoints(points));
  ASSERT_LE(top.bites.size(), 2u);
  // Volume of kept bites must be the max volumes among all corners.
  std::vector<double> volumes;
  for (const Bite& b : all.bites) volumes.push_back(b.Volume(all.mbr));
  std::sort(volumes.rbegin(), volumes.rend());
  for (size_t i = 0; i < top.bites.size(); ++i) {
    EXPECT_NEAR(top.bites[i].Volume(top.mbr), volumes[i], 1e-9);
  }
}

TEST(XjbTest, MoreBitesNeverLoosenTheBound) {
  const auto points = testing::MakeClusteredPoints(80, 4, 3, 5);
  const auto queries = testing::MakeUniformPoints(40, 4, 6);
  XjbExtension x2(4, 2);
  XjbExtension x8(4, 8);
  JbExtension full(4);
  const gist::Bytes bp2 = x2.BpFromPoints(points);
  const gist::Bytes bp8 = x8.BpFromPoints(points);
  const gist::Bytes bpf = full.BpFromPoints(points);
  for (const auto& q : queries) {
    const double d2 = x2.BpMinDistance(bp2, q);
    const double d8 = x8.BpMinDistance(bp8, q);
    const double df = full.BpMinDistance(bpf, q);
    EXPECT_LE(d2, d8 + 1e-9);
    EXPECT_LE(d8, df + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Auto-X selection
// ---------------------------------------------------------------------------

TEST(AutoXTest, HeightEstimateMonotoneInX) {
  for (size_t x = 1; x < 32; ++x) {
    EXPECT_LE(EstimateXjbHeight(100000, 5, x, 4096, 0.85),
              EstimateXjbHeight(100000, 5, x + 1, 4096, 0.85));
  }
}

TEST(AutoXTest, SelectedXDoesNotAddALevel) {
  for (size_t n : {5000u, 50000u, 221231u}) {
    const size_t x = AutoSelectXjbX(n, 5, 4096, 0.85);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 32u);
    EXPECT_EQ(EstimateXjbHeight(n, 5, x, 4096, 0.85),
              EstimateXjbHeight(n, 5, 1, 4096, 0.85));
    // Maximality: X+1 either exceeds the corner count or adds a level.
    if (x < 32) {
      EXPECT_GT(EstimateXjbHeight(n, 5, x + 1, 4096, 0.85),
                EstimateXjbHeight(n, 5, 1, 4096, 0.85));
    }
  }
}

}  // namespace
}  // namespace bw::core
