// Tests for index persistence (save/load round-trips across all access
// methods) and the incremental nearest-neighbor cursor.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "pages/page_file.h"
#include "am/rtree.h"
#include "am/sstree.h"
#include "core/index_factory.h"
#include "gist/nn_cursor.h"
#include "gist/persist.h"
#include "tests/test_helpers.h"

namespace bw {
namespace {

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

class PersistTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PersistTest, SaveLoadRoundTripPreservesAnswers) {
  const auto points = testing::MakeClusteredPoints(2500, 5, 8, 31);
  core::IndexBuildOptions options;
  options.am = GetParam();
  options.xjb_x = 6;
  options.amap_samples = 64;
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path =
      ::testing::TempDir() + "/index_" + GetParam() + ".bwix";
  ASSERT_TRUE(core::SaveIndex(**built, path).ok());

  auto loaded = core::LoadIndex(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->tree().size(), points.size());
  EXPECT_EQ((*loaded)->tree().height(), (*built)->tree().height());
  ASSERT_TRUE((*loaded)->tree().Validate().ok());

  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const geom::Vec& q = points[rng.NextBelow(points.size())];
    auto a = (*built)->Knn(q, 25, nullptr);
    auto b = (*loaded)->Knn(q, 25, nullptr);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (size_t i = 0; i < 25; ++i) {
      EXPECT_EQ((*a)[i].rid, (*b)[i].rid);
      EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-12);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllAms, PersistTest,
                         ::testing::Values("rtree", "rstar", "sstree",
                                           "srtree", "amap", "jb", "xjb"));

TEST(PersistFileTest, RejectsWrongExtension) {
  const auto points = testing::MakeUniformPoints(500, 3, 7);
  core::IndexBuildOptions options;
  options.am = "rtree";
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/mismatch.bwix";
  ASSERT_TRUE(core::SaveIndex(**built, path).ok());

  auto loaded = gist::LoadIndexFile(path);
  ASSERT_TRUE(loaded.ok());
  // Attaching an SS-tree extension to an R-tree file must fail loudly.
  auto attach = loaded->AttachExtension(
      std::make_unique<am::SsTreeExtension>(3));
  EXPECT_EQ(attach.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PersistFileTest, RejectsGarbageAndMissingFiles) {
  EXPECT_EQ(gist::LoadIndexFile("/nonexistent/z.bwix").status().code(),
            StatusCode::kIoError);
  const std::string path = ::testing::TempDir() + "/garbage.bwix";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage bytes", f);
  std::fclose(f);
  EXPECT_EQ(gist::LoadIndexFile(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// NN cursor
// ---------------------------------------------------------------------------

TEST(NnCursorTest, StreamsInNonDecreasingOrder) {
  const auto points = testing::MakeClusteredPoints(1200, 4, 6, 5);
  core::IndexBuildOptions options;
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok());

  const geom::Vec& q = points[17];
  gist::NnCursor cursor((*built)->tree(), q);
  double last = -1.0;
  size_t count = 0;
  for (;;) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    EXPECT_GE((**next).distance, last - 1e-12);
    last = (**next).distance;
    ++count;
  }
  EXPECT_EQ(count, points.size());  // exhausts the whole tree.
  EXPECT_EQ(cursor.produced(), points.size());
  EXPECT_TRUE(std::isinf(cursor.FrontierDistance()));
}

TEST(NnCursorTest, PrefixMatchesKnnSearch) {
  const auto points = testing::MakeClusteredPoints(3000, 5, 10, 9);
  core::IndexBuildOptions options;
  options.am = "xjb";
  options.xjb_x = 6;
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok());

  const geom::Vec& q = points[99];
  auto batch = (*built)->Knn(q, 60, nullptr);
  ASSERT_TRUE(batch.ok());

  gist::NnCursor cursor((*built)->tree(), q);
  for (size_t i = 0; i < 60; ++i) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_NEAR((**next).distance, (*batch)[i].distance, 1e-12) << i;
  }
}

TEST(NnCursorTest, FrontierDistanceBoundsFutureResults) {
  const auto points = testing::MakeUniformPoints(800, 3, 21);
  core::IndexBuildOptions options;
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok());

  gist::NnCursor cursor((*built)->tree(), points[0]);
  for (int i = 0; i < 100; ++i) {
    const double frontier = cursor.FrontierDistance();
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_GE((**next).distance, frontier - 1e-12);
  }
}

TEST(NnCursorTest, FrontierDistanceEarlyStopMatchesRangeSearch) {
  const auto points = testing::MakeClusteredPoints(2500, 5, 8, 44);
  core::IndexBuildOptions options;
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const gist::Tree& tree = (*built)->tree();

  // Budget: the distance of roughly the 30th nearest neighbor.
  const geom::Vec& q = points[123];
  auto knn = tree.KnnSearch(q, 30, nullptr);
  ASSERT_TRUE(knn.ok());
  const double budget = (*knn)[29].distance;

  // Stream until the frontier lower bound proves nothing within the
  // budget remains, collecting everything at distance <= budget.
  gist::TraversalStats stats;
  gist::NnCursor cursor(tree, q, &stats);
  std::vector<gist::Rid> streamed;
  for (;;) {
    if (cursor.FrontierDistance() > budget) break;  // early stop.
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    if ((**next).distance > budget) break;
    streamed.push_back((**next).rid);
  }
  const uint64_t accesses_at_stop = stats.TotalAccesses();

  // The early-stopped stream is exactly the range query's answer.
  auto range = tree.RangeSearch(q, budget, nullptr);
  ASSERT_TRUE(range.ok());
  std::vector<gist::Rid> expected;
  expected.reserve(range->size());
  for (const auto& n : *range) expected.push_back(n.rid);
  std::sort(expected.begin(), expected.end());
  std::vector<gist::Rid> got = streamed;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);

  // Stopping early genuinely saved node accesses vs full exhaustion.
  for (;;) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
  }
  EXPECT_LT(accesses_at_stop, stats.TotalAccesses());
}

TEST(NnCursorTest, EmptyTreeYieldsNothing) {
  pages::PageFile file(4096);
  gist::Tree tree(&file, std::make_unique<am::RtreeExtension>(3));
  gist::NnCursor cursor(tree, geom::Vec(3));
  auto next = cursor.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST(NnCursorTest, CountsAccessesIncrementally) {
  const auto points = testing::MakeClusteredPoints(2000, 4, 8, 3);
  core::IndexBuildOptions options;
  auto built = core::BuildIndex(points, options);
  ASSERT_TRUE(built.ok());

  gist::TraversalStats stats;
  gist::NnCursor cursor((*built)->tree(), points[0], &stats);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cursor.Next().ok());
  }
  const uint64_t early = stats.TotalAccesses();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cursor.Next().ok());
  }
  // Deeper streaming costs more node accesses.
  EXPECT_GT(stats.TotalAccesses(), early);
}

}  // namespace
}  // namespace bw
