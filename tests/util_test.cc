// Unit tests for src/util: Status/Result, Rng, Flags, TablePrinter.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace bw {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kCorruption, StatusCode::kNoSpace,
        StatusCode::kNotSupported, StatusCode::kInternal,
        StatusCode::kIoError, StatusCode::kUnavailable, StatusCode::kDataLoss,
        StatusCode::kAborted, StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, AbortedIsDistinctCode) {
  Status s = Status::Aborted("i/o watchdog: deadline expired");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.ToString(), "Aborted: i/o watchdog: deadline expired");
}

TEST(StatusTest, OnlyUnavailableIsRetryable) {
  // The self-healing read path retries exactly the transient class:
  // kDataLoss is permanent rot, kAborted is a deadline (retrying would
  // defeat it), kIoError is a hard environment failure.
  EXPECT_TRUE(IsRetryable(Status::Unavailable("transient")));
  EXPECT_TRUE(Status::Unavailable("transient").IsRetryable());
  for (const Status& s :
       {Status::OK(), Status::DataLoss("rot"), Status::Aborted("deadline"),
        Status::IoError("pread"), Status::NotFound("x"),
        Status::InvalidArgument("x"), Status::Internal("x")}) {
    EXPECT_FALSE(IsRetryable(s)) << s.ToString();
    EXPECT_FALSE(s.IsRetryable()) << s.ToString();
  }
  static_assert(IsRetryable(StatusCode::kUnavailable));
  static_assert(!IsRetryable(StatusCode::kAborted));
  static_assert(!IsRetryable(StatusCode::kDataLoss));
}

TEST(StatusTest, ResourceExhaustedIsDistinctAndNotRetryable) {
  Status s = Status::ResourceExhausted("disk full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: disk full");
  // Exhaustion is not transient from the read path's point of view: a
  // retry loop would spin until space frees up. The write path instead
  // sheds at admission (kReadOnly) and resumes when the watchdog clears.
  EXPECT_FALSE(IsRetryable(s));
  EXPECT_FALSE(s.IsRetryable());
  static_assert(!IsRetryable(StatusCode::kResourceExhausted));
}

TEST(StatusTest, UnavailableIsDistinctCode) {
  Status s = Status::Unavailable("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "Unavailable: queue full");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Corruption("bad page");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Status UseHalf(int x, int* out) {
  BW_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
  // n == 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.05);  // covers the low end
  EXPECT_GT(max, 0.95);  // covers the high end
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  auto picks = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(19);
  auto picks = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 10u);
}

// ---------------------------------------------------------------------------
// JitterStream (the seedable retry/backoff/hedge jitter source)
// ---------------------------------------------------------------------------

TEST(JitterStreamTest, DeterministicForSameSeed) {
  JitterStream a(123);
  JitterStream b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(JitterStreamTest, DistinctSeedsDecorrelate) {
  JitterStream a(1);
  JitterStream b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(JitterStreamTest, ReseedReplaysFromTheTop) {
  JitterStream stream(77);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(stream.Next());
  stream.Reseed(77);  // same seed: the exact sequence replays.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(stream.Next(), first[i]);
  stream.Reseed(78);  // different seed: a different sequence.
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    if (stream.Next() == first[i]) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(JitterStreamTest, NextBelowAndUnitBounds) {
  JitterStream stream(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(stream.NextBelow(13), 13u);
    const double u = stream.NextUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(stream.NextBelow(0), 0u);
  EXPECT_EQ(stream.NextBelow(1), 0u);
}

TEST(LatencyHistogramTest, SnapshotCarriesTailQuantiles) {
  LatencyHistogram histogram;
  // 998 fast ops and two 80ms stragglers: the stragglers are the worst
  // 0.2%, so p99.9 (rank 999 of 1000) must see them while p99 (rank
  // 990) is allowed to miss them.
  for (int i = 0; i < 998; ++i) histogram.Record(100);
  histogram.Record(80'000);
  histogram.Record(80'000);
  const LatencyHistogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_GT(snap.mean, 0.0);
  EXPECT_LT(snap.p50, 1'000u);
  EXPECT_LT(snap.p99, 10'000u);
  EXPECT_GE(snap.p999, 50'000u);  // log-spaced buckets: ~12.5% error.
  EXPECT_GE(snap.p999, snap.p99);
  EXPECT_GE(snap.p99, snap.p50);
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(FlagsTest, ParsesAllTypes) {
  Flags flags;
  int64_t* i = flags.AddInt64("count", 1, "");
  double* d = flags.AddDouble("ratio", 0.5, "");
  bool* b = flags.AddBool("verbose", false, "");
  std::string* s = flags.AddString("name", "x", "");

  const char* argv[] = {"prog", "--count=42", "--ratio", "2.5", "--verbose",
                        "--name=hello"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(*i, 42);
  EXPECT_DOUBLE_EQ(*d, 2.5);
  EXPECT_TRUE(*b);
  EXPECT_EQ(*s, "hello");
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  Flags flags;
  int64_t* i = flags.AddInt64("count", 7, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(*i, 7);
}

TEST(FlagsTest, BooleanNegation) {
  Flags flags;
  bool* b = flags.AddBool("cache", true, "");
  const char* argv[] = {"prog", "--no-cache"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(*b);
}

TEST(FlagsTest, HyphensAndUnderscoresInterchangeable) {
  Flags flags;
  int64_t* depth = flags.AddInt64("queue_depth", 8, "");
  bool* cache = flags.AddBool("use_cache", true, "");
  const char* argv[] = {"prog", "--queue-depth=32", "--no-use-cache"};
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)).ok());
  EXPECT_EQ(*depth, 32);
  EXPECT_FALSE(*cache);
}

TEST(FlagsTest, HyphenatedRegistrationAcceptsUnderscores) {
  // Normalization applies at registration too, so a flag declared with
  // hyphens parses under either spelling.
  Flags flags;
  int64_t* depth = flags.AddInt64("queue-depth", 8, "");
  const char* argv[] = {"prog", "--queue_depth=32"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_EQ(*depth, 32);
  EXPECT_NE(flags.Usage().find("interchangeable"), std::string::npos);
}

TEST(FlagsTest, UnknownFlagIsError) {
  Flags flags;
  flags.AddInt64("count", 1, "");
  const char* argv[] = {"prog", "--typo=3"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, MalformedValueIsError) {
  Flags flags;
  flags.AddInt64("count", 1, "");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, MissingValueIsError) {
  Flags flags;
  flags.AddInt64("count", 1, "");
  const char* argv[] = {"prog", "--count"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long header"});
  table.AddRow({"xxxxxx", "1"});
  const std::string out = table.ToString();
  // Three lines: header, separator, one row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  // Every line has the same length.
  size_t first_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Count(1234567), "1234567");
  EXPECT_EQ(TablePrinter::Percent(0.314, 1), "31.4%");
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) h.Record(v);
  EXPECT_EQ(h.Count(), 10u);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  EXPECT_EQ(h.Percentile(0.5), 5u);   // values <= 16 land in exact buckets.
  EXPECT_EQ(h.Percentile(1.0), 10u);
  EXPECT_EQ(h.Percentile(0.0), 1u);
}

TEST(LatencyHistogramTest, PercentileWithinBucketError) {
  LatencyHistogram h;
  // 100 samples at 1000, one outlier at 100000.
  for (int i = 0; i < 100; ++i) h.Record(1000);
  h.Record(100000);
  // p50 bucket upper bound must be within ~12.5% above 1000.
  const uint64_t p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 1000u);
  EXPECT_LE(p50, 1150u);
  // p99+ reaches the outlier's bucket.
  const uint64_t p100 = h.Percentile(1.0);
  EXPECT_GE(p100, 100000u);
  EXPECT_LE(p100, 115000u);
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.99));
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(100 + t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

}  // namespace
}  // namespace bw
