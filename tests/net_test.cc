// Tests for the network front end (src/net/): codec round trips, frame
// reassembly, end-to-end wire queries against in-process ground truth,
// request pipelining, quota shedding with distinct wire codes, the
// read-only/failed write-state surfacing, slow-reader backpressure,
// graceful-shutdown drain, and — most importantly — malformed-input
// hardening: truncated frames, oversized declared lengths, bad CRCs,
// unknown types, and mid-stream disconnects must produce clean
// per-connection errors, never a crash or a leak (this file is part of
// the ASan/UBSan and TSan gates).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <random>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "tests/test_helpers.h"

namespace bw::net {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

constexpr size_t kDim = 4;

std::vector<geom::Vec> TestVectors(size_t n = 2000) {
  return bw::testing::MakeClusteredPoints(n, kDim, 8, 17);
}

// An index + service + server on an ephemeral port, with the tree kept
// reachable for ground-truth queries.
struct NetHarness {
  explicit NetHarness(service::ServiceOptions sopts = {},
                      ServerOptions nopts = {}, size_t n = 2000)
      : vectors(TestVectors(n)) {
    core::IndexBuildOptions build;
    build.am = "xjb";
    build.xjb_x = 0;
    auto index = core::BuildIndex(vectors, build);
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    tree = &(*index)->tree();
    service = std::make_unique<service::QueryService>(std::move(*index),
                                                      sopts);
    server = std::make_unique<Server>(service.get(), nopts);
    BW_CHECK_OK(server->Start());
  }

  std::unique_ptr<Client> Connect(ClientOptions copts = ClientOptions()) {
    auto client = Client::Connect("127.0.0.1", server->port(), copts);
    BW_CHECK_MSG(client.ok(), client.status().ToString());
    return std::move(*client);
  }

  std::vector<geom::Vec> vectors;
  const gist::Tree* tree = nullptr;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<Server> server;
};

// A raw TCP connection speaking hand-crafted bytes — the hostile-client
// stand-in the net::Client refuses to be.
class RawConn {
 public:
  explicit RawConn(uint16_t port, int rcvbuf_bytes = 0,
                   int recv_timeout_ms = 5000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    BW_CHECK(fd_ >= 0);
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    timeval tv{recv_timeout_ms / 1000, (recv_timeout_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    BW_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0);
  }

  ~RawConn() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until `want` frames have arrived (or EOF / socket timeout).
  std::vector<FrameParser::Frame> ReadFrames(size_t want) {
    std::vector<FrameParser::Frame> frames;
    char buf[65536];
    while (frames.size() < want) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      if (!parser_.Feed(buf, static_cast<size_t>(n), &frames)) break;
    }
    return frames;
  }

  // True if the server closes the connection (EOF) within the socket
  // timeout, consuming any trailing frames first.
  bool WaitEof() {
    char buf[65536];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) return true;
      if (n < 0) return false;
      std::vector<FrameParser::Frame> frames;
      parser_.Feed(buf, static_cast<size_t>(n), &frames);
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameParser parser_;
};

std::string KnnFrame(uint64_t id, const geom::Vec& query, uint32_t k,
                     uint32_t deadline_us = 0, uint32_t batch_size = 0) {
  KnnRequest req;
  req.query = query;
  req.k = k;
  req.batch_size = batch_size;
  std::string payload;
  EncodeKnnRequest(req, &payload);
  FrameHeader h;
  h.type = MsgType::kKnn;
  h.request_id = id;
  h.deadline_us = deadline_us;
  return EncodeFrame(h, payload);
}

std::vector<gist::Neighbor> TruthKnn(const gist::Tree& tree,
                                     const geom::Vec& query, size_t k) {
  gist::TraversalStats stats;
  auto result = tree.KnnSearch(query, k, &stats);
  BW_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(*result);
}

std::vector<gist::Neighbor> TruthRange(const gist::Tree& tree,
                                       const geom::Vec& query,
                                       double radius) {
  gist::TraversalStats stats;
  auto result = tree.RangeSearch(query, radius, &stats);
  BW_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(*result);
}

std::multiset<uint64_t> RidSet(const std::vector<gist::Neighbor>& neighbors) {
  std::multiset<uint64_t> rids;
  for (const auto& n : neighbors) rids.insert(n.rid);
  return rids;
}

// Spin-polls `pred` for up to `limit`; returns whether it became true.
bool PollUntil(milliseconds limit, const std::function<bool()>& pred) {
  const auto deadline = steady_clock::now() + limit;
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Codec unit tests (no sockets)
// ---------------------------------------------------------------------------

TEST(WireCodec, HeaderRoundTripsAndRejectsCorruption) {
  FrameHeader h;
  h.type = MsgType::kKnn;
  h.flags = kFlagDegraded;
  h.status = 7;
  h.request_id = 0x1122334455667788ull;
  h.deadline_us = 2500;
  const std::string payload = "hello blobworld";
  const std::string frame = EncodeFrame(h, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  FrameHeader decoded;
  ASSERT_EQ(DecodeFrameHeader(
                reinterpret_cast<const uint8_t*>(frame.data()),
                kMaxPayloadBytes, &decoded),
            HeaderVerdict::kOk);
  EXPECT_EQ(decoded.type, h.type);
  EXPECT_EQ(decoded.flags, h.flags);
  EXPECT_EQ(decoded.status, h.status);
  EXPECT_EQ(decoded.request_id, h.request_id);
  EXPECT_EQ(decoded.deadline_us, h.deadline_us);
  EXPECT_EQ(decoded.payload_len, payload.size());
  EXPECT_TRUE(PayloadCrcOk(decoded, payload));
  EXPECT_FALSE(PayloadCrcOk(decoded, "hello blobw0rld"));

  // Any flipped header byte must be caught by magic or CRC validation.
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    FrameHeader out;
    EXPECT_NE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(bad.data()),
                  kMaxPayloadBytes, &out),
              HeaderVerdict::kOk)
        << "flip at byte " << i;
  }

  // A declared length over the receiver's cap is rejected before any
  // allocation, even with a valid CRC.
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(
                reinterpret_cast<const uint8_t*>(frame.data()),
                static_cast<uint32_t>(payload.size() - 1), &out),
            HeaderVerdict::kOversized);
}

TEST(WireCodec, PayloadRoundTrips) {
  KnnRequest knn;
  knn.query = geom::Vec{0.25, -1.5, 3.0, 0.125};
  knn.k = 17;
  knn.batch_size = 9;
  knn.budget_radius = 0.75;
  std::string buf;
  EncodeKnnRequest(knn, &buf);
  KnnRequest knn2;
  ASSERT_TRUE(DecodeKnnRequest(buf, &knn2));
  EXPECT_EQ(knn2.query, knn.query);
  EXPECT_EQ(knn2.k, knn.k);
  EXPECT_EQ(knn2.batch_size, knn.batch_size);
  EXPECT_DOUBLE_EQ(knn2.budget_radius, knn.budget_radius);

  RangeRequest range;
  range.query = geom::Vec{1, 2, 3, 4};
  range.radius = 0.5;
  buf.clear();
  EncodeRangeRequest(range, &buf);
  RangeRequest range2;
  ASSERT_TRUE(DecodeRangeRequest(buf, &range2));
  EXPECT_EQ(range2.query, range.query);
  EXPECT_DOUBLE_EQ(range2.radius, range.radius);

  MutateRequest mut;
  mut.point = geom::Vec{9, 8, 7, 6};
  mut.rid = 424242;
  buf.clear();
  EncodeMutateRequest(mut, &buf);
  MutateRequest mut2;
  ASSERT_TRUE(DecodeMutateRequest(buf, &mut2));
  EXPECT_EQ(mut2.point, mut.point);
  EXPECT_EQ(mut2.rid, mut.rid);

  std::vector<gist::Neighbor> neighbors;
  for (uint64_t i = 0; i < 5; ++i) {
    neighbors.push_back({i * 3, 0.1 * static_cast<double>(i), 0});
  }
  buf.clear();
  EncodeResultBatch(neighbors, 1, 3, &buf);
  std::vector<gist::Neighbor> batch;
  ASSERT_TRUE(DecodeResultBatch(buf, &batch));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].rid, neighbors[1].rid);
  EXPECT_DOUBLE_EQ(batch[2].distance, neighbors[3].distance);

  FinalInfo info;
  info.total_results = 100;
  info.pages_skipped = 3;
  info.server_latency_us = 1234.5;
  info.mutation_tag = 88;
  info.message = "deadline";
  buf.clear();
  EncodeFinalInfo(info, &buf);
  FinalInfo info2;
  ASSERT_TRUE(DecodeFinalInfo(buf, &info2));
  EXPECT_EQ(info2.total_results, info.total_results);
  EXPECT_EQ(info2.pages_skipped, info.pages_skipped);
  EXPECT_DOUBLE_EQ(info2.server_latency_us, info.server_latency_us);
  EXPECT_EQ(info2.mutation_tag, info.mutation_tag);
  EXPECT_EQ(info2.message, info.message);

  std::vector<std::pair<std::string, double>> fields = {
      {"qps", 12.5}, {"completed", 42}, {"write_state", 1}};
  buf.clear();
  EncodeStatsReply(fields, &buf);
  std::vector<std::pair<std::string, double>> fields2;
  ASSERT_TRUE(DecodeStatsReply(buf, &fields2));
  EXPECT_EQ(fields2, fields);

  HealthReply health;
  health.write_state = 2;
  health.writes_enabled = true;
  health.write_degraded = true;
  health.generation = 7;
  health.completed = 1000;
  health.pages_quarantined = 3;
  health.uptime_seconds = 12.25;
  buf.clear();
  EncodeHealthReply(health, &buf);
  HealthReply health2;
  ASSERT_TRUE(DecodeHealthReply(buf, &health2));
  EXPECT_EQ(health2.write_state, health.write_state);
  EXPECT_EQ(health2.writes_enabled, health.writes_enabled);
  EXPECT_EQ(health2.write_degraded, health.write_degraded);
  EXPECT_EQ(health2.generation, health.generation);
  EXPECT_DOUBLE_EQ(health2.uptime_seconds, health.uptime_seconds);
}

TEST(WireCodec, TruncatedPayloadsNeverDecode) {
  KnnRequest knn;
  knn.query = geom::Vec{1, 2, 3, 4};
  knn.k = 5;
  std::string buf;
  EncodeKnnRequest(knn, &buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    KnnRequest out;
    EXPECT_FALSE(DecodeKnnRequest(std::string_view(buf.data(), len), &out))
        << "prefix " << len;
  }
  // Trailing garbage is just as malformed as missing bytes.
  KnnRequest out;
  EXPECT_FALSE(DecodeKnnRequest(buf + "x", &out));
}

TEST(WireCodec, StatusRegistryIsStableBothWays) {
  for (int raw = 0; raw <= static_cast<int>(StatusCode::kResourceExhausted);
       ++raw) {
    const auto code = static_cast<StatusCode>(raw);
    EXPECT_EQ(StatusCodeFromWire(StatusCodeToWire(code)), code);
    EXPECT_LT(StatusCodeToWire(code), 64) << "service codes live in 0..63";
  }
  // The three net-tier verdicts are distinct from every service code
  // and from each other — that is the whole point of the registry.
  EXPECT_NE(kWireQuotaExceeded, StatusCodeToWire(StatusCode::kResourceExhausted));
  EXPECT_NE(kWireQuotaExceeded, kWireShuttingDown);
  EXPECT_NE(kWireShuttingDown, kWireBadFrame);
  EXPECT_EQ(WireStatusToStatus(kWireQuotaExceeded, "q").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(WireStatusToStatus(kWireShuttingDown, "s").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(WireStatusToStatus(kWireBadFrame, "b").code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(WireStatusToStatus(0, "").ok());
}

TEST(FrameParserTest, ReassemblesAcrossArbitraryChunking) {
  std::string stream;
  for (uint64_t id = 1; id <= 3; ++id) {
    stream += KnnFrame(id, geom::Vec{1, 2, 3, 4}, 10);
  }
  // Byte-at-a-time is the worst case an epoll read can produce.
  FrameParser parser;
  std::vector<FrameParser::Frame> frames;
  for (char c : stream) {
    ASSERT_TRUE(parser.Feed(&c, 1, &frames));
  }
  ASSERT_EQ(frames.size(), 3u);
  for (uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(frames[id - 1].header.request_id, id);
    KnnRequest req;
    EXPECT_TRUE(DecodeKnnRequest(frames[id - 1].payload, &req));
  }
  EXPECT_EQ(parser.pending_bytes(), 0u);

  // Garbage after valid frames: frames already complete were delivered,
  // then the parser latches broken.
  FrameParser dirty;
  std::string tail = KnnFrame(9, geom::Vec{1, 2, 3, 4}, 5);
  tail += "this is definitely not a frame header, not even close!";
  frames.clear();
  EXPECT_FALSE(dirty.Feed(tail.data(), tail.size(), &frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.request_id, 9u);
  EXPECT_TRUE(dirty.broken());
  EXPECT_FALSE(dirty.error().empty());
  // Once broken, further input is ignored.
  std::string more = KnnFrame(10, geom::Vec{1, 2, 3, 4}, 5);
  frames.clear();
  EXPECT_FALSE(dirty.Feed(more.data(), more.size(), &frames));
  EXPECT_TRUE(frames.empty());
}

TEST(RateLimiterTest, BucketAdmitsBurstThenThrottles) {
  ResultRateLimiter limiter;
  limiter.Configure(100);
  auto now = steady_clock::now();
  EXPECT_TRUE(limiter.Admit(now));
  limiter.Charge(250);  // cost known only after completion.
  EXPECT_FALSE(limiter.Admit(now));
  // 1.6s of refill at 100/s clears the 150-token debt.
  EXPECT_TRUE(limiter.Admit(now + milliseconds(1600)));
  // Unlimited when rate is 0.
  ResultRateLimiter open;
  open.Configure(0);
  open.Charge(1e9);
  EXPECT_TRUE(open.Admit(now));
}

// ---------------------------------------------------------------------------
// End-to-end correctness over the wire
// ---------------------------------------------------------------------------

TEST(NetEndToEnd, KnnMatchesInProcessGroundTruth) {
  NetHarness h;
  auto client = h.Connect();
  for (size_t q = 0; q < 16; ++q) {
    const geom::Vec& focus = h.vectors[(q * 97) % h.vectors.size()];
    auto reply = client->Knn(focus, 10);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok()) << WireStatusName(reply->wire_status);
    const auto truth = TruthKnn(*h.tree, focus, 10);
    ASSERT_EQ(reply->neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_NEAR(reply->neighbors[i].distance, truth[i].distance, 1e-9);
    }
    EXPECT_EQ(RidSet(reply->neighbors), RidSet(truth));
    EXPECT_GT(reply->server_latency_us, 0);
  }
}

TEST(NetEndToEnd, RangeMatchesInProcessGroundTruth) {
  NetHarness h;
  auto client = h.Connect();
  for (size_t q = 0; q < 8; ++q) {
    const geom::Vec& focus = h.vectors[(q * 131) % h.vectors.size()];
    auto reply = client->Range(focus, 0.25);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok());
    const auto truth = TruthRange(*h.tree, focus, 0.25);
    EXPECT_EQ(RidSet(reply->neighbors), RidSet(truth));
  }
}

TEST(NetEndToEnd, PipelinedRequestsAwaitOutOfOrder) {
  NetHarness h;
  auto client = h.Connect();
  constexpr size_t kPipelined = 12;
  std::vector<uint64_t> ids;
  std::vector<geom::Vec> foci;
  for (size_t q = 0; q < kPipelined; ++q) {
    foci.push_back(h.vectors[(q * 211) % h.vectors.size()]);
    auto id = client->SubmitKnn(foci.back(), 8);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Await newest-first: every other id's frames get parked and must
  // survive until their own await.
  for (size_t q = kPipelined; q-- > 0;) {
    auto reply = client->AwaitQuery(ids[q]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok());
    const auto truth = TruthKnn(*h.tree, foci[q], 8);
    EXPECT_EQ(RidSet(reply->neighbors), RidSet(truth));
  }
}

TEST(NetEndToEnd, StreamingHonorsClientBatchSize) {
  NetHarness h;
  RawConn raw(h.server->port());
  const geom::Vec& focus = h.vectors[42];
  ASSERT_TRUE(raw.Send(KnnFrame(5, focus, 100, 0, 7)));
  // ceil(100/7) batch frames plus the terminal frame.
  auto frames = raw.ReadFrames(16);
  ASSERT_EQ(frames.size(), 16u);
  size_t results = 0;
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    ASSERT_EQ(frames[i].header.type, MsgType::kResultBatch);
    ASSERT_EQ(frames[i].header.request_id, 5u);
    std::vector<gist::Neighbor> batch;
    ASSERT_TRUE(DecodeResultBatch(frames[i].payload, &batch));
    EXPECT_LE(batch.size(), 7u);
    results += batch.size();
  }
  EXPECT_EQ(results, 100u);
  const auto& last = frames.back();
  EXPECT_EQ(last.header.type, MsgType::kFinal);
  EXPECT_TRUE(last.header.flags & kFlagFinal);
  EXPECT_EQ(last.header.status, 0);
  FinalInfo info;
  ASSERT_TRUE(DecodeFinalInfo(last.payload, &info));
  EXPECT_EQ(info.total_results, 100u);
}

TEST(NetEndToEnd, DeadlinePropagatesIntoStreamTruncation) {
  service::ServiceOptions sopts;
  sopts.worker_pool_pages = 2;
  sopts.io_delay_us = 500;  // every page access costs 500 us.
  NetHarness h(sopts);
  auto client = h.Connect();
  QueryLimits limits;
  limits.deadline_us = 1;
  auto reply = client->Knn(h.vectors[7], 400, limits);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok());
  EXPECT_TRUE(reply->truncated);
  EXPECT_LT(reply->neighbors.size(), 400u);
  // Without a deadline the same query completes in full.
  auto full = client->Knn(h.vectors[7], 400);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_EQ(full->neighbors.size(), 400u);
}

TEST(NetEndToEnd, DeadlineExpiryMidStreamLeavesTheConnectionReusable) {
  service::ServiceOptions sopts;
  sopts.worker_pool_pages = 2;
  sopts.io_delay_us = 500;
  NetHarness h(sopts);
  auto client = h.Connect();

  // A deadline-doomed stream pipelined ahead of a full one: the doomed
  // reply truncates mid-stream while the full query's frames park
  // behind it.
  QueryLimits limits;
  limits.deadline_us = 1;
  auto doomed = client->SubmitKnn(h.vectors[7], 400, limits);
  ASSERT_TRUE(doomed.ok());
  auto full = client->SubmitKnn(h.vectors[7], 400);
  ASSERT_TRUE(full.ok());

  auto cut = client->AwaitQuery(*doomed);
  ASSERT_TRUE(cut.ok()) << cut.status().ToString();
  ASSERT_TRUE(cut->ok());
  EXPECT_TRUE(cut->truncated);
  EXPECT_LT(cut->neighbors.size(), 400u);

  // The frames parked behind the truncated stream are intact: the full
  // query still answers completely and exactly.
  auto whole = client->AwaitQuery(*full);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_TRUE(whole->ok());
  EXPECT_FALSE(whole->truncated);
  ASSERT_EQ(whole->neighbors.size(), 400u);
  EXPECT_EQ(RidSet(whole->neighbors),
            RidSet(TruthKnn(*h.tree, h.vectors[7], 400)));

  // And nothing from the cut stream leaks forward: the same connection
  // keeps serving exact answers.
  for (size_t q = 0; q < 3; ++q) {
    const geom::Vec& focus = h.vectors[(q * 61) % h.vectors.size()];
    auto again = client->Knn(focus, 10);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ASSERT_TRUE(again->ok());
    EXPECT_FALSE(again->truncated);
    EXPECT_EQ(RidSet(again->neighbors), RidSet(TruthKnn(*h.tree, focus, 10)));
  }
}

TEST(NetEndToEnd, DeadlineExpiryDuringIncrementalStreamRetiresCleanly) {
  service::ServiceOptions sopts;
  sopts.worker_pool_pages = 2;
  sopts.io_delay_us = 500;
  NetHarness h(sopts);
  auto client = h.Connect();

  // Consume the doomed stream one result at a time — the shard
  // router's frontier pattern — until the server's deadline cuts it.
  QueryLimits limits;
  limits.deadline_us = 1;
  auto id = client->SubmitKnn(h.vectors[11], 400, limits);
  ASSERT_TRUE(id.ok());
  size_t consumed = 0;
  while (true) {
    auto next = client->NextResult(*id);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    ++consumed;
  }
  auto fin = client->FinishQuery(*id);
  ASSERT_TRUE(fin.ok()) << fin.status().ToString();
  ASSERT_TRUE(fin->ok());
  EXPECT_TRUE(fin->truncated);
  EXPECT_TRUE(fin->neighbors.empty());  // everything was consumed above.
  EXPECT_LT(consumed, 400u);

  // The retired stream leaves nothing behind: a fresh full query on
  // the same connection is complete and exact.
  auto again = client->Knn(h.vectors[11], 400);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(again->ok());
  EXPECT_FALSE(again->truncated);
  ASSERT_EQ(again->neighbors.size(), 400u);
  EXPECT_EQ(RidSet(again->neighbors),
            RidSet(TruthKnn(*h.tree, h.vectors[11], 400)));
}

TEST(NetEndToEnd, StatsAndHealthCrossTheWire) {
  NetHarness h;
  auto client = h.Connect();
  ASSERT_TRUE(client->Knn(h.vectors[1], 5).ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  bool saw_completed = false, saw_net = false;
  for (const auto& [name, value] : *stats) {
    if (name == "completed") {
      saw_completed = true;
      EXPECT_GE(value, 1);
    }
    if (name == "net.requests") {
      saw_net = true;
      EXPECT_GE(value, 1);
    }
  }
  EXPECT_TRUE(saw_completed);
  EXPECT_TRUE(saw_net);

  auto health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->write_state,
            static_cast<uint8_t>(service::WriteState::kServing));
  EXPECT_FALSE(health->writes_enabled);
  EXPECT_GE(health->completed, 1u);
  EXPECT_GE(health->uptime_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Malformed input hardening
// ---------------------------------------------------------------------------

TEST(NetHardening, UnknownTypeIsRequestFatalOnly) {
  NetHarness h;
  RawConn raw(h.server->port());
  FrameHeader bogus;
  bogus.type = static_cast<MsgType>(42);
  bogus.request_id = 31337;
  ASSERT_TRUE(raw.Send(EncodeFrame(bogus, "whatever")));
  auto frames = raw.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kFinal);
  EXPECT_EQ(frames[0].header.request_id, 31337u);
  EXPECT_EQ(frames[0].header.status,
            StatusCodeToWire(StatusCode::kNotSupported));
  // The connection survived: a real query still works on it.
  ASSERT_TRUE(raw.Send(KnnFrame(2, h.vectors[0], 3)));
  frames = raw.ReadFrames(2);  // one batch + final.
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames.back().header.status, 0);
}

TEST(NetHardening, MalformedPayloadIsRequestFatalOnly) {
  NetHarness h;
  RawConn raw(h.server->port());
  FrameHeader header;
  header.type = MsgType::kKnn;
  header.request_id = 7;
  ASSERT_TRUE(raw.Send(EncodeFrame(header, "not a knn payload")));
  auto frames = raw.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status,
            StatusCodeToWire(StatusCode::kInvalidArgument));
  // Wrong dimensionality is caught the same way (semantic, not framing).
  KnnRequest req;
  req.query = geom::Vec{1.0, 2.0};  // tree is 4-d.
  req.k = 3;
  std::string payload;
  EncodeKnnRequest(req, &payload);
  FrameHeader h2;
  h2.type = MsgType::kKnn;
  h2.request_id = 8;
  ASSERT_TRUE(raw.Send(EncodeFrame(h2, payload)));
  frames = raw.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status,
            StatusCodeToWire(StatusCode::kInvalidArgument));
  // Still alive.
  ASSERT_TRUE(raw.Send(KnnFrame(9, h.vectors[0], 2)));
  frames = raw.ReadFrames(2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames.back().header.status, 0);
}

TEST(NetHardening, BadHeaderCrcIsConnectionFatal) {
  NetHarness h;
  RawConn raw(h.server->port());
  std::string frame = KnnFrame(1, h.vectors[0], 5);
  frame[9] = static_cast<char>(frame[9] ^ 0xFF);  // inside request_id.
  ASSERT_TRUE(raw.Send(frame));
  // Best-effort kWireBadFrame terminal frame, then EOF.
  auto frames = raw.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status, kWireBadFrame);
  EXPECT_TRUE(raw.WaitEof());
  EXPECT_TRUE(PollUntil(milliseconds(2000), [&] {
    return h.server->stats().closed_bad_frame >= 1;
  }));
}

TEST(NetHardening, BadPayloadCrcIsConnectionFatal) {
  NetHarness h;
  RawConn raw(h.server->port());
  std::string frame = KnnFrame(1, h.vectors[0], 5);
  frame.back() = static_cast<char>(frame.back() ^ 0x01);
  ASSERT_TRUE(raw.Send(frame));
  auto frames = raw.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status, kWireBadFrame);
  EXPECT_TRUE(raw.WaitEof());
}

TEST(NetHardening, OversizedDeclaredLengthIsConnectionFatal) {
  ServerOptions nopts;
  nopts.max_payload_bytes = 1024;
  NetHarness h({}, nopts);
  RawConn raw(h.server->port());
  // A valid frame (good CRCs) whose declared payload exceeds the
  // server's cap must be refused without buffering the payload.
  FrameHeader header;
  header.type = MsgType::kKnn;
  header.request_id = 1;
  const std::string big(2048, 'x');
  ASSERT_TRUE(raw.Send(EncodeFrame(header, big)));
  auto frames = raw.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status, kWireBadFrame);
  EXPECT_TRUE(raw.WaitEof());
}

TEST(NetHardening, TruncatedFrameThenDisconnectIsClean) {
  NetHarness h;
  {
    RawConn raw(h.server->port());
    const std::string frame = KnnFrame(1, h.vectors[0], 5);
    ASSERT_TRUE(raw.Send(frame.substr(0, 11)));  // half a header.
    raw.Close();
  }
  {
    RawConn raw(h.server->port());
    const std::string frame = KnnFrame(1, h.vectors[0], 5);
    ASSERT_TRUE(raw.Send(frame.substr(0, kFrameHeaderBytes + 3)));
    raw.Close();
  }
  // The server noticed both EOFs and is entirely unbothered.
  EXPECT_TRUE(PollUntil(milliseconds(2000), [&] {
    return h.server->stats().closed_eof >= 2;
  }));
  auto client = h.Connect();
  EXPECT_TRUE(client->Knn(h.vectors[3], 4).ok());
}

TEST(NetHardening, MidStreamDisconnectLeavesServerHealthy) {
  NetHarness h;
  for (int round = 0; round < 4; ++round) {
    RawConn raw(h.server->port());
    // Pipeline several streamed queries, read only a few bytes of the
    // response, then vanish — the canonical rude client.
    for (uint64_t id = 1; id <= 8; ++id) {
      ASSERT_TRUE(raw.Send(KnnFrame(id, h.vectors[id], 300)));
    }
    char buf[128];
    (void)!::read(raw.fd(), buf, sizeof(buf));
    raw.Close();
  }
  EXPECT_TRUE(PollUntil(milliseconds(5000), [&] {
    return h.server->stats().active_connections == 0;
  }));
  auto client = h.Connect();
  auto reply = client->Knn(h.vectors[5], 10);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->ok());
}

TEST(NetHardening, DeterministicFrameFuzzerNeverKillsServer) {
  NetHarness h;
  std::mt19937_64 rng(0xB10B5EED);
  const std::string valid = KnnFrame(1, h.vectors[0], 20);
  for (int iter = 0; iter < 60; ++iter) {
    // Short receive timeout: a hostile half-frame leaves the server
    // (correctly) waiting for more bytes, and the fuzzer should not.
    RawConn raw(h.server->port(), 0, /*recv_timeout_ms=*/50);
    const int shape = static_cast<int>(rng() % 4);
    std::string bytes;
    switch (shape) {
      case 0: {  // pure noise.
        const size_t len = 1 + rng() % 700;
        bytes.resize(len);
        for (auto& c : bytes) c = static_cast<char>(rng());
        break;
      }
      case 1: {  // valid frame with one mutated byte.
        bytes = valid;
        bytes[rng() % bytes.size()] ^= static_cast<char>(1 + rng() % 255);
        break;
      }
      case 2: {  // truncated valid frame.
        bytes = valid.substr(0, rng() % valid.size());
        break;
      }
      default: {  // valid frame followed by noise.
        bytes = valid;
        for (size_t i = 0; i < 64; ++i) {
          bytes.push_back(static_cast<char>(rng()));
        }
        break;
      }
    }
    if (!bytes.empty()) raw.Send(bytes);
    // Drain whatever the server answers (error frames, results, EOF);
    // half the time just slam the connection shut instead.
    if (rng() % 2) {
      char buf[4096];
      (void)!::read(raw.fd(), buf, sizeof(buf));
    }
    raw.Close();
  }
  // After 60 hostile connections the server still serves good clients.
  EXPECT_TRUE(PollUntil(milliseconds(5000), [&] {
    return h.server->stats().active_connections == 0;
  }));
  auto client = h.Connect();
  auto reply = client->Knn(h.vectors[9], 10);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok());
  const auto truth = TruthKnn(*h.tree, h.vectors[9], 10);
  EXPECT_EQ(RidSet(reply->neighbors), RidSet(truth));
}

// ---------------------------------------------------------------------------
// Quotas, shedding, and write-state surfacing
// ---------------------------------------------------------------------------

TEST(NetShedding, InflightQuotaShedsWithDistinctCode) {
  service::ServiceOptions sopts;
  sopts.start_paused = true;  // hold queries so in-flight stays high.
  ServerOptions nopts;
  nopts.quota.max_inflight = 2;
  NetHarness h(sopts, nopts);
  auto client = h.Connect();
  std::vector<uint64_t> ids;
  for (size_t q = 0; q < 6; ++q) {
    auto id = client->SubmitKnn(h.vectors[q], 5);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // The first two occupy the in-flight slots; the rest are shed at the
  // net tier without ever touching the paused service.
  EXPECT_TRUE(PollUntil(milliseconds(2000), [&] {
    return h.server->stats().shed_quota >= 4;
  }));
  h.service->Resume();
  size_t ok = 0, shed = 0;
  for (uint64_t id : ids) {
    auto reply = client->AwaitQuery(id);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->ok()) {
      ++ok;
    } else {
      EXPECT_EQ(reply->wire_status, kWireQuotaExceeded);
      EXPECT_NE(reply->wire_status,
                StatusCodeToWire(StatusCode::kResourceExhausted));
      EXPECT_EQ(reply->status.code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, 4u);
  EXPECT_EQ(h.service->Snapshot().submitted, 2u);
}

TEST(NetShedding, ResultRateQuotaIsPerConnection) {
  ServerOptions nopts;
  nopts.quota.max_results_per_sec = 50;
  NetHarness h({}, nopts);
  auto client = h.Connect();
  // First query rides the one-second burst allowance; its 100 results
  // leave the bucket deeply negative.
  auto first = client->Knn(h.vectors[0], 100);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->ok());
  auto second = client->Knn(h.vectors[1], 5);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->wire_status, kWireQuotaExceeded);
  // A different connection has its own bucket.
  auto other = h.Connect();
  auto fresh = other->Knn(h.vectors[2], 5);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->ok());
}

TEST(NetShedding, DispatchQueueFullShedsResourceExhausted) {
  service::ServiceOptions sopts;
  sopts.start_paused = true;
  ServerOptions nopts;
  nopts.dispatch_threads = 1;
  nopts.dispatch_queue_capacity = 1;
  nopts.quota.max_inflight = 64;
  NetHarness h(sopts, nopts);
  auto client = h.Connect();
  std::vector<uint64_t> ids;
  for (size_t q = 0; q < 8; ++q) {
    auto id = client->SubmitKnn(h.vectors[q], 3);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_TRUE(PollUntil(milliseconds(2000), [&] {
    return h.server->stats().shed_dispatch >= 1;
  }));
  h.service->Resume();
  size_t ok = 0, shed = 0;
  for (uint64_t id : ids) {
    auto reply = client->AwaitQuery(id);
    ASSERT_TRUE(reply.ok());
    if (reply->ok()) {
      ++ok;
    } else {
      EXPECT_EQ(reply->wire_status,
                StatusCodeToWire(StatusCode::kResourceExhausted));
      ++shed;
    }
  }
  EXPECT_GE(shed, 1u);
  // At least the first request (already executing or queued) completes;
  // whether a second slipped into the queue before the dispatcher
  // popped the first is a benign race.
  EXPECT_GE(ok, 1u);
}

TEST(NetShedding, SlowReaderIsDoomedWithoutStallingOthers) {
  ServerOptions nopts;
  nopts.max_outbox_bytes = 32 * 1024;
  nopts.quota.max_inflight = 64;
  NetHarness h({}, nopts);

  // The stalled reader: tiny receive window, 40 pipelined k=2000
  // queries (~32 KiB of response each), and it never reads a byte.
  RawConn stalled(h.server->port(), /*rcvbuf_bytes=*/4096);
  for (uint64_t id = 1; id <= 40; ++id) {
    ASSERT_TRUE(stalled.Send(KnnFrame(id, h.vectors[id], 2000)));
  }

  // Meanwhile a well-behaved client must make normal progress.
  auto client = h.Connect();
  for (size_t q = 0; q < 20; ++q) {
    auto reply = client->Knn(h.vectors[q * 3], 10);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok());
  }
  // And the stalled connection gets doomed for outbox overflow rather
  // than wedging a dispatch thread.
  EXPECT_TRUE(PollUntil(milliseconds(10000), [&] {
    return h.server->stats().closed_overflow >= 1;
  })) << "stalled reader was never doomed";
}

TEST(NetWritePath, MutationsOnReadOnlyServiceAreInvalid) {
  NetHarness h;  // no write path configured at all.
  auto client = h.Connect();
  auto reply = client->Insert(h.vectors[0], 999999);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->wire_status,
            StatusCodeToWire(StatusCode::kInvalidArgument));
}

// Durable, write-enabled service behind the server: full mutation flow
// plus the kServing -> kReadOnly -> kServing arc surfaced as distinct
// wire codes.
TEST(NetWritePath, InsertDeleteAndReadOnlyStatesCrossTheWire) {
  const std::string base = ::testing::TempDir() + "/net_write_test";
  std::remove((base + ".bwpf").c_str());
  std::remove((base + ".bwwal").c_str());
  auto vectors = TestVectors(1200);
  core::IndexBuildOptions build;
  build.am = "xjb";
  build.xjb_x = 0;
  auto index = core::BuildDurableIndex(vectors, build, base + ".bwpf",
                                       base + ".bwwal");
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  std::atomic<uint64_t> free_bytes{8ull << 30};
  service::ServiceOptions sopts;
  sopts.write.enabled = true;
  sopts.write.batch_size = 1;
  sopts.write.min_free_bytes = 1ull << 30;
  sopts.write.free_space_probe = [&] { return free_bytes.load(); };
  sopts.write.retry_interval = milliseconds(5);
  service::QueryService service(std::move(*index), sopts);
  Server server(&service, ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Insert a brand-new point and find it over the wire.
  geom::Vec probe{0.111, 0.222, 0.333, 0.444};
  auto ack = (*client)->Insert(probe, 777777);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_TRUE(ack->ok()) << WireStatusName(ack->wire_status);
  EXPECT_GT(ack->tag, 0u);
  auto found = (*client)->Knn(probe, 1);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->neighbors.size(), 1u);
  EXPECT_EQ(found->neighbors[0].rid, 777777u);
  EXPECT_NEAR(found->neighbors[0].distance, 0.0, 1e-9);

  // Trip the disk-space watchdog: the service degrades to kReadOnly and
  // write requests shed with kResourceExhausted — which a client can
  // tell apart from its own quota (kWireQuotaExceeded).
  free_bytes.store(0);
  auto parked_id = (*client)->SubmitInsert(probe, 777778);
  ASSERT_TRUE(parked_id.ok());
  ASSERT_TRUE(PollUntil(milliseconds(5000), [&] {
    return service.write_state() == service::WriteState::kReadOnly;
  }));
  auto blocked = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(blocked.ok());
  auto shed = (*blocked)->Insert(probe, 777779);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->wire_status,
            StatusCodeToWire(StatusCode::kResourceExhausted));
  EXPECT_NE(shed->wire_status, kWireQuotaExceeded);
  auto health = (*blocked)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->write_state,
            static_cast<uint8_t>(service::WriteState::kReadOnly));
  // Reads keep flowing in kReadOnly.
  EXPECT_TRUE((*blocked)->Knn(vectors[5], 5).ok());

  // Space returns; the parked mutation commits and the service resumes.
  free_bytes.store(8ull << 30);
  auto parked = (*client)->AwaitMutation(*parked_id);
  ASSERT_TRUE(parked.ok()) << parked.status().ToString();
  EXPECT_TRUE(parked->ok()) << WireStatusName(parked->wire_status);
  EXPECT_TRUE(PollUntil(milliseconds(5000), [&] {
    return service.write_state() == service::WriteState::kServing;
  }));

  // Delete round trip, and a second delete of the same rid is NotFound.
  auto del = (*client)->Remove(probe, 777777);
  ASSERT_TRUE(del.ok());
  EXPECT_TRUE(del->ok());
  auto again = (*client)->Remove(probe, 777777);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->wire_status, StatusCodeToWire(StatusCode::kNotFound));

  server.Shutdown();
  std::remove((base + ".bwpf").c_str());
  std::remove((base + ".bwwal").c_str());
}

// ---------------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------------

TEST(NetShutdown, DrainsInflightStreamsBeforeClosing) {
  service::ServiceOptions sopts;
  sopts.start_paused = true;
  ServerOptions nopts;
  nopts.drain_timeout = milliseconds(10000);
  NetHarness h(sopts, nopts);
  auto client = h.Connect();
  std::vector<uint64_t> ids;
  std::vector<geom::Vec> foci;
  for (size_t q = 0; q < 5; ++q) {
    foci.push_back(h.vectors[(q * 53) % h.vectors.size()]);
    auto id = client->SubmitKnn(foci.back(), 12);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Wait until all five are inside the server, then start draining
  // while they are still unanswered.
  ASSERT_TRUE(PollUntil(milliseconds(2000), [&] {
    return h.server->stats().requests >= 5;
  }));
  std::thread shutdown_thread([&] { h.server->Shutdown(); });
  std::this_thread::sleep_for(milliseconds(100));
  h.service->Resume();
  // Every in-flight stream completes with full results before the
  // server lets go of the connection.
  for (size_t q = 0; q < ids.size(); ++q) {
    auto reply = client->AwaitQuery(ids[q]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply->ok()) << WireStatusName(reply->wire_status);
    const auto truth = TruthKnn(*h.tree, foci[q], 12);
    EXPECT_EQ(RidSet(reply->neighbors), RidSet(truth));
  }
  shutdown_thread.join();
  // The drained server refuses new work.
  auto late = client->Knn(h.vectors[0], 3);
  if (late.ok()) {
    EXPECT_EQ(late->wire_status, kWireShuttingDown);
  }  // else: transport error because the connection is already gone.
}

TEST(NetShutdown, NewRequestsDuringDrainAreShedWithDistinctCode) {
  service::ServiceOptions sopts;
  sopts.start_paused = true;
  NetHarness h(sopts);
  auto client = h.Connect();
  auto held = client->SubmitKnn(h.vectors[0], 5);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(PollUntil(milliseconds(2000), [&] {
    return h.server->stats().requests >= 1;
  }));
  std::thread shutdown_thread([&] { h.server->Shutdown(); });
  // A request arriving mid-drain gets the explicit shutting-down code.
  ASSERT_TRUE(PollUntil(milliseconds(2000), [&] {
    return h.server->stats().shed_shutdown >= 1 ||
           [&] {
             auto id = client->SubmitKnn(h.vectors[1], 5);
             if (!id.ok()) return true;  // connection already torn down.
             auto reply = client->AwaitQuery(*id);
             return reply.ok() && reply->wire_status == kWireShuttingDown;
           }();
  }));
  h.service->Resume();
  shutdown_thread.join();
}

// ---------------------------------------------------------------------------
// kHello handshake: version negotiation and feature flags
// ---------------------------------------------------------------------------

TEST(WireCodec, HelloPayloadsRoundTripAndTolerateTrailingBytes) {
  HelloRequest req;
  req.major = 1;
  req.minor = 7;
  req.features = kFeatureStreaming | kFeatureRouter;
  req.peer = "net_test";
  std::string payload;
  EncodeHelloRequest(req, &payload);
  HelloRequest decoded;
  ASSERT_TRUE(DecodeHelloRequest(payload, &decoded));
  EXPECT_EQ(decoded.major, req.major);
  EXPECT_EQ(decoded.minor, req.minor);
  EXPECT_EQ(decoded.features, req.features);
  EXPECT_EQ(decoded.peer, req.peer);

  // Forward compatibility: a future minor may append fields, so
  // trailing bytes must be tolerated...
  ASSERT_TRUE(DecodeHelloRequest(payload + "future-fields", &decoded));
  // ...but truncation is still malformed.
  EXPECT_FALSE(DecodeHelloRequest(
      std::string_view(payload).substr(0, 3), &decoded));

  HelloReply reply;
  reply.major = 1;
  reply.minor = 2;
  reply.features = kServerFeatures;
  reply.peer = "bwserver";
  payload.clear();
  EncodeHelloReply(reply, &payload);
  HelloReply reply_decoded;
  ASSERT_TRUE(DecodeHelloReply(payload, &reply_decoded));
  EXPECT_EQ(reply_decoded.major, reply.major);
  EXPECT_EQ(reply_decoded.minor, reply.minor);
  EXPECT_EQ(reply_decoded.features, reply.features);
  EXPECT_EQ(reply_decoded.peer, reply.peer);
  EXPECT_FALSE(DecodeHelloReply(
      std::string_view(payload).substr(0, 5), &reply_decoded));
}

TEST(NetHello, HandshakeNegotiatesVersionAndFeatures) {
  NetHarness h;
  auto client = h.Connect();  // ClientOptions default: handshake on.
  const HelloReply& hello = client->server_hello();
  EXPECT_EQ(hello.major, kWireVersionMajor);
  EXPECT_EQ(hello.minor, kWireVersionMinor);
  EXPECT_EQ(hello.peer, "bwserver");
  // The harness service is read-only: streaming is advertised, writes
  // are masked off.
  EXPECT_NE(hello.features & kFeatureStreaming, 0u);
  EXPECT_EQ(hello.features & kFeatureWrites, 0u);

  // The handshaken connection serves queries normally.
  auto reply = client->Knn(h.vectors[0], 5);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok());
  EXPECT_EQ(RidSet(reply->neighbors), RidSet(TruthKnn(*h.tree,
                                                      h.vectors[0], 5)));
}

TEST(NetHello, ClientWithoutHandshakeKeepsPreHelloBehavior) {
  NetHarness h;
  ClientOptions copts;
  copts.handshake = false;
  auto client = h.Connect(copts);
  EXPECT_EQ(client->server_hello().features, 0u);  // never negotiated.
  auto reply = client->Knn(h.vectors[1], 3);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->ok());
}

TEST(NetHello, MajorMismatchAnswersOnceThenDoomsConnection) {
  NetHarness h;
  RawConn conn(h.server->port());
  HelloRequest req;
  req.major = kWireVersionMajor + 1;  // a protocol we do not speak.
  req.peer = "time-traveler";
  std::string payload;
  EncodeHelloRequest(req, &payload);
  FrameHeader header;
  header.type = MsgType::kHello;
  header.request_id = 1;
  ASSERT_TRUE(conn.Send(EncodeFrame(header, payload)));

  // Exactly one frame pair: a kHelloReply carrying the server's own
  // version with the mismatch status, then EOF.
  auto frames = conn.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kHelloReply);
  EXPECT_EQ(frames[0].header.status, kWireVersionMismatch);
  HelloReply reply;
  ASSERT_TRUE(DecodeHelloReply(frames[0].payload, &reply));
  EXPECT_EQ(reply.major, kWireVersionMajor);
  EXPECT_TRUE(conn.WaitEof());
}

}  // namespace
}  // namespace bw::net
