// Randomized operation fuzzing: every access method is driven through a
// long random interleaving of inserts, deletes, k-NN and range queries,
// checked after every step against a brute-force reference set. This is
// the heaviest structural stress in the suite: splits, condensation and
// predicate maintenance all interact here.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pages/page_file.h"
#include "core/index_factory.h"
#include "gist/tree.h"
#include "tests/test_helpers.h"

namespace bw {
namespace {

class FuzzOpsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzOpsTest, RandomInterleavingMatchesReference) {
  const size_t kDim = 3;
  core::IndexBuildOptions options;
  options.am = GetParam();
  options.xjb_x = 4;
  options.amap_samples = 32;

  pages::PageFile file(2048);
  auto extension = core::MakeExtension(kDim, options, 2000);
  ASSERT_TRUE(extension.ok());
  gist::Tree tree(&file, std::move(extension).value());

  Rng rng(2024);
  std::map<gist::Rid, geom::Vec> reference;
  gist::Rid next_rid = 0;
  const auto pool = testing::MakeClusteredPoints(500, kDim, 5, 17);

  for (int step = 0; step < 1500; ++step) {
    const uint32_t dice = static_cast<uint32_t>(rng.NextBelow(100));
    if (dice < 55 || reference.empty()) {
      // Insert (weighted toward growth).
      const geom::Vec& p = pool[rng.NextBelow(pool.size())];
      ASSERT_TRUE(tree.Insert(p, next_rid).ok()) << "step " << step;
      reference.emplace(next_rid, p);
      ++next_rid;
    } else if (dice < 80) {
      // Delete a random live rid.
      auto it = reference.begin();
      std::advance(it, rng.NextBelow(reference.size()));
      ASSERT_TRUE(tree.Delete(it->second, it->first).ok())
          << "step " << step << " rid " << it->first;
      reference.erase(it);
    } else if (dice < 90) {
      // k-NN spot check.
      const geom::Vec& q = pool[rng.NextBelow(pool.size())];
      const size_t k = std::min<size_t>(1 + rng.NextBelow(10),
                                        reference.size());
      auto result = tree.KnnSearch(q, k, nullptr);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->size(), k);
      // Reference k-th distance.
      std::vector<double> dists;
      dists.reserve(reference.size());
      for (const auto& [rid, p] : reference) dists.push_back(p.DistanceTo(q));
      std::sort(dists.begin(), dists.end());
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR((*result)[i].distance, dists[i], 1e-4)
            << "step " << step << " rank " << i;
      }
    } else {
      // Range query spot check.
      const geom::Vec& q = pool[rng.NextBelow(pool.size())];
      const double radius = rng.Uniform(0.5, 10.0);
      auto result = tree.RangeSearch(q, radius, nullptr);
      ASSERT_TRUE(result.ok());
      std::multiset<gist::Rid> got;
      for (const auto& n : *result) got.insert(n.rid);
      std::multiset<gist::Rid> expected;
      for (const auto& [rid, p] : reference) {
        if (p.DistanceTo(q) <= radius) expected.insert(rid);
      }
      EXPECT_EQ(got, expected) << "step " << step;
    }

    if (step % 250 == 0) {
      ASSERT_TRUE(tree.Validate().ok())
          << "step " << step << ": " << tree.Validate().ToString();
      EXPECT_EQ(tree.size(), reference.size());
    }
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_EQ(tree.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(AllAms, FuzzOpsTest,
                         ::testing::Values("rtree", "rstar", "sstree",
                                           "srtree", "amap", "jb", "xjb"));

}  // namespace
}  // namespace bw
