// Tests for the concurrent query service: result identity between
// concurrent and serial execution, admission control (reject and
// blocking backpressure), streaming limits, metrics aggregation, and
// lifecycle. The whole file doubles as the ThreadSanitizer target for
// the shared-index read path (build with -DBW_SANITIZE=thread).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "service/query_service.h"
#include "storage/disk_page_file.h"
#include "storage/store.h"
#include "tests/test_helpers.h"

namespace bw {
namespace {

using service::OverflowPolicy;
using service::QueryService;
using service::ServiceOptions;
using service::StreamOptions;

std::unique_ptr<core::BuiltIndex> BuildSmallIndex(const char* am = "rtree",
                                                  size_t n = 2000,
                                                  uint64_t seed = 11) {
  const auto points = testing::MakeClusteredPoints(n, 5, 8, seed);
  core::IndexBuildOptions options;
  options.am = am;
  options.xjb_x = 6;
  auto built = core::BuildIndex(points, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(*built);
}

std::vector<gist::Rid> Rids(const std::vector<gist::Neighbor>& neighbors) {
  std::vector<gist::Rid> rids;
  rids.reserve(neighbors.size());
  for (const auto& n : neighbors) rids.push_back(n.rid);
  return rids;
}

// ---------------------------------------------------------------------------
// Result identity: concurrent == serial
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, ConcurrentKnnMatchesSerial) {
  const auto points = testing::MakeClusteredPoints(3000, 5, 10, 77);
  core::IndexBuildOptions build;
  auto built = core::BuildIndex(points, build);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const gist::Tree& tree = (*built)->tree();

  constexpr size_t kQueries = 64;
  constexpr size_t kK = 25;
  std::vector<std::vector<gist::Rid>> expected(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    auto serial = tree.KnnSearch(points[i * 37 % points.size()], kK, nullptr);
    ASSERT_TRUE(serial.ok());
    expected[i] = Rids(*serial);
  }

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 16;
  options.overflow = OverflowPolicy::kBlock;
  QueryService service(tree, options);

  std::vector<QueryService::ResponseFuture> futures;
  futures.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    auto future = service.SubmitKnn(points[i * 37 % points.size()], kK);
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  }
  for (size_t i = 0; i < kQueries; ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(Rids(response->neighbors), expected[i]) << "query " << i;
    EXPECT_GT(response->metrics.latency_us, 0.0);
    EXPECT_GT(response->metrics.leaf_accesses, 0u);
  }
}

TEST(QueryServiceTest, ConcurrentRangeMatchesSerial) {
  auto built = BuildSmallIndex("xjb");
  const gist::Tree& tree = built->tree();

  // Pick radii from serial k-NN distances so result sets are non-empty.
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);
  std::vector<QueryService::ResponseFuture> futures;
  std::vector<std::vector<gist::Rid>> expected;
  ServiceOptions options;
  options.num_workers = 3;
  options.overflow = OverflowPolicy::kBlock;
  QueryService service(tree, options);
  for (size_t i = 0; i < 16; ++i) {
    const geom::Vec& query = points[i * 101 % points.size()];
    auto knn = tree.KnnSearch(query, 20, nullptr);
    ASSERT_TRUE(knn.ok());
    const double radius = (*knn)[19].distance;
    auto serial = tree.RangeSearch(query, radius, nullptr);
    ASSERT_TRUE(serial.ok());
    auto rids = Rids(*serial);
    std::sort(rids.begin(), rids.end());
    expected.push_back(std::move(rids));
    auto future = service.SubmitRange(query, radius);
    ASSERT_TRUE(future.ok());
    futures.push_back(std::move(*future));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto rids = Rids(response->neighbors);
    std::sort(rids.begin(), rids.end());
    EXPECT_EQ(rids, expected[i]) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, QueueFullReturnsUnavailable) {
  auto built = BuildSmallIndex();
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.overflow = OverflowPolicy::kReject;
  options.start_paused = true;  // nothing dequeues until Resume().
  QueryService service(built->tree(), options);
  const auto points = testing::MakeClusteredPoints(16, 5, 2, 99);

  std::vector<QueryService::ResponseFuture> admitted;
  for (int i = 0; i < 4; ++i) {
    auto future = service.SubmitKnn(points[i], 5);
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    admitted.push_back(std::move(*future));
  }
  EXPECT_EQ(service.queue_depth(), 4u);

  // Fifth submission finds the queue full and is rejected with a Status.
  auto rejected = service.SubmitKnn(points[4], 5);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  service.Resume();
  for (auto& f : admitted) {
    auto response = f.get();
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  }
  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.submitted, 4u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.completed, 4u);
}

TEST(QueryServiceTest, BlockingBackpressureUnblocksOnResume) {
  auto built = BuildSmallIndex();
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.overflow = OverflowPolicy::kBlock;
  options.start_paused = true;
  QueryService service(built->tree(), options);
  const auto points = testing::MakeClusteredPoints(8, 5, 2, 5);

  std::vector<QueryService::ResponseFuture> futures;
  for (int i = 0; i < 2; ++i) {
    auto f = service.SubmitKnn(points[i], 5);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }

  // The third submitter blocks until Resume() frees queue space.
  std::atomic<bool> submitted{false};
  std::thread blocked([&] {
    auto f = service.SubmitKnn(points[2], 5);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    submitted.store(true);
    futures.push_back(std::move(*f));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted.load());  // still blocked while paused.

  service.Resume();
  blocked.join();
  EXPECT_TRUE(submitted.load());
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(service.Snapshot().rejected, 0u);
}

// ---------------------------------------------------------------------------
// Streaming limits
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, StreamBudgetRadiusMatchesRange) {
  auto built = BuildSmallIndex("rtree", 2500, 13);
  const gist::Tree& tree = built->tree();
  const auto points = testing::MakeClusteredPoints(2500, 5, 8, 13);
  const geom::Vec& query = points[42];

  auto knn = tree.KnnSearch(query, 40, nullptr);
  ASSERT_TRUE(knn.ok());
  const double radius = (*knn)[39].distance;
  auto range = tree.RangeSearch(query, radius, nullptr);
  ASSERT_TRUE(range.ok());
  auto expected = Rids(*range);
  std::sort(expected.begin(), expected.end());

  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(tree, options);
  StreamOptions stream;
  stream.budget_radius = radius;
  auto future = service.SubmitStream(query, stream);
  ASSERT_TRUE(future.ok());
  auto response = future->get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->metrics.truncated);
  auto got = Rids(response->neighbors);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  // Nearest-first order within the budget.
  for (size_t i = 1; i < response->neighbors.size(); ++i) {
    EXPECT_GE(response->neighbors[i].distance,
              response->neighbors[i - 1].distance - 1e-12);
  }
}

TEST(QueryServiceTest, StreamMaxResultsReturnsExactPrefix) {
  auto built = BuildSmallIndex("rtree", 1500, 29);
  const auto points = testing::MakeClusteredPoints(1500, 5, 8, 29);
  const geom::Vec& query = points[7];

  auto knn = built->tree().KnnSearch(query, 10, nullptr);
  ASSERT_TRUE(knn.ok());

  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(built->tree(), options);
  StreamOptions stream;
  stream.max_results = 10;
  auto future = service.SubmitStream(query, stream);
  ASSERT_TRUE(future.ok());
  auto response = future->get();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->neighbors.size(), 10u);
  EXPECT_FALSE(response->metrics.truncated);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(response->neighbors[i].rid, (*knn)[i].rid);
    EXPECT_NEAR(response->neighbors[i].distance, (*knn)[i].distance, 1e-12);
  }
}

TEST(QueryServiceTest, StreamDeadlineTruncates) {
  auto built = BuildSmallIndex("rtree", 4000, 61);
  const auto points = testing::MakeClusteredPoints(4000, 5, 8, 61);

  ServiceOptions options;
  options.num_workers = 1;
  options.io_delay_us = 50;       // make every page miss cost wall time
  options.worker_pool_pages = 1;  // and make nearly every fetch a miss.
  QueryService service(built->tree(), options);

  StreamOptions stream;
  stream.deadline_us = 1;  // expires essentially immediately.
  auto future = service.SubmitStream(points[3], stream);
  ASSERT_TRUE(future.ok());
  auto response = future->get();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->metrics.truncated);
  EXPECT_LT(response->neighbors.size(), 4000u);
  EXPECT_EQ(service.Snapshot().truncated_streams, 1u);
}

// ---------------------------------------------------------------------------
// Metrics, lifecycle, mixed stress
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, SnapshotAggregates) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);
  ServiceOptions options;
  options.num_workers = 2;
  options.overflow = OverflowPolicy::kBlock;
  QueryService service(built->tree(), options);

  constexpr size_t kN = 40;
  std::vector<QueryService::ResponseFuture> futures;
  for (size_t i = 0; i < kN; ++i) {
    auto f = service.SubmitKnn(points[i * 17 % points.size()], 15);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.submitted, kN);
  EXPECT_EQ(snap.completed, kN);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_GT(snap.leaf_accesses, 0u);
  EXPECT_GT(snap.internal_accesses, 0u);
  EXPECT_GT(snap.pool_hits + snap.pool_misses, 0u);
  EXPECT_GT(snap.elapsed_seconds, 0.0);
  EXPECT_GT(snap.qps, 0.0);
  EXPECT_GT(snap.mean_latency_us, 0.0);
  EXPECT_LE(snap.p50_latency_us, snap.p95_latency_us);
  EXPECT_LE(snap.p95_latency_us, snap.p99_latency_us);
}

TEST(QueryServiceTest, SharedPoolCountersSurfaceInMetricsAndSnapshot) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);
  ServiceOptions options;
  options.num_workers = 2;
  options.shared_pool = true;       // the default, stated for clarity.
  options.shared_pool_pages = 4;    // tiny: force evictions.
  options.pool_shards = 2;
  QueryService service(built->tree(), options);

  uint64_t per_query_hits = 0, per_query_misses = 0, per_query_evictions = 0;
  for (size_t i = 0; i < 30; ++i) {
    auto response = service.Knn(points[i * 13 % points.size()], 10);
    ASSERT_TRUE(response.ok());
    per_query_hits += response->metrics.pool_hits;
    per_query_misses += response->metrics.pool_misses;
    per_query_evictions += response->metrics.pool_evictions;
  }
  EXPECT_GT(per_query_misses, 0u);
  EXPECT_GT(per_query_evictions, 0u);  // 4 pages cannot hold the tree.

  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.pool_shards, 2u);
  // Per-query deltas and the aggregate are the same counters, summed.
  EXPECT_EQ(snap.pool_hits, per_query_hits);
  EXPECT_EQ(snap.pool_misses, per_query_misses);
  EXPECT_EQ(snap.pool_evictions, per_query_evictions);
}

TEST(QueryServiceTest, SharedPoolWarmsAcrossWorkers) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);
  ServiceOptions options;
  options.num_workers = 4;
  options.overflow = OverflowPolicy::kBlock;
  QueryService service(built->tree(), options);

  // Same query many times: after the first execution every page it
  // touches is resident for all workers, so misses stay bounded by one
  // traversal's page set while hits grow with repetition.
  std::vector<QueryService::ResponseFuture> futures;
  for (size_t i = 0; i < 32; ++i) {
    auto f = service.SubmitKnn(points[42], 10);
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  const auto snap = service.Snapshot();
  EXPECT_GT(snap.pool_hits, snap.pool_misses);
}

TEST(QueryServiceTest, PrivatePoolModeKeepsLegacyLayout) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);
  ServiceOptions options;
  options.num_workers = 2;
  options.shared_pool = false;
  options.worker_pool_pages = 64;
  QueryService service(built->tree(), options);

  auto response = service.Knn(points[5], 10);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response->metrics.pool_misses, 0u);
  EXPECT_EQ(response->metrics.pool_contention, 0u);  // no shared locks.

  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.pool_shards, 0u);  // 0 marks private per-worker pools.
  EXPECT_EQ(snap.pool_contention, 0u);
}

TEST(QueryServiceTest, SyncKnnConvenience) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);
  QueryService service(built->tree(), ServiceOptions{});
  auto response = service.Knn(points[0], 12);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->neighbors.size(), 12u);
  EXPECT_EQ(response->neighbors[0].rid, 0u);  // the query point itself.
}

TEST(QueryServiceTest, ShutdownRejectsNewSubmissionsAndDrains) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(16, 5, 2, 3);
  ServiceOptions options;
  options.num_workers = 1;
  options.start_paused = true;
  QueryService service(built->tree(), options);

  auto queued = service.SubmitKnn(points[0], 5);
  ASSERT_TRUE(queued.ok());
  service.Shutdown();  // drains the paused queue before joining.
  auto response = queued->get();
  EXPECT_TRUE(response.ok()) << response.status().ToString();

  auto after = service.SubmitKnn(points[1], 5);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  service.Shutdown();  // idempotent.
}

TEST(QueryServiceTest, OwnedIndexConstructor) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);
  QueryService service(std::move(built), ServiceOptions{});
  auto response = service.Knn(points[5], 8);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors.size(), 8u);
}

// Multi-client mixed-kind stress: the primary ThreadSanitizer target.
// Many client threads hammer one service with k-NN, range, and stream
// requests concurrently; every response must be well-formed.
// ---------------------------------------------------------------------------
// Serving through faults: watchdog deadlines and degraded-mode queries
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::unique_ptr<core::DurableIndex> BuildDurableSmallIndex(
    const std::string& tag) {
  const auto points = testing::MakeClusteredPoints(800, 3, 6, 29);
  core::IndexBuildOptions options;
  options.am = "rtree";
  options.page_bytes = 1024;
  auto built = core::BuildDurableIndex(points, options,
                                       TempPath("svc_" + tag + ".bwpf"),
                                       TempPath("svc_" + tag + ".bwwal"));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(*built);
}

TEST(QueryServiceFaultTest, DeadlineExpiresDuringStorageRead) {
  auto built = BuildSmallIndex();
  const auto points = testing::MakeClusteredPoints(2000, 5, 8, 11);

  ServiceOptions options;
  options.num_workers = 1;
  options.worker_pool_pages = 0;  // every page access is a miss.
  options.io_delay_us = 20000;    // one simulated read dwarfs the deadline.
  QueryService service(built->tree(), options);

  StreamOptions stream;
  stream.max_results = 50;
  stream.deadline_us = 2000;
  auto future = service.SubmitStream(points[0], stream);
  ASSERT_TRUE(future.ok());
  auto response = future->get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // The deadline expired inside the very first 20 ms storage read, so the
  // watchdog — not the between-pages check — must have cut the stream:
  // the query comes back truncated well before one full read completes.
  EXPECT_TRUE(response->metrics.truncated);
  EXPECT_LT(response->metrics.latency_us, 15000.0);
  const auto snap = service.Snapshot();
  EXPECT_GE(snap.watchdog_expirations, 1u);
  EXPECT_EQ(snap.truncated_streams, 1u);
}

TEST(QueryServiceFaultTest, QuarantineDegradesThenHealsExact) {
  auto index = BuildDurableSmallIndex("degrade");
  ASSERT_NE(index, nullptr);
  storage::DiskPageFile* disk = index->store().disk();

  ServiceOptions options;
  options.num_workers = 2;
  options.fault_budget = disk->page_count() + 1;
  QueryService service(index.get(), options);
  const geom::Vec query = testing::MakeUniformPoints(1, 3, 5)[0];

  auto baseline = service.Knn(query, 10);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->degraded());
  ASSERT_EQ(baseline->neighbors.size(), 10u);

  // Quarantine every page: the root fetch itself is skipped, so the
  // answer degrades all the way to flagged-and-empty — available, never
  // silently wrong.
  for (pages::PageId id = 0; id < disk->page_count(); ++id) {
    disk->health().Quarantine(id);
  }
  auto degraded = service.Knn(query, 10);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded());
  EXPECT_GE(degraded->metrics.pages_skipped, 1u);
  EXPECT_TRUE(degraded->neighbors.empty());

  for (pages::PageId id = 0; id < disk->page_count(); ++id) {
    disk->health().Release(id);
  }
  auto healed = service.Knn(query, 10);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->degraded());
  EXPECT_EQ(Rids(healed->neighbors), Rids(baseline->neighbors));

  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.degraded_responses, 1u);
  EXPECT_GE(snap.pages_skipped, 1u);
  EXPECT_EQ(snap.store_pages_quarantined, 0u);
  EXPECT_EQ(snap.store_quarantines_total, disk->page_count());
  EXPECT_EQ(snap.store_repairs_total, disk->page_count());
}

TEST(QueryServiceFaultTest, ZeroFaultBudgetFailsClosed) {
  auto index = BuildDurableSmallIndex("failclosed");
  ASSERT_NE(index, nullptr);
  storage::DiskPageFile* disk = index->store().disk();

  ServiceOptions options;  // fault_budget = 0: pre-fault-tolerance behavior.
  options.num_workers = 1;
  QueryService service(index.get(), options);
  for (pages::PageId id = 0; id < disk->page_count(); ++id) {
    disk->health().Quarantine(id);
  }
  const geom::Vec query = testing::MakeUniformPoints(1, 3, 5)[0];
  auto response = service.Knn(query, 10);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.Snapshot().failed, 1u);
}

TEST(QueryServiceTest, MixedKindStress) {
  auto built = BuildSmallIndex("xjb", 2500, 47);
  const auto points = testing::MakeClusteredPoints(2500, 5, 8, 47);
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 8;
  options.overflow = OverflowPolicy::kBlock;
  options.worker_pool_pages = 32;
  QueryService service(built->tree(), options);

  constexpr size_t kClients = 6;
  constexpr size_t kPerClient = 20;
  std::atomic<uint64_t> results{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const geom::Vec& q = points[(c * 131 + i * 17) % points.size()];
        auto future = [&]() -> Result<QueryService::ResponseFuture> {
          switch ((c + i) % 3) {
            case 0:
              return service.SubmitKnn(q, 10);
            case 1:
              return service.SubmitRange(q, 5.0);
            default: {
              StreamOptions stream;
              stream.max_results = 15;
              return service.SubmitStream(q, stream);
            }
          }
        }();
        ASSERT_TRUE(future.ok()) << future.status().ToString();
        auto response = future->get();
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        for (size_t j = 1; j < response->neighbors.size(); ++j) {
          ASSERT_GE(response->neighbors[j].distance,
                    response->neighbors[j - 1].distance - 1e-12);
        }
        results.fetch_add(response->neighbors.size());
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GT(results.load(), 0u);
  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.submitted, kClients * kPerClient);
  EXPECT_EQ(snap.completed, kClients * kPerClient);
  EXPECT_EQ(snap.failed, 0u);
}

// ---------------------------------------------------------------------------
// Serving through writes: the online mutation path
// ---------------------------------------------------------------------------

constexpr size_t kSeedPoints = 300;  // rids 0..299; online inserts follow.

core::IndexBuildOptions WriteIndexOpts() {
  core::IndexBuildOptions options;
  options.am = "rtree";
  options.page_bytes = 1024;
  return options;
}

std::unique_ptr<core::DurableIndex> BuildWritableIndex(
    const std::string& base, const std::string& wal,
    storage::StoreOptions store_options = storage::StoreOptions()) {
  const auto points = testing::MakeClusteredPoints(kSeedPoints, 3, 6, 31);
  auto built = core::BuildDurableIndex(points, WriteIndexOpts(), base, wal,
                                       store_options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built.ok() ? std::move(*built) : nullptr;
}

/// Spins (bounded) until the service reaches `want`.
void AwaitWriteState(const QueryService& service, service::WriteState want) {
  for (int i = 0; i < 5000 && service.write_state() != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.write_state(), want);
}

TEST(QueryServiceWriteTest, OnlineInsertsAckDurableAndQueryable) {
  const std::string base = TempPath("svcw_online.bwpf");
  const std::string wal = TempPath("svcw_online.bwwal");
  auto index = BuildWritableIndex(base, wal);
  ASSERT_NE(index, nullptr);

  constexpr size_t kInserts = 40;
  const auto extra = testing::MakeClusteredPoints(kInserts, 3, 4, 91);
  {
    ServiceOptions options;
    options.num_workers = 2;
    options.write.enabled = true;
    options.write.batch_size = 8;
    QueryService service(index.get(), options);

    std::vector<QueryService::MutationFuture> futures;
    for (size_t i = 0; i < kInserts; ++i) {
      auto future = service.SubmitInsert(extra[i], kSeedPoints + i);
      ASSERT_TRUE(future.ok()) << future.status().ToString();
      futures.push_back(std::move(*future));
    }
    for (auto& future : futures) {
      auto outcome = future.get();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_GT(outcome->tag, 0u);  // every ack names its durable batch.
    }
    // Every acked insert answers queries: its own location returns it.
    for (size_t i = 0; i < kInserts; ++i) {
      auto response = service.Knn(extra[i], 3);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      const auto rids = Rids(response->neighbors);
      EXPECT_NE(std::find(rids.begin(), rids.end(),
                          static_cast<gist::Rid>(kSeedPoints + i)),
                rids.end())
          << "insert " << i;
    }
    const auto snap = service.Snapshot();
    EXPECT_TRUE(snap.writes_enabled);
    EXPECT_EQ(snap.write_state, service::WriteState::kServing);
    EXPECT_FALSE(snap.write_degraded);
    EXPECT_EQ(snap.writes_submitted, kInserts);
    EXPECT_EQ(snap.writes_acked, kInserts);
    EXPECT_EQ(snap.writes_failed, 0u);
    EXPECT_EQ(snap.writes_rejected, 0u);
    EXPECT_GT(snap.commit_batches, 0u);
    EXPECT_GT(snap.generation, 0u);  // reader-visible batch handoffs.
    EXPECT_GT(snap.mean_write_latency_us, 0.0);
    EXPECT_GE(snap.p99_write_latency_us, snap.p50_write_latency_us);
    service.Shutdown();
  }
  // Ack == durable: a fresh process recovers every acknowledged insert.
  index.reset();
  auto recovered = core::OpenDurableIndex(base, wal, WriteIndexOpts());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->tree().size(), kSeedPoints + kInserts);
}

TEST(QueryServiceWriteTest, DeleteResolvesNotFoundForAbsentPairs) {
  const std::string base = TempPath("svcw_delete.bwpf");
  const std::string wal = TempPath("svcw_delete.bwwal");
  auto index = BuildWritableIndex(base, wal);
  ASSERT_NE(index, nullptr);

  ServiceOptions options;
  options.num_workers = 1;
  options.write.enabled = true;
  QueryService service(index.get(), options);

  const auto extra = testing::MakeClusteredPoints(2, 3, 4, 92);
  auto inserted = service.SubmitInsert(extra[0], kSeedPoints);
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(inserted->get().ok());

  // Deleting the pair we just inserted succeeds and hides it.
  auto removed = service.SubmitDelete(extra[0], kSeedPoints);
  ASSERT_TRUE(removed.ok());
  ASSERT_TRUE(removed->get().ok());
  auto response = service.Knn(extra[0], 3);
  ASSERT_TRUE(response.ok());
  const auto rids = Rids(response->neighbors);
  EXPECT_EQ(std::find(rids.begin(), rids.end(),
                      static_cast<gist::Rid>(kSeedPoints)),
            rids.end());

  // An absent pair resolves NotFound — but the batch itself commits, so
  // the service keeps serving writes afterwards.
  auto absent = service.SubmitDelete(extra[1], 999999);
  ASSERT_TRUE(absent.ok());
  auto outcome = absent->get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.write_state(), service::WriteState::kServing);
}

TEST(QueryServiceWriteTest, WriteAdmissionControl) {
  const std::string base = TempPath("svcw_admit.bwpf");
  const std::string wal = TempPath("svcw_admit.bwwal");
  auto index = BuildWritableIndex(base, wal);
  ASSERT_NE(index, nullptr);
  const geom::Vec point = testing::MakeUniformPoints(1, 3, 5)[0];

  {
    // Writes not enabled: submission is a caller error, not a transient.
    QueryService service(index.get(), ServiceOptions{});
    auto future = service.SubmitInsert(point, 777);
    ASSERT_FALSE(future.ok());
    EXPECT_EQ(future.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ServiceOptions options;
    options.write.enabled = true;
    QueryService service(index.get(), options);
    service.Shutdown();
    auto future = service.SubmitInsert(point, 777);
    ASSERT_FALSE(future.ok());
    EXPECT_EQ(future.status().code(), StatusCode::kUnavailable);
  }
}

TEST(QueryServiceWriteTest, SpaceWatchdogTripsReadOnlyThenAutoResumes) {
  const std::string base = TempPath("svcw_watchdog.bwpf");
  const std::string wal = TempPath("svcw_watchdog.bwwal");
  auto index = BuildWritableIndex(base, wal);
  ASSERT_NE(index, nullptr);

  std::atomic<uint64_t> free_bytes{0};  // the disk starts exhausted.
  ServiceOptions options;
  options.num_workers = 2;
  options.write.enabled = true;
  options.write.min_free_bytes = 1 << 20;
  options.write.free_space_probe = [&free_bytes] {
    return free_bytes.load();
  };
  options.write.retry_interval = std::chrono::milliseconds(2);
  QueryService service(index.get(), options);

  const auto extra = testing::MakeClusteredPoints(3, 3, 4, 93);
  // Admitted while still serving; the watchdog trips BEFORE any WAL
  // append for it can hit ENOSPC, and the mutation waits, not lost.
  auto pioneer = service.SubmitInsert(extra[0], kSeedPoints);
  ASSERT_TRUE(pioneer.ok()) << pioneer.status().ToString();
  AwaitWriteState(service, service::WriteState::kReadOnly);

  // New writes shed with the capacity verdict...
  auto shed = service.SubmitInsert(extra[1], kSeedPoints + 1);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  // ...while queries keep serving, flagged degraded for operators.
  auto response = service.Knn(extra[0], 5);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto snap = service.Snapshot();
  EXPECT_EQ(snap.write_state, service::WriteState::kReadOnly);
  EXPECT_TRUE(snap.write_degraded);
  EXPECT_GE(snap.writes_rejected, 1u);

  // Space returns: the service resumes itself and the waiting write
  // finally lands and acks.
  free_bytes.store(64ull << 30);
  service.ResumeWrites();
  auto outcome = pioneer->get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  AwaitWriteState(service, service::WriteState::kServing);
  snap = service.Snapshot();
  EXPECT_FALSE(snap.write_degraded);
  EXPECT_EQ(snap.writes_acked, 1u);
}

TEST(QueryServiceWriteTest, FailStoppedLogFailsWritesButServesReads) {
  const std::string base = TempPath("svcw_failstop.bwpf");
  const std::string wal = TempPath("svcw_failstop.bwwal");
  storage::FaultInjector injector;
  storage::StoreOptions store_options;
  store_options.injector = &injector;
  auto index = BuildWritableIndex(base, wal, store_options);
  ASSERT_NE(index, nullptr);

  ServiceOptions options;
  options.num_workers = 2;
  options.write.enabled = true;
  QueryService service(index.get(), options);

  const auto extra = testing::MakeClusteredPoints(3, 3, 4, 94);
  auto healthy = service.SubmitInsert(extra[0], kSeedPoints);
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(healthy->get().ok());

  // Fsyncgate mid-serve: the next WAL fsync fails, the fd fail-stops,
  // and the in-flight mutation must resolve with an error — never a
  // false ack.
  storage::FaultInjector::WriteFaultPlan plan;
  plan.sync_fail_at = 1;
  injector.ArmWrites(plan);
  auto doomed = service.SubmitInsert(extra[1], kSeedPoints + 1);
  ASSERT_TRUE(doomed.ok());
  auto outcome = doomed->get();
  ASSERT_FALSE(outcome.ok());
  AwaitWriteState(service, service::WriteState::kFailed);

  // kFailed is permanent for this process: writes shed with IoError...
  auto after = service.SubmitInsert(extra[2], kSeedPoints + 2);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kIoError);
  // ...and reads keep answering.
  auto response = service.Knn(extra[0], 5);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.write_state, service::WriteState::kFailed);
  EXPECT_TRUE(snap.write_degraded);
  EXPECT_GE(snap.writes_failed, 1u);
  EXPECT_EQ(snap.writes_acked, 1u);
}

// Readers vs the writer: the TSan-audited half of the write path. Range
// queries sweep the whole space while rid-ordered inserts stream in;
// every response must surface a *contiguous prefix* of the inserted
// rids — a reader that caught a half-applied batch would see a gap.
TEST(QueryServiceWriteTest, ReadersSeeOnlyWholeBatchPrefixes) {
  const std::string base = TempPath("svcw_prefix.bwpf");
  const std::string wal = TempPath("svcw_prefix.bwwal");
  auto index = BuildWritableIndex(base, wal);
  ASSERT_NE(index, nullptr);

  ServiceOptions options;
  options.num_workers = 3;
  options.queue_capacity = 256;
  options.write.enabled = true;
  options.write.batch_size = 8;
  options.write.queue_capacity = 512;
  QueryService service(index.get(), options);

  constexpr size_t kInserts = 128;
  const auto extra = testing::MakeClusteredPoints(kInserts, 3, 4, 53);
  const geom::Vec probe = extra[0];
  std::atomic<bool> done{false};
  std::atomic<uint64_t> prefix_violations{0};
  std::atomic<uint64_t> reads_checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto future = service.SubmitRange(probe, 1e9);  // the whole space.
        if (!future.ok()) continue;  // query queue momentarily full.
        auto response = future->get();
        if (!response.ok()) continue;
        std::vector<gist::Rid> streamed;
        for (const auto& n : response->neighbors) {
          if (n.rid >= kSeedPoints) streamed.push_back(n.rid);
        }
        std::sort(streamed.begin(), streamed.end());
        for (size_t i = 0; i < streamed.size(); ++i) {
          if (streamed[i] != kSeedPoints + i) {
            prefix_violations.fetch_add(1);
            break;
          }
        }
        reads_checked.fetch_add(1);
      }
    });
  }

  std::vector<QueryService::MutationFuture> futures;
  for (size_t i = 0; i < kInserts; ++i) {
    auto future = service.SubmitInsert(extra[i], kSeedPoints + i);
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  }
  for (auto& future : futures) {
    auto outcome = future.get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(prefix_violations.load(), 0u);
  EXPECT_GT(reads_checked.load(), 0u);
  // And the final answer holds every insert.
  auto final_read = service.Knn(probe, 1);
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(service.tree().size(), kSeedPoints + kInserts);
}

}  // namespace
}  // namespace bw
