// End-to-end crash-injection sweep over the durable storage engine: a
// real R-tree is grown insert-by-insert with per-insert commits while a
// FaultInjector kills the physical write stream at every Kth write (and,
// in separate sweeps, tears the final write or runs fuzzy checkpoints so
// crashes land inside the checkpoint protocol). After each simulated
// crash the in-memory state is thrown away, the store is recovered from
// the surviving bytes, and the recovered index must answer k-NN and
// range queries *identically* to a never-crashed reference tree built
// over exactly the durable prefix of inserts. Silent corruption (bit
// flips in base pages or WAL records) must be detected, not served.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "pages/page_file.h"
#include "core/durable_index.h"
#include "core/index_factory.h"
#include "gist/tree.h"
#include "service/query_service.h"
#include "storage/fault_injector.h"
#include "storage/file_io.h"
#include "storage/wal.h"
#include "tests/test_helpers.h"
#include "util/logging.h"

namespace bw {
namespace {

using storage::FaultInjector;

constexpr size_t kNumPoints = 250;
constexpr size_t kDim = 3;
constexpr size_t kPageBytes = 1024;

core::IndexBuildOptions IndexOpts() {
  core::IndexBuildOptions options;
  options.am = "rtree";
  options.page_bytes = kPageBytes;
  options.bulk_load = false;
  return options;
}

const std::vector<geom::Vec>& Points() {
  static const auto* points = new std::vector<geom::Vec>(
      testing::MakeClusteredPoints(kNumPoints, kDim, 6, 17));
  return *points;
}

std::vector<geom::Vec> SampleQueries() {
  std::vector<geom::Vec> queries = testing::MakeUniformPoints(3, kDim, 23);
  queries.push_back(Points()[11]);
  queries.push_back(Points()[170]);
  return queries;
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

struct BuildOutcome {
  std::unique_ptr<core::DurableIndex> index;
  size_t committed = 0;  // inserts whose Commit() returned OK.
  bool create_failed = false;
};

/// Grows the index one insert at a time, committing each insert as its
/// own batch tagged with the insert count. Stops at the first error
/// (how every simulated crash manifests to the writer).
BuildOutcome BuildInsertByInsert(const std::string& base,
                                 const std::string& wal,
                                 FaultInjector* injector,
                                 size_t checkpoint_every_commits,
                                 uint64_t wal_segment_bytes = 0,
                                 size_t n_points = kNumPoints) {
  std::remove(base.c_str());
  std::remove(wal.c_str());
  storage::StoreOptions store_options;
  store_options.injector = injector;
  store_options.checkpoint_every_commits = checkpoint_every_commits;
  store_options.wal_segment_bytes = wal_segment_bytes;

  BuildOutcome out;
  auto created = core::CreateDurableIndex(base, wal, kDim, IndexOpts(),
                                          store_options);
  if (!created.ok()) {
    out.create_failed = true;
    return out;
  }
  out.index = std::move(*created);
  const std::vector<geom::Vec>& points = Points();
  for (size_t i = 0; i < n_points && i < points.size(); ++i) {
    if (!out.index->tree().Insert(points[i], i).ok()) break;
    if (!out.index->Commit(/*tag=*/i + 1).ok()) break;
    ++out.committed;
  }
  return out;
}

/// A never-crashed reference: a plain in-memory tree over the first `n`
/// inserts, applied in the same order.
struct Reference {
  explicit Reference(size_t n) : file(kPageBytes) {
    auto extension = core::MakeExtension(kDim, IndexOpts(), n);
    BW_CHECK(extension.ok());
    tree = std::make_unique<gist::Tree>(&file, std::move(*extension));
    for (size_t i = 0; i < n; ++i) {
      BW_CHECK(tree->Insert(Points()[i], i).ok());
    }
  }
  pages::PageFile file;
  std::unique_ptr<gist::Tree> tree;
};

/// Requires `got` to answer exactly like `want`: same k-NN neighbors in
/// the same order with the same distances, same range result sets.
void ExpectIdenticalAnswers(const gist::Tree& got, const gist::Tree& want,
                            const std::string& context) {
  for (const geom::Vec& q : SampleQueries()) {
    auto a = got.KnnSearch(q, 12, nullptr);
    auto b = want.KnnSearch(q, 12, nullptr);
    ASSERT_TRUE(a.ok()) << context;
    ASSERT_TRUE(b.ok()) << context;
    ASSERT_EQ(a->size(), b->size()) << context;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].rid, (*b)[i].rid) << context << ", neighbor " << i;
      EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-9) << context;
    }

    auto ra = got.RangeSearch(q, 10.0, nullptr);
    auto rb = want.RangeSearch(q, 10.0, nullptr);
    ASSERT_TRUE(ra.ok()) << context;
    ASSERT_TRUE(rb.ok()) << context;
    auto by_rid = [](const gist::Neighbor& x, const gist::Neighbor& y) {
      return x.rid < y.rid;
    };
    std::sort(ra->begin(), ra->end(), by_rid);
    std::sort(rb->begin(), rb->end(), by_rid);
    ASSERT_EQ(ra->size(), rb->size()) << context;
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].rid, (*rb)[i].rid) << context;
      EXPECT_NEAR((*ra)[i].distance, (*rb)[i].distance, 1e-9) << context;
    }
  }
}

/// Crashes the build at physical write `crash_at`, recovers, and checks
/// the recovered index against the reference. Returns the number of
/// durable inserts.
size_t CrashRecoverCompare(const std::string& base, const std::string& wal,
                           FaultInjector::Fault fault, uint64_t crash_at,
                           size_t checkpoint_every_commits,
                           bool durable_count_is_exact,
                           uint64_t wal_segment_bytes = 0) {
  FaultInjector injector;
  injector.Arm(fault, crash_at);
  BuildOutcome crashed =
      BuildInsertByInsert(base, wal, &injector, checkpoint_every_commits,
                          wal_segment_bytes);
  const std::string context =
      "crash at write " + std::to_string(crash_at) +
      (checkpoint_every_commits != 0 ? " (checkpointing)" : "");
  EXPECT_TRUE(injector.fired()) << context;
  EXPECT_FALSE(crashed.create_failed) << context;
  crashed.index.reset();  // throw all in-memory state away.

  auto recovered = core::OpenDurableIndex(base, wal, IndexOpts());
  EXPECT_TRUE(recovered.ok())
      << context << ": " << recovered.status().ToString();
  if (!recovered.ok()) return 0;

  const size_t durable = (*recovered)->tree().size();
  if (durable_count_is_exact) {
    // Commit() returned OK exactly for the durable inserts: nothing
    // acknowledged may be lost, nothing unacknowledged may survive.
    EXPECT_EQ(durable, crashed.committed) << context;
  } else {
    // A crash inside the post-commit checkpoint fails Commit() after
    // its commit record is already durable, so recovery may legally
    // surface one more insert than was acknowledged.
    EXPECT_TRUE(durable == crashed.committed ||
                durable == crashed.committed + 1)
        << context << ": durable=" << durable
        << " committed=" << crashed.committed;
  }
  Reference reference(durable);
  ExpectIdenticalAnswers((*recovered)->tree(), *reference.tree, context);
  return durable;
}

/// Writes performed before the first insert (store creation + initial
/// meta commit + initial checkpoint); sweeps start after this prefix so
/// every crash lands in insert/commit/checkpoint traffic.
uint64_t CreatePhaseWrites(const std::string& base, const std::string& wal,
                           uint64_t wal_segment_bytes = 0) {
  std::remove(base.c_str());
  std::remove(wal.c_str());
  FaultInjector counter;  // disarmed: counts the write schedule only.
  storage::StoreOptions store_options;
  store_options.injector = &counter;
  store_options.wal_segment_bytes = wal_segment_bytes;
  auto created =
      core::CreateDurableIndex(base, wal, kDim, IndexOpts(), store_options);
  BW_CHECK(created.ok());
  return counter.writes_seen();
}

// ---------------------------------------------------------------------------
// The sweeps
// ---------------------------------------------------------------------------

TEST(CrashRecoverySweepTest, CrashAtEveryKthWriteRecoversExactly) {
  const std::string base = TempPath("sweep_crash.bwpf");
  const std::string wal = TempPath("sweep_crash.wal");

  FaultInjector dry;  // disarmed dry run measures the write schedule.
  BuildOutcome full = BuildInsertByInsert(base, wal, &dry, 0);
  ASSERT_NE(full.index, nullptr);
  ASSERT_EQ(full.committed, kNumPoints);
  const uint64_t total_writes = dry.writes_seen();
  const uint64_t first = CreatePhaseWrites(base, wal) + 1;
  ASSERT_GT(total_writes, first);

  // ~40 crash points spread over the whole build.
  const uint64_t step = std::max<uint64_t>(1, (total_writes - first) / 40);
  size_t prev_durable = 0;
  for (uint64_t crash_at = first; crash_at <= total_writes;
       crash_at += step) {
    const size_t durable =
        CrashRecoverCompare(base, wal, FaultInjector::Fault::kCrash, crash_at,
                            /*checkpoint_every_commits=*/0,
                            /*durable_count_is_exact=*/true);
    EXPECT_GE(durable, prev_durable);  // later crash, no fewer inserts.
    prev_durable = durable;
  }
  // The last write of all: everything before it must be durable.
  const size_t durable =
      CrashRecoverCompare(base, wal, FaultInjector::Fault::kCrash,
                          total_writes, 0, true);
  EXPECT_EQ(durable, kNumPoints - 1);
}

TEST(CrashRecoverySweepTest, TornWritesRecoverExactly) {
  const std::string base = TempPath("sweep_torn.bwpf");
  const std::string wal = TempPath("sweep_torn.wal");

  FaultInjector dry;
  BuildOutcome full = BuildInsertByInsert(base, wal, &dry, 0);
  ASSERT_NE(full.index, nullptr);
  const uint64_t total_writes = dry.writes_seen();
  const uint64_t first = CreatePhaseWrites(base, wal) + 1;

  // A coarser sweep (torn writes exercise the same schedule), plus the
  // torn *final* write explicitly — the classic power-loss-mid-append.
  const uint64_t step = std::max<uint64_t>(1, (total_writes - first) / 12);
  for (uint64_t crash_at = first; crash_at <= total_writes;
       crash_at += step) {
    CrashRecoverCompare(base, wal, FaultInjector::Fault::kTornWrite, crash_at,
                        0, true);
  }
  const size_t durable = CrashRecoverCompare(
      base, wal, FaultInjector::Fault::kTornWrite, total_writes, 0, true);
  EXPECT_EQ(durable, kNumPoints - 1);
}

TEST(CrashRecoverySweepTest, CrashesDuringCheckpointsRecover) {
  const std::string base = TempPath("sweep_ckpt.bwpf");
  const std::string wal = TempPath("sweep_ckpt.wal");
  constexpr size_t kCheckpointEvery = 8;

  FaultInjector dry;
  BuildOutcome full = BuildInsertByInsert(base, wal, &dry, kCheckpointEvery);
  ASSERT_NE(full.index, nullptr);
  ASSERT_EQ(full.committed, kNumPoints);
  const uint64_t total_writes = dry.writes_seen();
  const uint64_t first = CreatePhaseWrites(base, wal) + 1;

  const uint64_t step = std::max<uint64_t>(1, (total_writes - first) / 30);
  for (uint64_t crash_at = first; crash_at <= total_writes;
       crash_at += step) {
    CrashRecoverCompare(base, wal, FaultInjector::Fault::kCrash, crash_at,
                        kCheckpointEvery, /*durable_count_is_exact=*/false);
  }
}

TEST(CrashRecoverySweepTest, CrashesWithSegmentRotationRecover) {
  const std::string base = TempPath("sweep_seg.bwpf");
  const std::string wal = TempPath("sweep_seg.wal");
  constexpr uint64_t kSegmentBytes = 512;
  constexpr size_t kCheckpointEvery = 80;

  FaultInjector dry;
  BuildOutcome full =
      BuildInsertByInsert(base, wal, &dry, kCheckpointEvery, kSegmentBytes);
  ASSERT_NE(full.index, nullptr);
  ASSERT_EQ(full.committed, kNumPoints);
  full.index.reset();
  // Rotation really happened: the live log spans several segment files,
  // so every recovery below stitches batches across segment boundaries.
  auto replay = storage::ReplayWal(
      wal, [](const storage::WalRecordView&) { return Status::OK(); });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_GE(replay->segments, 3u);

  const uint64_t total_writes = dry.writes_seen();
  const uint64_t first = CreatePhaseWrites(base, wal, kSegmentBytes) + 1;
  ASSERT_GT(total_writes, first);

  // The sweep crosses segment-header writes (crash mid-rotation), the
  // checkpoint protocol, and ordinary record appends alike.
  const uint64_t step = std::max<uint64_t>(1, (total_writes - first) / 25);
  for (uint64_t crash_at = first; crash_at <= total_writes;
       crash_at += step) {
    CrashRecoverCompare(base, wal, FaultInjector::Fault::kCrash, crash_at,
                        kCheckpointEvery, /*durable_count_is_exact=*/false,
                        kSegmentBytes);
  }
}

// ---------------------------------------------------------------------------
// Targeted crashes inside one checkpoint
// ---------------------------------------------------------------------------

/// Crashes at every physical write inside one explicit Checkpoint() —
/// the dirty-frame flushes, the ping-pong header flip, and (in
/// segmented mode) the segment-seal/truncate boundary — and requires
/// recovery to surface every acknowledged insert each time.
void SweepCheckpointCrashes(const std::string& base, const std::string& wal,
                            uint64_t wal_segment_bytes) {
  constexpr size_t kSmall = 60;

  // Dry run: count the writes one explicit checkpoint performs.
  FaultInjector counter;
  BuildOutcome dry = BuildInsertByInsert(base, wal, &counter, 0,
                                         wal_segment_bytes, kSmall);
  ASSERT_NE(dry.index, nullptr);
  ASSERT_EQ(dry.committed, kSmall);
  if (wal_segment_bytes > 0) {
    auto replay = storage::ReplayWal(
        wal, [](const storage::WalRecordView&) { return Status::OK(); });
    ASSERT_TRUE(replay.ok());
    ASSERT_GE(replay->segments, 2u)
        << "segment cap too large: the checkpoint would retire nothing";
  }
  const uint64_t before = counter.writes_seen();
  ASSERT_TRUE(dry.index->Checkpoint().ok());
  const uint64_t during = counter.writes_seen() - before;
  ASSERT_GT(during, 2u);  // at least the frame flushes + the header flip.
  dry.index.reset();

  for (uint64_t k = 1; k <= during; ++k) {
    FaultInjector injector;
    BuildOutcome victim = BuildInsertByInsert(base, wal, &injector, 0,
                                              wal_segment_bytes, kSmall);
    ASSERT_NE(victim.index, nullptr);
    ASSERT_EQ(victim.committed, kSmall);
    injector.Arm(FaultInjector::Fault::kCrash, k);  // count restarts here.
    EXPECT_FALSE(victim.index->Checkpoint().ok()) << "k=" << k;
    victim.index.reset();

    // Every insert was acknowledged before the checkpoint began, so no
    // crash point inside it may lose (or invent) a single one.
    auto recovered = core::OpenDurableIndex(base, wal, IndexOpts());
    ASSERT_TRUE(recovered.ok())
        << "k=" << k << ": " << recovered.status().ToString();
    ASSERT_EQ((*recovered)->tree().size(), kSmall) << "k=" << k;
    Reference reference(kSmall);
    ExpectIdenticalAnswers((*recovered)->tree(), *reference.tree,
                           "checkpoint crash k=" + std::to_string(k));
  }
}

TEST(CrashRecoveryTest, CrashAtEveryWriteInsideACheckpointRecovers) {
  SweepCheckpointCrashes(TempPath("ckpt_flip.bwpf"),
                         TempPath("ckpt_flip.wal"),
                         /*wal_segment_bytes=*/0);
}

TEST(CrashRecoveryTest, CrashInsideSegmentSealAndTruncateRecovers) {
  // Same sweep over a segmented log: the checkpoint's WAL reset now
  // retires sealed segments and truncates the active one, and a crash
  // in there must leave a contiguous suffix of segments replay accepts.
  SweepCheckpointCrashes(TempPath("ckpt_seg.bwpf"), TempPath("ckpt_seg.wal"),
                         /*wal_segment_bytes=*/4096);
}

// ---------------------------------------------------------------------------
// Silent corruption must be detected, not served
// ---------------------------------------------------------------------------

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(c ^ 0x10, f), EOF);
  std::fclose(f);
}

TEST(CrashRecoveryTest, BitFlippedBasePageIsDetected) {
  const std::string base = TempPath("rot_base.bwpf");
  const std::string wal = TempPath("rot_base.wal");
  BuildOutcome full = BuildInsertByInsert(base, wal, nullptr, 0);
  ASSERT_NE(full.index, nullptr);
  ASSERT_TRUE(full.index->Checkpoint().ok());  // WAL empty, frames on disk.
  full.index.reset();

  // Rot one byte inside page frame 1 (frames start at 128, each
  // page_size + 32 bytes). With an empty WAL there is no redo image to
  // repair it from, so recovery must refuse.
  FlipByteAt(base, 128 + (kPageBytes + 32) + 200);
  auto recovered = core::OpenDurableIndex(base, wal, IndexOpts());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
}

TEST(CrashRecoveryTest, BitFlippedWalRecordIsDetected) {
  const std::string base = TempPath("rot_wal.bwpf");
  const std::string wal = TempPath("rot_wal.wal");
  BuildOutcome full = BuildInsertByInsert(base, wal, nullptr, 0);
  ASSERT_NE(full.index, nullptr);
  full.index.reset();  // no checkpoint: the WAL holds the index.

  std::vector<uint8_t> wal_bytes;
  ASSERT_TRUE(storage::ReadFile(wal, &wal_bytes).ok());
  ASSERT_GT(wal_bytes.size(), 1000u);
  // A flip in the middle of the log corrupts a *complete* record: that
  // is DataLoss, never mistaken for a benign torn tail.
  FlipByteAt(wal, static_cast<long>(wal_bytes.size() / 2));
  auto recovered = core::OpenDurableIndex(base, wal, IndexOpts());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Serving a recovered index
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, QueryServiceServesARecoveredIndex) {
  const std::string base = TempPath("serve.bwpf");
  const std::string wal = TempPath("serve.wal");

  FaultInjector dry;
  BuildOutcome full = BuildInsertByInsert(base, wal, &dry, 0);
  ASSERT_NE(full.index, nullptr);
  const uint64_t total_writes = dry.writes_seen();

  // Crash two thirds of the way through the build, then serve whatever
  // recovery reconstructs.
  FaultInjector injector;
  injector.Arm(FaultInjector::Fault::kCrash, total_writes * 2 / 3);
  BuildOutcome crashed = BuildInsertByInsert(base, wal, &injector, 0);
  ASSERT_TRUE(injector.fired());
  crashed.index.reset();

  auto recovered = core::OpenDurableIndex(base, wal, IndexOpts());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const size_t durable = (*recovered)->tree().size();
  ASSERT_EQ(durable, crashed.committed);
  Reference reference(durable);

  service::ServiceOptions service_options;
  service_options.num_workers = 4;
  service::QueryService service(std::move(*recovered), service_options);
  for (const geom::Vec& q : SampleQueries()) {
    auto response = service.Knn(q, 12);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto want = reference.tree->KnnSearch(q, 12, nullptr);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(response->neighbors.size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ(response->neighbors[i].rid, (*want)[i].rid);
      EXPECT_NEAR(response->neighbors[i].distance, (*want)[i].distance,
                  1e-9);
    }
  }
  const service::ServiceSnapshot snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.completed, SampleQueries().size());
  EXPECT_EQ(snapshot.failed, 0u);
}

}  // namespace
}  // namespace bw
