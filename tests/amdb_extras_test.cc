// Tests for the amdb extras: per-node loss attribution and the SVG leaf
// visualizer.

#include <gtest/gtest.h>

#include <numeric>

#include "amdb/node_report.h"
#include "amdb/visualize.h"
#include "core/index_factory.h"
#include "tests/test_helpers.h"

namespace bw::amdb {
namespace {

struct Scenario {
  std::unique_ptr<core::BuiltIndex> index;
  std::vector<geom::Vec> points;
  std::vector<QueryTrace> traces;

  explicit Scenario(const char* am, size_t dim = 5) {
    points = testing::MakeClusteredPoints(4000, dim, 8, 77);
    core::IndexBuildOptions options;
    options.am = am;
    auto built = core::BuildIndex(points, options);
    BW_CHECK_MSG(built.ok(), built.status().ToString());
    index = std::move(built).value();

    std::vector<uint32_t> foci;
    for (uint32_t f = 0; f < 30; ++f) foci.push_back(f * 131 % 4000);
    const Workload workload = Workload::NnOverFoci(points, foci, 50);
    auto executed = ExecuteWorkload(index->tree(), workload);
    BW_CHECK_MSG(executed.ok(), executed.status().ToString());
    traces = std::move(executed).value();
  }
};

TEST(NodeReportTest, AccountsEveryLeafAndAccess) {
  Scenario scenario("rtree");
  const auto nodes = AttributeNodeLosses(scenario.index->tree(), scenario.traces);
  EXPECT_EQ(nodes.size(), scenario.index->tree().Shape().LeafNodes());

  uint64_t total_accesses = 0;
  uint64_t total_results = 0;
  size_t total_entries = 0;
  for (const NodeLosses& node : nodes) {
    EXPECT_LE(node.useful_accesses, node.accesses);
    total_accesses += node.accesses;
    total_results += node.results_served;
    total_entries += node.entries;
  }
  uint64_t traced_accesses = 0;
  uint64_t traced_results = 0;
  for (const auto& trace : scenario.traces) {
    traced_accesses += trace.accessed_leaves.size();
    traced_results += trace.results.size();
  }
  EXPECT_EQ(total_accesses, traced_accesses);
  EXPECT_EQ(total_results, traced_results);
  EXPECT_EQ(total_entries, scenario.points.size());
}

TEST(NodeReportTest, SortedWorstFirstAndRenders) {
  Scenario scenario("rtree");
  const auto nodes = AttributeNodeLosses(scenario.index->tree(), scenario.traces);
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GE(nodes[i - 1].ExcessAccesses(), nodes[i].ExcessAccesses());
  }
  const std::string table = RenderWorstNodes(nodes, 5);
  EXPECT_NE(table.find("excess"), std::string::npos);
  // Header + separator + up to 5 rows.
  EXPECT_LE(std::count(table.begin(), table.end(), '\n'), 7);
}

TEST(VisualizeTest, RejectsNon2D) {
  Scenario scenario("rtree", 5);
  EXPECT_EQ(RenderLeavesSvg(scenario.index->tree()).status().code(),
            StatusCode::kInvalidArgument);
}

class Visualize2DTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Visualize2DTest, ProducesWellFormedSvg) {
  Scenario scenario(GetParam(), 2);
  VisualizeOptions options;
  options.max_leaves = 10;
  auto svg = RenderLeavesSvg(scenario.index->tree(), options);
  ASSERT_TRUE(svg.ok()) << svg.status().ToString();
  EXPECT_EQ(svg->rfind("<svg", 0), 0u);
  EXPECT_NE(svg->find("</svg>"), std::string::npos);
  // Points and at least one predicate shape were drawn.
  EXPECT_NE(svg->find("<circle"), std::string::npos);
  if (std::string(GetParam()) != "sstree") {
    EXPECT_NE(svg->find("<rect"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Ams, Visualize2DTest,
                         ::testing::Values("rtree", "amap", "jb", "xjb",
                                           "sstree", "srtree"));

TEST(VisualizeTest, WritesFile) {
  Scenario scenario("jb", 2);
  const std::string path = ::testing::TempDir() + "/leaves.svg";
  ASSERT_TRUE(WriteLeavesSvg(scenario.index->tree(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bw::amdb
