// Tests for replica catch-up (DESIGN.md §13), layer by layer: the
// storage tier's WAL shipping (tag-indexed batch reads across segment
// rotation, the wire codec), the service tier's catch-up surface (WAL
// path, snapshot path, idempotent re-apply, query shedding mid-restore,
// checksum handshake), and the router's state machine — a kStale
// replica streams what it missed from a healthy sibling, verifies
// bit-identity, and rejoins rotation kHealthy with answers identical to
// an unsharded reference, all without a rebuild or a restart.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "service/query_service.h"
#include "shard/fleet.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/shard_backend.h"
#include "storage/wal_ship.h"
#include "tests/test_helpers.h"

namespace bw {
namespace {

using service::StreamOptions;

constexpr size_t kDim = 4;

std::string TempDir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "bw_catchup_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::IndexBuildOptions TestBuild() {
  core::IndexBuildOptions build;
  build.am = "xjb";
  build.xjb_x = 0;
  return build;
}

geom::Vec MakePoint(float base) {
  geom::Vec v(kDim);
  for (size_t d = 0; d < kDim; ++d) v[d] = base + 0.25f * d;
  return v;
}

/// One durable replica of a shard slice: index + write-enabled service.
struct Replica {
  std::unique_ptr<core::DurableIndex> index;
  std::unique_ptr<service::QueryService> service;
};

Replica MakeReplica(const std::vector<geom::Vec>& points,
                    const std::vector<gist::Rid>& rids,
                    const std::string& stem,
                    storage::StoreOptions store = storage::StoreOptions()) {
  Replica r;
  auto index = shard::BuildShardIndex(points, rids, TestBuild(),
                                      stem + ".idx", stem + ".wal", store);
  BW_CHECK_MSG(index.ok(), index.status().ToString());
  r.index = std::move(*index);
  service::ServiceOptions options;
  options.write.enabled = true;
  r.service = std::make_unique<service::QueryService>(r.index.get(), options);
  return r;
}

void InsertSync(service::QueryService* service, const geom::Vec& point,
                gist::Rid rid) {
  auto future = service->SubmitInsert(point, rid);
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  auto outcome = future->get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
}

// ---------------------------------------------------------------------------
// Storage: tag-indexed WAL batch reads + the shipping codec
// ---------------------------------------------------------------------------

TEST(WalShipTest, ReadsCommittedBatchesAfterTagOldestFirst) {
  const auto points = testing::MakeClusteredPoints(60, kDim, 3, 11);
  std::vector<gist::Rid> rids(points.size());
  for (size_t i = 0; i < rids.size(); ++i) rids[i] = i;
  const std::string stem = TempDir("walship") + "/a";
  auto index = shard::BuildShardIndex(points, rids, TestBuild(),
                                      stem + ".idx", stem + ".wal");
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  // Five single-mutation batches with consecutive tags above the build.
  const uint64_t base_tag = (*index)->store().last_commit_tag();
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE((*index)->tree().Insert(MakePoint(200.0f + i), 1000 + i).ok());
    ASSERT_TRUE((*index)->Commit(base_tag + 1 + i).ok());
  }

  auto all = storage::ReadWalBatchesAfter(stem + ".wal", base_tag, 100,
                                          64u << 20);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->batches.size(), 5u);
  EXPECT_FALSE(all->more);
  EXPECT_EQ(all->last_tag, base_tag + 5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(all->batches[i].tag, base_tag + 1 + i);  // oldest first.
    EXPECT_FALSE(all->batches[i].records.empty());
  }

  // A mid-log position skips the already-applied prefix exactly.
  auto tail = storage::ReadWalBatchesAfter(stem + ".wal", base_tag + 3, 100,
                                           64u << 20);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->batches.size(), 2u);
  EXPECT_EQ(tail->batches[0].tag, base_tag + 4);

  // A tight batch budget reports `more` with the remainder unread.
  auto capped = storage::ReadWalBatchesAfter(stem + ".wal", base_tag, 2,
                                             64u << 20);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->batches.size(), 2u);
  EXPECT_TRUE(capped->more);
  EXPECT_EQ(capped->batches[1].tag, base_tag + 2);
}

TEST(WalShipTest, ReadsSpanSegmentRotation) {
  const auto points = testing::MakeClusteredPoints(40, kDim, 3, 13);
  std::vector<gist::Rid> rids(points.size());
  for (size_t i = 0; i < rids.size(); ++i) rids[i] = i;
  storage::StoreOptions store;
  store.wal_segment_bytes = 4096;  // rotate every few page images.
  const std::string stem = TempDir("walrot") + "/a";
  auto index = shard::BuildShardIndex(points, rids, TestBuild(), stem + ".idx",
                                      stem + ".wal", store);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  const uint64_t base_tag = (*index)->store().last_commit_tag();
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE((*index)->tree().Insert(MakePoint(300.0f + i), 2000 + i).ok());
    ASSERT_TRUE((*index)->Commit(base_tag + 1 + i).ok());
  }

  auto all = storage::ReadWalBatchesAfter(stem + ".wal", base_tag, 100,
                                          64u << 20);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->batches.size(), 12u);
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(all->batches[i].tag, base_tag + 1 + i);
  }
}

TEST(WalShipTest, ShippedBatchCodecRoundTripsAndRejectsTruncation) {
  storage::ShippedBatch batch;
  batch.tag = 0x1122334455667788ull;
  storage::ShippedRecord alloc;
  alloc.type = storage::WalRecordType::kAlloc;
  alloc.page_id = 7;
  batch.records.push_back(alloc);
  storage::ShippedRecord image;
  image.type = storage::WalRecordType::kPageImage;
  image.page_id = 3;
  image.payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  batch.records.push_back(image);

  std::vector<uint8_t> wire;
  storage::EncodeShippedBatch(batch, &wire);
  EXPECT_EQ(wire.size(), storage::ShippedBatchWireSize(batch));

  storage::ShippedBatch decoded;
  ASSERT_TRUE(storage::DecodeShippedBatch(wire.data(), wire.size(), &decoded));
  EXPECT_EQ(decoded.tag, batch.tag);
  ASSERT_EQ(decoded.records.size(), 2u);
  EXPECT_EQ(decoded.records[0].type, storage::WalRecordType::kAlloc);
  EXPECT_EQ(decoded.records[0].page_id, 7u);
  EXPECT_EQ(decoded.records[1].payload, image.payload);

  // Every proper prefix must fail cleanly, never over-read.
  for (size_t len = 0; len < wire.size(); ++len) {
    storage::ShippedBatch reject;
    EXPECT_FALSE(storage::DecodeShippedBatch(wire.data(), len, &reject))
        << "prefix " << len << " decoded";
  }
}

// ---------------------------------------------------------------------------
// Service: WAL path, idempotent re-apply, snapshot path
// ---------------------------------------------------------------------------

TEST(ServiceCatchupTest, WalPathConvergesAndReapplyIsIdempotent) {
  const auto points = testing::MakeClusteredPoints(80, kDim, 3, 17);
  std::vector<gist::Rid> rids(points.size());
  for (size_t i = 0; i < rids.size(); ++i) rids[i] = i;
  const std::string dir = TempDir("svc_wal");
  Replica src = MakeReplica(points, rids, dir + "/src");
  Replica dst = MakeReplica(points, rids, dir + "/dst");

  // Identically built replicas start at the same position.
  auto src_pos = src.service->Position();
  auto dst_pos = dst.service->Position();
  ASSERT_TRUE(src_pos.ok() && dst_pos.ok());
  EXPECT_EQ(src_pos->last_tag, dst_pos->last_tag);

  // The source takes writes the target never sees.
  for (int i = 0; i < 6; ++i) {
    InsertSync(src.service.get(), MakePoint(400.0f + i), 5000 + i);
  }
  src_pos = src.service->Position();
  ASSERT_TRUE(src_pos.ok());
  EXPECT_EQ(src_pos->last_tag, dst_pos->last_tag + 6);

  // Ship the missed suffix, oldest first.
  auto tail = src.service->ReadWalTail(dst_pos->last_tag, 100, 64u << 20);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_FALSE(tail->snapshot_needed);
  ASSERT_FALSE(tail->batches.empty());
  EXPECT_EQ(tail->last_tag, src_pos->last_tag);
  for (const storage::ShippedBatch& batch : tail->batches) {
    ASSERT_TRUE(dst.service->ApplyWalBatch(batch).ok());
  }

  // Re-applying an already-applied batch is an acked no-op: the driver
  // may retry after a lost ack without double-applying.
  const uint64_t converged = src_pos->last_tag;
  ASSERT_TRUE(dst.service->ApplyWalBatch(tail->batches.back()).ok());
  dst_pos = dst.service->Position();
  ASSERT_TRUE(dst_pos.ok());
  EXPECT_EQ(dst_pos->last_tag, converged);

  // Bit-identity handshake, then the shipped write actually serves.
  auto src_sum = src.service->TreeChecksum();
  auto dst_sum = dst.service->TreeChecksum();
  ASSERT_TRUE(src_sum.ok() && dst_sum.ok());
  EXPECT_EQ(src_sum->tag, dst_sum->tag);
  EXPECT_EQ(src_sum->page_count, dst_sum->page_count);
  EXPECT_EQ(src_sum->crc, dst_sum->crc);

  auto nearest = dst.service->Knn(MakePoint(400.0f), 1);
  ASSERT_TRUE(nearest.ok());
  ASSERT_EQ(nearest->neighbors.size(), 1u);
  EXPECT_EQ(nearest->neighbors[0].rid, 5000u);
}

TEST(ServiceCatchupTest, SnapshotPathCrossesRetiredHorizonAndShedsQueries) {
  const auto points = testing::MakeClusteredPoints(80, kDim, 3, 19);
  std::vector<gist::Rid> rids(points.size());
  for (size_t i = 0; i < rids.size(); ++i) rids[i] = i;
  const std::string dir = TempDir("svc_snap");
  Replica src = MakeReplica(points, rids, dir + "/src");
  Replica dst = MakeReplica(points, rids, dir + "/dst");
  auto dst_pos = dst.service->Position();
  ASSERT_TRUE(dst_pos.ok());

  // Writes land on the source, then a checkpoint folds them into the
  // base file: the batches the target needs are gone from the log.
  for (int i = 0; i < 5; ++i) {
    InsertSync(src.service.get(), MakePoint(500.0f + i), 6000 + i);
  }
  ASSERT_TRUE(src.index->Checkpoint().ok());

  auto tail = src.service->ReadWalTail(dst_pos->last_tag, 100, 64u << 20);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_TRUE(tail->snapshot_needed);
  EXPECT_TRUE(tail->batches.empty());

  // Full-store transfer in small chunks; queries are shed between the
  // first and last chunk (the tree is torn mid-restore).
  uint32_t start_page = 0;
  bool first = true;
  bool shed_observed = false;
  for (;;) {
    // A 1-byte budget still yields one page per chunk: the restore is
    // forced through its multi-chunk path.
    auto chunk = src.service->ReadSnapshotChunk(start_page, 1);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    ASSERT_FALSE(chunk->pages.empty());
    const bool last =
        start_page + chunk->pages.size() >= chunk->total_pages;
    ASSERT_TRUE(dst.service->ApplySnapshotChunk(*chunk, first, last).ok());
    if (!last) {
      auto mid = dst.service->Knn(points[0], 1);
      EXPECT_FALSE(mid.ok());  // torn store: queries must be refused.
      shed_observed = true;
    }
    start_page += static_cast<uint32_t>(chunk->pages.size());
    first = false;
    if (last) break;
  }
  EXPECT_TRUE(shed_observed) << "snapshot fit one chunk; shrink max_bytes";

  auto src_sum = src.service->TreeChecksum();
  auto dst_sum = dst.service->TreeChecksum();
  ASSERT_TRUE(src_sum.ok() && dst_sum.ok());
  EXPECT_EQ(src_sum->tag, dst_sum->tag);
  EXPECT_EQ(src_sum->crc, dst_sum->crc);

  // Queries resume on the restored replica, shipped writes included.
  auto nearest = dst.service->Knn(MakePoint(500.0f), 1);
  ASSERT_TRUE(nearest.ok()) << nearest.status().ToString();
  ASSERT_EQ(nearest->neighbors.size(), 1u);
  EXPECT_EQ(nearest->neighbors[0].rid, 6000u);
}

// ---------------------------------------------------------------------------
// Router: kStale -> kCatchingUp -> kHealthy without a rebuild
// ---------------------------------------------------------------------------

Result<std::unique_ptr<shard::ShardFleet>> BuildWriteFleet(
    const std::vector<geom::Vec>& corpus, const std::string& name,
    size_t num_shards, size_t replicas) {
  shard::FleetOptions options;
  options.num_shards = num_shards;
  options.replicas_per_shard = replicas;
  options.build = TestBuild();
  options.service.write.enabled = true;
  return shard::ShardFleet::Build(corpus, TempDir(name), options);
}

TEST(RouterCatchupTest, StaleReplicaRejoinsViaWalBitIdentical) {
  const auto corpus = testing::MakeClusteredPoints(240, kDim, 3, 23);
  auto fleet = BuildWriteFleet(corpus, "rejoin_wal", 1, 2);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  shard::Router* router = (*fleet)->router();

  // Replica 1 misses a burst of writes replica 0 acks: kStale.
  (*fleet)->backend(0, 1)->set_failed(true);
  std::vector<geom::Vec> extended = corpus;
  for (int i = 0; i < 8; ++i) {
    const geom::Vec point = MakePoint(60.0f + 2.0f * i);
    auto inserted = router->Insert(point, extended.size());
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    extended.push_back(point);
  }
  ASSERT_EQ(router->replica_state(0, 1), shard::ReplicaState::kStale);

  // Back alive, one catch-up sweep: WAL suffix shipped, checksum
  // verified, readmitted — no rebuild, no restart.
  (*fleet)->backend(0, 1)->set_failed(false);
  EXPECT_EQ(router->CatchupNow(), 1u);
  EXPECT_EQ(router->replica_state(0, 1), shard::ReplicaState::kHealthy);
  const shard::RouterStats stats = router->stats();
  EXPECT_EQ(stats.catchups, 1u);
  EXPECT_GT(stats.wal_batches_shipped, 0u);
  EXPECT_EQ(stats.snapshots_shipped, 0u);

  // The caught-up replica is bit-identical to its sibling...
  auto sum0 = (*fleet)->service(0, 0)->TreeChecksum();
  auto sum1 = (*fleet)->service(0, 1)->TreeChecksum();
  ASSERT_TRUE(sum0.ok() && sum1.ok());
  EXPECT_EQ(sum0->tag, sum1->tag);
  EXPECT_EQ(sum0->crc, sum1->crc);

  // ...and serves answers identical to an unsharded reference over the
  // same corpus + writes, queried directly (replica 1, not its sibling).
  auto single = core::BuildIndex(extended, TestBuild());
  ASSERT_TRUE(single.ok());
  for (int q = 0; q < 10; ++q) {
    const geom::Vec& query = extended[(q * 37) % extended.size()];
    gist::TraversalStats tstats;
    auto truth = (*single)->tree().KnnSearch(query, 12, &tstats);
    ASSERT_TRUE(truth.ok());
    auto answer = (*fleet)->service(0, 1)->Knn(query, 12);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->neighbors.size(), truth->size());
    for (size_t i = 0; i < truth->size(); ++i) {
      EXPECT_EQ(answer->neighbors[i].rid, (*truth)[i].rid)
          << "query " << q << " position " << i;
      EXPECT_EQ(answer->neighbors[i].distance, (*truth)[i].distance);
    }
  }

  // Rotation includes it again: a router query succeeds non-degraded.
  StreamOptions stream;
  stream.max_results = 5;
  auto merged = router->Knn(extended.back(), stream);
  ASSERT_TRUE(merged.ok());
  EXPECT_FALSE(merged->degraded());
}

TEST(RouterCatchupTest, SnapshotFallbackWhenWalHorizonRetired) {
  const auto corpus = testing::MakeClusteredPoints(240, kDim, 3, 29);
  auto fleet = BuildWriteFleet(corpus, "rejoin_snap", 1, 2);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  shard::Router* router = (*fleet)->router();

  (*fleet)->backend(0, 1)->set_failed(true);
  for (int i = 0; i < 6; ++i) {
    auto inserted = router->Insert(MakePoint(70.0f + i), 7000 + i);
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  }
  ASSERT_EQ(router->replica_state(0, 1), shard::ReplicaState::kStale);

  // The source checkpoints: the batches replica 1 needs are retired
  // past the horizon, so the WAL path must escalate to a snapshot.
  ASSERT_TRUE((*fleet)->index(0, 0)->Checkpoint().ok());

  (*fleet)->backend(0, 1)->set_failed(false);
  EXPECT_EQ(router->CatchupNow(), 1u);
  EXPECT_EQ(router->replica_state(0, 1), shard::ReplicaState::kHealthy);
  EXPECT_GE(router->stats().snapshots_shipped, 1u);

  auto sum0 = (*fleet)->service(0, 0)->TreeChecksum();
  auto sum1 = (*fleet)->service(0, 1)->TreeChecksum();
  ASSERT_TRUE(sum0.ok() && sum1.ok());
  EXPECT_EQ(sum0->tag, sum1->tag);
  EXPECT_EQ(sum0->crc, sum1->crc);

  auto nearest = (*fleet)->service(0, 1)->Knn(MakePoint(70.0f), 1);
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest->neighbors[0].rid, 7000u);
}

TEST(RouterCatchupTest, UnreachableTargetStaysStaleForNextPass) {
  const auto corpus = testing::MakeClusteredPoints(200, kDim, 3, 31);
  auto fleet = BuildWriteFleet(corpus, "stale_stays", 1, 2);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  shard::Router* router = (*fleet)->router();

  (*fleet)->backend(0, 1)->set_failed(true);
  auto inserted = router->Insert(MakePoint(80.0f), 8000);
  ASSERT_TRUE(inserted.ok());
  ASSERT_EQ(router->replica_state(0, 1), shard::ReplicaState::kStale);

  // Still down: the sweep must give up cleanly and leave it kStale
  // (not kCatchingUp, not kHealthy) for a later pass to retry...
  EXPECT_EQ(router->CatchupNow(), 0u);
  EXPECT_EQ(router->replica_state(0, 1), shard::ReplicaState::kStale);

  // ...which succeeds once the replica answers again.
  (*fleet)->backend(0, 1)->set_failed(false);
  EXPECT_EQ(router->CatchupNow(), 1u);
  EXPECT_EQ(router->replica_state(0, 1), shard::ReplicaState::kHealthy);
}

}  // namespace
}  // namespace bw
