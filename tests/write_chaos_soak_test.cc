// Chaos soak harness for the fail-safe write path: a durable index is
// served by a QueryService with online mutations enabled while a chaos
// schedule throws write-side weather at it — recurring clean-ENOSPC
// bursts, a disk-space watchdog trip, and finally a hard crash at the
// Kth write (K varies per seed, so the sweep collectively lands the
// crash at many different offsets inside commits, rotations, and
// checkpoints). Throughout:
//
//  - queries must keep answering on every consistent snapshot, in
//    kServing, kReadOnly, and kFailed alike — readers never observe a
//    half-applied batch and never fail because the write path is sick;
//  - admission verdicts must match the state machine: shed with
//    kResourceExhausted while read-only, with kIoError once failed;
//  - read-only mode must be entered by the ENOSPC weather and the
//    watchdog, and exited (writes drain and ack) when space returns;
//  - an ack is a durability promise: after the crash, a fresh process
//    must recover every acknowledged insert, and the recovered rid set
//    must be a contiguous prefix of the admission order — whole
//    committed batches, nothing invented, nothing torn.
//
// The sweep is seeded and deterministic per seed; BW_CHAOS_SEEDS picks
// how many consecutive seeds to run (default keeps CI fast; acceptance
// is 50+ consecutive seeds locally: BW_CHAOS_SEEDS=50).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "geom/vec.h"
#include "gist/tree.h"
#include "service/query_service.h"
#include "storage/fault_injector.h"
#include "storage/store.h"
#include "tests/test_helpers.h"

namespace bw {
namespace {

using service::QueryService;
using service::ServiceOptions;
using service::WriteState;
using storage::FaultInjector;
using storage::StoreOptions;

constexpr size_t kSeedPoints = 200;  // rids 0..199 built offline.
constexpr size_t kDim = 3;
constexpr size_t kPageBytes = 1024;
constexpr gist::Rid kStreamRidBase = kSeedPoints;
constexpr size_t kMaxStream = 160;  // upper bound on online inserts.

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

core::IndexBuildOptions BuildOpts() {
  core::IndexBuildOptions options;
  options.am = "rtree";
  options.page_bytes = kPageBytes;
  return options;
}

/// Drives one seed's soak and carries its bookkeeping.
struct Soak {
  QueryService* service = nullptr;
  const std::vector<geom::Vec>* stream_points = nullptr;
  size_t next = 0;      // next stream point to try to admit.
  size_t admitted = 0;  // mutations that got a future.
  size_t acked = 0;     // futures that resolved OK (durable promise).
  std::vector<QueryService::MutationFuture> in_flight;

  /// One admission attempt. Advances only when admitted, so the
  /// admitted rid sequence is always contiguous from kStreamRidBase.
  Status TrySubmit() {
    auto future = service->SubmitInsert(
        (*stream_points)[next], kStreamRidBase + static_cast<gist::Rid>(next));
    if (!future.ok()) return future.status();
    in_flight.push_back(std::move(*future));
    ++next;
    ++admitted;
    return Status::OK();
  }

  /// Waits for every in-flight future; OK resolutions are acks.
  /// Returns how many resolved with an error.
  size_t Drain() {
    size_t failed = 0;
    for (auto& future : in_flight) {
      if (future.get().ok()) {
        ++acked;
      } else {
        ++failed;
      }
    }
    in_flight.clear();
    return failed;
  }
};

void AwaitState(const QueryService& service, WriteState want) {
  for (int i = 0; i < 5000 && service.write_state() != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.write_state(), want);
}

void RunSeed(uint64_t seed) {
  SCOPED_TRACE("write chaos seed " + std::to_string(seed));
  const std::string base =
      TempPath("wchaos_base_" + std::to_string(seed) + ".bwpf");
  const std::string wal =
      TempPath("wchaos_wal_" + std::to_string(seed) + ".bwwal");
  const auto points =
      testing::MakeClusteredPoints(kSeedPoints, kDim, 6, seed * 7919 + 3);
  const auto stream_points =
      testing::MakeClusteredPoints(kMaxStream, kDim, 4, seed * 31 + 7);
  const geom::Vec probe = points[seed % points.size()];

  FaultInjector injector;
  StoreOptions store_options;
  store_options.injector = &injector;
  store_options.wal_segment_bytes = 1024;     // rotate under load.
  store_options.checkpoint_every_commits = 8;  // retire segments under load.
  auto built =
      core::BuildDurableIndex(points, BuildOpts(), base, wal, store_options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  core::DurableIndex* index = built->get();

  std::atomic<uint64_t> free_bytes{64ull << 30};  // plenty, until the trip.
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  options.write.enabled = true;
  options.write.batch_size = 4;
  options.write.queue_capacity = 64;
  options.write.min_free_bytes = 1 << 20;
  options.write.free_space_probe = [&free_bytes] { return free_bytes.load(); };
  options.write.retry_interval = std::chrono::milliseconds(2);
  QueryService service(index, options);

  Soak soak;
  soak.service = &service;
  soak.stream_points = &stream_points;

  // Readers run across every phase: queries must never fail because the
  // write path is degraded, and every answer comes off a consistent
  // snapshot (half-applied batches are a TSan + assertion failure in
  // service_test; here the bar is plain availability and sanity).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_ok{0};
  std::atomic<uint64_t> read_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = service.Knn(probe, 5);
        if (response.ok() && response->neighbors.size() == 5) {
          reads_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          read_failures.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // --- Phase 1: fair weather — every admitted insert acks. --------------
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(soak.TrySubmit().ok());
  ASSERT_EQ(soak.Drain(), 0u);
  ASSERT_EQ(soak.acked, 12u);

  // --- Phase 2: recurring clean-ENOSPC weather. -------------------------
  // Every commit takes multiple WAL writes, so an every-Nth-write
  // failure schedule is guaranteed to hit one; the writer must park the
  // batch (futures unresolved — ack means durable), trip read-only, and
  // shed new admissions with the capacity verdict. Nothing may be lost:
  // once the weather clears, everything admitted drains to an ack.
  {
    FaultInjector::WriteFaultPlan plan;
    plan.enospc_every_n = 2 + seed % 3;
    plan.enospc_burst = 1 + seed % 2;
    injector.ArmWrites(plan);
    size_t shed = 0;
    for (int i = 0; i < 40; ++i) {
      const Status admitted = soak.TrySubmit();
      if (!admitted.ok()) {
        ASSERT_EQ(admitted.code(), StatusCode::kResourceExhausted);
        ++shed;
      }
      if (service.write_state() == WriteState::kReadOnly && i > 4) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    AwaitState(service, WriteState::kReadOnly);
    // Degraded-but-serving: reads fine, writes shed, snapshot says so.
    auto response = service.Knn(probe, 5);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const Status verdict = soak.TrySubmit();
    if (!verdict.ok()) {
      ASSERT_EQ(verdict.code(), StatusCode::kResourceExhausted);
    }
    auto snap = service.Snapshot();
    EXPECT_TRUE(snap.write_degraded);
    EXPECT_GT(injector.enospc_faults(), 0u);
    // Weather clears: the parked batch and the queue drain to acks.
    injector.DisarmWrites();
    service.ResumeWrites();
    ASSERT_EQ(soak.Drain(), 0u);
    ASSERT_EQ(soak.acked, soak.admitted);
    AwaitState(service, WriteState::kServing);
  }

  // --- Phase 3: the disk-space watchdog trips BEFORE the failing append.
  {
    free_bytes.store(0);
    ASSERT_TRUE(soak.TrySubmit().ok());  // parks behind the watchdog.
    AwaitState(service, WriteState::kReadOnly);
    const uint64_t enospc_before = injector.enospc_faults();
    auto response = service.Knn(probe, 5);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const Status shed = soak.TrySubmit();
    if (!shed.ok()) {
      ASSERT_EQ(shed.code(), StatusCode::kResourceExhausted);
    }
    // The watchdog, not a failed write, tripped the state: the armed
    // injector saw no new ENOSPC during the read-only stay.
    EXPECT_EQ(injector.enospc_faults(), enospc_before);
    // Space returns; the service resumes itself and drains.
    free_bytes.store(64ull << 30);
    service.ResumeWrites();
    ASSERT_EQ(soak.Drain(), 0u);
    ASSERT_EQ(soak.acked, soak.admitted);
    AwaitState(service, WriteState::kServing);
  }

  const size_t acked_before_crash = soak.acked;

  // --- Phase 4: hard crash at the Kth write from now. -------------------
  // K varies with the seed so the sweep lands crashes inside record
  // appends, commit records, segment rotations, and checkpoints alike.
  {
    injector.Arm(FaultInjector::Fault::kCrash, 2 + (seed * 13) % 17);
    size_t crash_failed = 0;
    for (int i = 0; i < 40 && crash_failed == 0; ++i) {
      const Status admitted = soak.TrySubmit();
      if (!admitted.ok()) {
        ASSERT_EQ(admitted.code(), StatusCode::kIoError);
        break;
      }
      crash_failed = soak.Drain();
    }
    ASSERT_TRUE(injector.crashed());
    AwaitState(service, WriteState::kFailed);
    // Fail-stop is permanent for this process: writes shed with the
    // I/O verdict, reads keep answering off the last snapshot.
    const Status after = soak.TrySubmit();
    ASSERT_FALSE(after.ok());
    EXPECT_EQ(after.code(), StatusCode::kIoError);
    soak.Drain();  // anything raced into the queue resolves with errors.
    auto response = service.Knn(probe, 5);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const auto snap = service.Snapshot();
    EXPECT_EQ(snap.write_state, WriteState::kFailed);
    EXPECT_TRUE(snap.write_degraded);
    EXPECT_GT(snap.writes_failed, 0u);
    // The soak produced enough WAL traffic to rotate and retire.
    EXPECT_GT(snap.wal_segments_created, 1u);
    EXPECT_GT(snap.wal_segments_retired, 0u);
  }

  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_GE(soak.acked, acked_before_crash);

  service.Shutdown();
  built->reset();

  // --- Recovery: the committed prefix, exactly. -------------------------
  // A fresh process replays the segmented WAL (torn final writes are
  // benign) and must surface a contiguous rid prefix of the admission
  // order that covers every ack. It may exceed the ack set by at most
  // the crash-interrupted tail batch (committed but never acknowledged
  // — acks promise durability, not the converse).
  auto recovered = core::OpenDurableIndex(base, wal, BuildOpts());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const gist::Tree& tree = (*recovered)->tree();
  ASSERT_GE(tree.size(), kSeedPoints + soak.acked);
  ASSERT_LE(tree.size(), kSeedPoints + soak.admitted);
  auto all = tree.KnnSearch(probe, tree.size(), nullptr);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), tree.size());
  std::vector<gist::Rid> streamed;
  for (const auto& n : *all) {
    if (n.rid >= kStreamRidBase) streamed.push_back(n.rid);
  }
  std::sort(streamed.begin(), streamed.end());
  ASSERT_EQ(streamed.size() + kSeedPoints, tree.size());
  ASSERT_GE(streamed.size(), soak.acked);
  for (size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(streamed[i], kStreamRidBase + i)
        << "recovered rids must be a contiguous admission-order prefix";
  }

  // Query equivalence vs a never-faulted reference: the recovered tree
  // must answer k-NN exactly like brute force over seed points + the
  // recovered prefix (rids are positional in this concatenation).
  std::vector<geom::Vec> reference = points;
  for (size_t i = 0; i < streamed.size(); ++i) {
    reference.push_back(stream_points[i]);
  }
  for (uint64_t q = 0; q < 3; ++q) {
    const geom::Vec& query = reference[(seed * 17 + q * 59) % reference.size()];
    const auto want = testing::BruteForceKnn(reference, query, 10);
    auto got = tree.KnnSearch(query, 10, nullptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), want.size());
    std::vector<gist::Rid> got_rids, want_rids;
    for (const auto& n : *got) got_rids.push_back(n.rid);
    for (const size_t i : want) want_rids.push_back(static_cast<gist::Rid>(i));
    std::sort(got_rids.begin(), got_rids.end());
    std::sort(want_rids.begin(), want_rids.end());
    ASSERT_EQ(got_rids, want_rids) << "query " << q;
  }

  std::remove(base.c_str());
  std::remove(wal.c_str());
}

TEST(WriteChaosSoakTest, SeededSweep) {
  int seeds = 4;
  if (const char* env = std::getenv("BW_CHAOS_SEEDS")) {
    seeds = std::max(1, std::atoi(env));
  }
  for (int seed = 1; seed <= seeds; ++seed) {
    RunSeed(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace bw
