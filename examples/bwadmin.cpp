// bwadmin: command-line administration of Blobworld indexes, covering
// the offline production workflow the paper assumes (Section 3.2: image
// processing and index construction are batch jobs; the static index is
// then served).
//
//   bwadmin gen     --dataset blobs.bin --images 4000
//   bwadmin build   --dataset blobs.bin --index idx.bwix --am xjb --dim 5
//   bwadmin info    --index idx.bwix
//   bwadmin query   --dataset blobs.bin --index idx.bwix --blob 17 --k 10
//   bwadmin analyze --dataset blobs.bin --index idx.bwix --queries 200
//   bwadmin stats   --server 127.0.0.1:4821
//   bwadmin health  --server 127.0.0.1:4821
//   bwadmin stats   --endpoints 127.0.0.1:4830,127.0.0.1:4831,127.0.0.1:4832
//   bwadmin health  --endpoints 127.0.0.1:4830,127.0.0.1:4831
//
// stats/health are the online half: they query a live bwserver over the
// wire protocol and pretty-print its QueryService::Snapshot() counters
// (the kStats payload is exactly service/snapshot_export.h's field
// registry, so counters added there show up here untouched). With
// --endpoints (comma-separated) they fan out to a whole shard fleet
// instead and print one merged table, a column per server — the
// operator's single view over bwrouter's shards. An unreachable server
// still gets its column ('-' everywhere) plus a per-endpoint error
// line under the table, and the sweep exits nonzero so scripts notice.
//
//   bwadmin catchup --source 127.0.0.1:4830 --target 127.0.0.1:4833
//
// catchup is the operator-driven half of replica self-healing: it
// streams the WAL suffix (or a full snapshot past the checkpoint
// horizon) from a healthy source bwserver into a lagging target over
// the wire catch-up RPCs, then verifies bit-identity by checksum —
// the same protocol bwrouter's background driver runs on its own.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>

#include "amdb/analysis.h"
#include "blobworld/dataset.h"
#include "blobworld/pipeline.h"
#include "core/index_factory.h"
#include "gist/persist.h"
#include "linalg/reducer.h"
#include "net/client.h"
#include "service/snapshot_export.h"
#include "shard/tail_tolerance.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

using bw::Status;
using bw::StatusCode;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Rebuilds the reduced vectors the index was built over (deterministic:
// the reducer is a pure function of the dataset).
bw::Result<std::vector<bw::geom::Vec>> ReducedVectors(
    const bw::blobworld::BlobDataset& dataset, size_t dim) {
  bw::linalg::SvdReducer reducer;
  BW_RETURN_IF_ERROR(reducer.Fit(dataset.Histograms(), dim));
  return reducer.ProjectAll(dataset.Histograms(), dim);
}

int CmdGen(bw::Flags& flags, int argc, char** argv) {
  std::string* dataset_path = flags.AddString("dataset", "blobs.bin", "");
  int64_t* images = flags.AddInt64("images", 4000, "");
  int64_t* seed = flags.AddInt64("seed", 1234, "");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;

  bw::blobworld::DatasetParams params;
  params.num_images = static_cast<size_t>(*images);
  params.within_cluster_sigma = 0.5;
  params.direct_noise = 0.02;
  params.blend_fraction = 0.2;
  params.zipf_exponent = 0.8;
  params.seed = static_cast<uint64_t>(*seed);
  const auto dataset = bw::blobworld::GenerateDatasetDirect(params);
  Status saved = dataset.SaveTo(*dataset_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s: %zu blobs from %zu images\n", dataset_path->c_str(),
              dataset.num_blobs(), dataset.num_images());
  return 0;
}

int CmdBuild(bw::Flags& flags, int argc, char** argv) {
  std::string* dataset_path = flags.AddString("dataset", "blobs.bin", "");
  std::string* index_path = flags.AddString("index", "index.bwix", "");
  std::string* am = flags.AddString("am", "xjb", "");
  int64_t* dim = flags.AddInt64("dim", 5, "");
  int64_t* xjb_x = flags.AddInt64("xjb_x", 0, "0 = auto-select");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;

  auto dataset = bw::blobworld::BlobDataset::LoadFrom(*dataset_path);
  if (!dataset.ok()) return Fail(dataset.status());
  auto vectors = ReducedVectors(*dataset, static_cast<size_t>(*dim));
  if (!vectors.ok()) return Fail(vectors.status());

  bw::Stopwatch watch;
  bw::core::IndexBuildOptions options;
  options.am = *am;
  options.xjb_x = static_cast<size_t>(*xjb_x);
  auto index = bw::core::BuildIndex(*vectors, options);
  if (!index.ok()) return Fail(index.status());
  Status saved = bw::core::SaveIndex(**index, *index_path);
  if (!saved.ok()) return Fail(saved);
  const auto shape = (*index)->tree().Shape();
  std::printf("built %s index over %zu vectors in %.1fs "
              "(height %d, %llu nodes) -> %s\n",
              am->c_str(), vectors->size(), watch.ElapsedSeconds(),
              shape.height, (unsigned long long)shape.TotalNodes(),
              index_path->c_str());
  return 0;
}

int CmdInfo(bw::Flags& flags, int argc, char** argv) {
  std::string* index_path = flags.AddString("index", "index.bwix", "");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;

  auto index = bw::core::LoadIndex(*index_path);
  if (!index.ok()) return Fail(index.status());
  const auto& tree = (*index)->tree();
  const auto shape = tree.Shape();
  std::printf("index:      %s\n", index_path->c_str());
  std::printf("AM:         %s (%zu-D)\n", tree.extension().Name().c_str(),
              tree.extension().dim());
  std::printf("entries:    %llu\n", (unsigned long long)tree.size());
  std::printf("height:     %d\n", shape.height);
  for (size_t level = 0; level < shape.nodes_per_level.size(); ++level) {
    std::printf("  level %zu: %llu nodes, %llu entries, util %.2f\n", level,
                (unsigned long long)shape.nodes_per_level[level],
                (unsigned long long)shape.entries_per_level[level],
                shape.avg_utilization_per_level[level]);
  }
  std::printf("validation: %s\n", tree.Validate().ToString().c_str());
  return 0;
}

int CmdQuery(bw::Flags& flags, int argc, char** argv) {
  std::string* dataset_path = flags.AddString("dataset", "blobs.bin", "");
  std::string* index_path = flags.AddString("index", "index.bwix", "");
  int64_t* blob = flags.AddInt64("blob", 0, "query blob id");
  int64_t* k = flags.AddInt64("k", 10, "");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;

  auto dataset = bw::blobworld::BlobDataset::LoadFrom(*dataset_path);
  if (!dataset.ok()) return Fail(dataset.status());
  auto index = bw::core::LoadIndex(*index_path);
  if (!index.ok()) return Fail(index.status());
  auto vectors = ReducedVectors(*dataset, (*index)->tree().extension().dim());
  if (!vectors.ok()) return Fail(vectors.status());
  if (*blob < 0 || static_cast<size_t>(*blob) >= vectors->size()) {
    return Fail(Status::InvalidArgument("blob id out of range"));
  }

  bw::gist::TraversalStats stats;
  auto neighbors =
      (*index)->Knn((*vectors)[static_cast<size_t>(*blob)],
                    static_cast<size_t>(*k), &stats);
  if (!neighbors.ok()) return Fail(neighbors.status());
  std::printf("%zu nearest blobs to blob %lld:\n", neighbors->size(),
              (long long)*blob);
  for (const auto& n : *neighbors) {
    std::printf("  blob %-7llu image %-6u dist %.5f\n",
                (unsigned long long)n.rid,
                dataset->blob(static_cast<size_t>(n.rid)).image, n.distance);
  }
  std::printf("cost: %llu leaf + %llu inner page reads\n",
              (unsigned long long)stats.leaf_accesses,
              (unsigned long long)stats.internal_accesses);
  return 0;
}

int CmdAnalyze(bw::Flags& flags, int argc, char** argv) {
  std::string* dataset_path = flags.AddString("dataset", "blobs.bin", "");
  std::string* index_path = flags.AddString("index", "index.bwix", "");
  int64_t* queries = flags.AddInt64("queries", 200, "");
  int64_t* k = flags.AddInt64("k", 200, "");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;

  auto dataset = bw::blobworld::BlobDataset::LoadFrom(*dataset_path);
  if (!dataset.ok()) return Fail(dataset.status());
  auto index = bw::core::LoadIndex(*index_path);
  if (!index.ok()) return Fail(index.status());
  auto vectors = ReducedVectors(*dataset, (*index)->tree().extension().dim());
  if (!vectors.ok()) return Fail(vectors.status());

  const auto foci = bw::blobworld::SampleQueryBlobs(
      *dataset, static_cast<size_t>(*queries), 0xF0C1);
  const auto workload = bw::amdb::Workload::NnOverFoci(
      *vectors, foci, static_cast<size_t>(*k));
  auto report = bw::amdb::AnalyzeWorkload((*index)->tree(), workload);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->ToString().c_str());
  return 0;
}

// Splits "--server host:port" and opens a wire-protocol client.
bw::Result<std::unique_ptr<bw::net::Client>> ConnectTo(
    const std::string& server) {
  const size_t colon = server.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("--server wants host:port, got '" +
                                   server + "'");
  }
  const int port = std::atoi(server.c_str() + colon + 1);
  if (port <= 0 || port >= 65536) {
    return Status::InvalidArgument("bad port in --server '" + server + "'");
  }
  return bw::net::Client::Connect(server.substr(0, colon),
                                  static_cast<uint16_t>(port));
}

// "a,b,c" -> {a, b, c} (empty pieces dropped).
std::vector<std::string> SplitEndpoints(const std::string& spec) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) out.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Short column header for an endpoint: "host:port" minus a common
// "127.0.0.1:" prefix is just the port.
std::string ColumnLabel(const std::string& endpoint) {
  if (endpoint.rfind("127.0.0.1:", 0) == 0) return endpoint.substr(10);
  if (endpoint.rfind("localhost:", 0) == 0) return endpoint.substr(10);
  return endpoint;
}

// Fleet-wide stats: one column per server, rows = union of counter
// names in first-seen order, '-' where a server lacks the counter (or
// was unreachable). Counters whose sum across the fleet is meaningful
// (everything except write_state) keep their raw per-shard values; the
// reader sums columns.
int FleetStats(const std::vector<std::string>& endpoints) {
  std::vector<std::string> names;  // row order: first-seen.
  std::vector<std::vector<std::pair<std::string, double>>> columns;
  std::vector<std::pair<std::string, std::string>> errors;  // endpoint, why.
  size_t reachable = 0;
  for (const std::string& endpoint : endpoints) {
    std::vector<std::pair<std::string, double>> fields;
    auto client = ConnectTo(endpoint);
    if (client.ok()) {
      auto stats = (*client)->Stats();
      if (stats.ok()) {
        fields = std::move(*stats);
        ++reachable;
      } else {
        errors.emplace_back(endpoint, stats.status().ToString());
      }
    } else {
      errors.emplace_back(endpoint, client.status().ToString());
    }
    for (const auto& [name, value] : fields) {
      (void)value;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    columns.push_back(std::move(fields));
  }
  if (reachable == 0) {
    for (const auto& [endpoint, why] : errors) {
      std::fprintf(stderr, "%s: %s\n", endpoint.c_str(), why.c_str());
    }
    return Fail(Status::Unavailable("no endpoint answered stats"));
  }

  std::printf("%-34s", "counter");
  for (const std::string& endpoint : endpoints) {
    std::printf(" %14s", ColumnLabel(endpoint).c_str());
  }
  std::printf("\n");
  for (const std::string& name : names) {
    std::printf("%-34s", name.c_str());
    for (const auto& column : columns) {
      const auto it =
          std::find_if(column.begin(), column.end(),
                       [&](const auto& field) { return field.first == name; });
      if (it == column.end()) {
        std::printf(" %14s", "-");
      } else if (name == "write_state") {
        std::printf(" %14s",
                    bw::service::WriteStateName(
                        static_cast<bw::service::WriteState>(
                            static_cast<int>(it->second))));
      } else if (it->second ==
                 static_cast<double>(static_cast<int64_t>(it->second))) {
        std::printf(" %14lld", (long long)static_cast<int64_t>(it->second));
      } else {
        std::printf(" %14.3f", it->second);
      }
    }
    std::printf("\n");
  }
  // Per-endpoint failures under the merged table, where a human (or a
  // CI grep) sees them next to the '-' columns they explain.
  for (const auto& [endpoint, why] : errors) {
    std::printf("error: %-27s %s\n", endpoint.c_str(), why.c_str());
  }
  return reachable == endpoints.size() ? 0 : 1;
}

int CmdStats(bw::Flags& flags, int argc, char** argv) {
  std::string* server = flags.AddString("server", "127.0.0.1:4821", "");
  std::string* endpoints = flags.AddString(
      "endpoints", "", "comma-separated fleet ('' = single --server)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;

  if (!endpoints->empty()) return FleetStats(SplitEndpoints(*endpoints));

  auto client = ConnectTo(*server);
  if (!client.ok()) return Fail(client.status());
  auto fields = (*client)->Stats();
  if (!fields.ok()) return Fail(fields.status());

  std::printf("%s: %zu counters\n", server->c_str(), fields->size());
  for (const auto& [name, value] : *fields) {
    if (name == "write_state") {
      std::printf("  %-34s %s\n", name.c_str(),
                  bw::service::WriteStateName(
                      static_cast<bw::service::WriteState>(
                          static_cast<int>(value))));
    } else if (value == static_cast<double>(static_cast<int64_t>(value))) {
      std::printf("  %-34s %lld\n", name.c_str(),
                  (long long)static_cast<int64_t>(value));
    } else {
      std::printf("  %-34s %.3f\n", name.c_str(), value);
    }
  }
  return 0;
}

// A stats row like "router.shard0.replica1.breaker" carries the
// numeric BreakerState; health prints them as state names so an
// operator sees which backends the router has tripped away from.
// Non-routers simply have no such rows.
void PrintBreakerRows(bw::net::Client& client, const char* indent) {
  auto fields = client.Stats();
  if (!fields.ok()) return;
  for (const auto& [name, value] : *fields) {
    const size_t dot = name.rfind(".breaker");
    if (name.rfind("router.", 0) != 0 || dot == std::string::npos ||
        dot + 8 != name.size()) {
      continue;
    }
    std::printf("%s%-24s %s\n", indent, name.c_str(),
                bw::shard::BreakerStateName(static_cast<bw::shard::BreakerState>(
                    static_cast<int>(value))));
  }
}

// Fleet-wide health: one row per server. Exit 0 only when every server
// answered and none is fail-stopped.
int FleetHealth(const std::vector<std::string>& endpoints) {
  int exit_code = 0;
  std::printf("%-22s %-10s %-7s %-9s %-11s %-11s %s\n", "server", "state",
              "writes", "degraded", "generation", "completed", "uptime");
  for (const std::string& endpoint : endpoints) {
    auto client = ConnectTo(endpoint);
    if (!client.ok()) {
      std::printf("%-22s %-10s %s\n", endpoint.c_str(), "UNREACHABLE",
                  client.status().ToString().c_str());
      exit_code = 1;
      continue;
    }
    auto health = (*client)->Health();
    if (!health.ok()) {
      std::printf("%-22s %-10s %s\n", endpoint.c_str(), "ERROR",
                  health.status().ToString().c_str());
      exit_code = 1;
      continue;
    }
    std::printf("%-22s %-10s %-7s %-9s %-11llu %-11llu %.1fs\n",
                endpoint.c_str(),
                bw::service::WriteStateName(
                    static_cast<bw::service::WriteState>(
                        health->write_state)),
                health->writes_enabled ? "yes" : "no",
                health->write_degraded ? "yes" : "no",
                (unsigned long long)health->generation,
                (unsigned long long)health->completed,
                health->uptime_seconds);
    if (health->write_state ==
        static_cast<uint8_t>(bw::service::WriteState::kFailed)) {
      exit_code = 1;
    }
    PrintBreakerRows(**client, "    ");
  }
  return exit_code;
}

int CmdHealth(bw::Flags& flags, int argc, char** argv) {
  std::string* server = flags.AddString("server", "127.0.0.1:4821", "");
  std::string* endpoints = flags.AddString(
      "endpoints", "", "comma-separated fleet ('' = single --server)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;

  if (!endpoints->empty()) return FleetHealth(SplitEndpoints(*endpoints));

  auto client = ConnectTo(*server);
  if (!client.ok()) return Fail(client.status());
  auto health = (*client)->Health();
  if (!health.ok()) return Fail(health.status());

  std::printf("%s: %s\n", server->c_str(),
              bw::service::WriteStateName(
                  static_cast<bw::service::WriteState>(health->write_state)));
  std::printf("  writes_enabled     %s\n",
              health->writes_enabled ? "yes" : "no");
  std::printf("  write_degraded     %s\n",
              health->write_degraded ? "yes" : "no");
  std::printf("  generation         %llu\n",
              (unsigned long long)health->generation);
  std::printf("  completed          %llu\n",
              (unsigned long long)health->completed);
  std::printf("  pages_quarantined  %llu\n",
              (unsigned long long)health->pages_quarantined);
  std::printf("  uptime             %.1f s\n", health->uptime_seconds);
  PrintBreakerRows(**client, "  ");
  // Health is the fitness probe: serving reads + not fail-stopped = 0.
  return health->write_state ==
                 static_cast<uint8_t>(bw::service::WriteState::kFailed)
             ? 1
             : 0;
}

// Ships the target every page it needs for a full resync (the path a
// WAL suffix retired past the source's checkpoint forces). Restarts
// bounded times when the source commits mid-transfer.
Status ShipSnapshot(bw::net::Client& source, bw::net::Client& target,
                    uint32_t max_bytes) {
  for (int restart = 0; restart < 4; ++restart) {
    uint64_t tag = 0;
    uint32_t start_page = 0;
    bool first = true;
    bool restarted = false;
    for (;;) {
      auto chunk = source.PullSnapshot(start_page, max_bytes);
      if (!chunk.ok()) return chunk.status();
      if (chunk->pages.empty()) {
        return Status::Internal("snapshot chunk with no pages");
      }
      if (first) {
        tag = chunk->tag;
      } else if (chunk->tag != tag) {
        restarted = true;
        break;
      }
      const bool last = start_page + chunk->pages.size() >= chunk->total_pages;
      auto ack = target.ApplySnapshot(*chunk, first, last);
      if (!ack.ok()) return ack.status();
      first = false;
      start_page += static_cast<uint32_t>(chunk->pages.size());
      if (last) {
        std::printf("  shipped snapshot: %llu pages at tag %llu\n",
                    (unsigned long long)chunk->total_pages,
                    (unsigned long long)tag);
        return Status::OK();
      }
    }
    if (!restarted) break;
  }
  return Status::Unavailable(
      "snapshot transfer kept restarting under concurrent commits");
}

// Operator-driven replica catch-up between two bwservers: the same
// WAL-suffix / snapshot / checksum-verify protocol bwrouter's
// background driver runs, exposed as a command for fleets without a
// router (or for rehearsing a recovery by hand).
int CmdCatchup(bw::Flags& flags, int argc, char** argv) {
  std::string* source_spec = flags.AddString("source", "", "healthy replica");
  std::string* target_spec = flags.AddString("target", "", "lagging replica");
  int64_t* max_batches = flags.AddInt64("max_batches", 64, "");
  int64_t* max_bytes = flags.AddInt64("max_bytes", 1 << 20, "");
  int64_t* max_rounds = flags.AddInt64("max_rounds", 64, "");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return parsed.code() == StatusCode::kNotFound ? 0 : 2;
  if (source_spec->empty() || target_spec->empty()) {
    return Fail(Status::InvalidArgument("--source and --target required"));
  }

  auto source = ConnectTo(*source_spec);
  if (!source.ok()) return Fail(source.status());
  auto target = ConnectTo(*target_spec);
  if (!target.ok()) return Fail(target.status());

  bool force_snapshot = false;
  for (int64_t round = 0; round < *max_rounds; ++round) {
    auto target_pos = (*target)->CatchupPos();
    if (!target_pos.ok()) return Fail(target_pos.status());
    auto source_pos = (*source)->CatchupPos();
    if (!source_pos.ok()) return Fail(source_pos.status());

    if (!force_snapshot && target_pos->last_tag == source_pos->last_tag) {
      auto source_sum = (*source)->TreeSum();
      if (!source_sum.ok()) return Fail(source_sum.status());
      auto target_sum = (*target)->TreeSum();
      if (!target_sum.ok()) return Fail(target_sum.status());
      if (source_sum->crc == target_sum->crc &&
          source_sum->page_count == target_sum->page_count) {
        std::printf(
            "%s caught up to %s: tag %llu, %llu pages, crc %08x "
            "(bit-identical)\n",
            target_spec->c_str(), source_spec->c_str(),
            (unsigned long long)target_sum->tag,
            (unsigned long long)target_sum->page_count, target_sum->crc);
        return 0;
      }
      std::printf("  tags agree (%llu) but trees differ: full resync\n",
                  (unsigned long long)target_pos->last_tag);
      force_snapshot = true;
      continue;
    }

    if (force_snapshot || target_pos->last_tag > source_pos->last_tag) {
      Status shipped = ShipSnapshot(**source, **target,
                                    static_cast<uint32_t>(*max_bytes));
      if (!shipped.ok()) return Fail(shipped);
      force_snapshot = false;
      continue;
    }

    auto tail = (*source)->PullWal(target_pos->last_tag,
                                   static_cast<uint32_t>(*max_batches),
                                   static_cast<uint32_t>(*max_bytes));
    if (!tail.ok()) return Fail(tail.status());
    if (tail->snapshot_needed) {
      std::printf("  suffix after tag %llu retired past a checkpoint: "
                  "full resync\n",
                  (unsigned long long)target_pos->last_tag);
      force_snapshot = true;
      continue;
    }
    for (const auto& batch : tail->batches) {
      auto ack = (*target)->ApplyWal(batch);
      if (!ack.ok()) return Fail(ack.status());
    }
    if (!tail->batches.empty()) {
      std::printf("  applied %zu WAL batch(es) through tag %llu\n",
                  tail->batches.size(),
                  (unsigned long long)tail->batches.back().tag);
    }
  }
  return Fail(Status::Unavailable(
      "catch-up did not converge (writes still in flight? "
      "quiesce the target or raise --max_rounds)"));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: bwadmin <gen|build|info|query|analyze|stats|health|catchup> "
        "[flags]\n");
    return 2;
  }
  const char* command = argv[1];
  bw::Flags flags;
  // Shift argv past the subcommand.
  argv[1] = argv[0];
  if (std::strcmp(command, "gen") == 0) {
    return CmdGen(flags, argc - 1, argv + 1);
  }
  if (std::strcmp(command, "build") == 0) {
    return CmdBuild(flags, argc - 1, argv + 1);
  }
  if (std::strcmp(command, "info") == 0) {
    return CmdInfo(flags, argc - 1, argv + 1);
  }
  if (std::strcmp(command, "query") == 0) {
    return CmdQuery(flags, argc - 1, argv + 1);
  }
  if (std::strcmp(command, "analyze") == 0) {
    return CmdAnalyze(flags, argc - 1, argv + 1);
  }
  if (std::strcmp(command, "stats") == 0) {
    return CmdStats(flags, argc - 1, argv + 1);
  }
  if (std::strcmp(command, "health") == 0) {
    return CmdHealth(flags, argc - 1, argv + 1);
  }
  if (std::strcmp(command, "catchup") == 0) {
    return CmdCatchup(flags, argc - 1, argv + 1);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command);
  return 2;
}
