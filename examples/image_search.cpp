// End-to-end Blobworld image search over the FULL image pipeline
// (Figure 1 + Figure 2 of the paper):
//
//   render synthetic images -> EM segmentation into blobs -> 218-bin
//   color histograms -> SVD to 5-D -> XJB access method -> two-stage
//   query (AM retrieves ~200 candidate blobs, the full-feature ranker
//   picks the top answers) -> recall vs. the exhaustive query.
//
// Also demonstrates the Figure-3 sliders: "color is very important,
// location is not, texture is so-so".
//
//   $ ./image_search [--images N]

#include <cstdio>

#include "blobworld/pipeline.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* images = flags.AddInt64("images", 300, "images to synthesize");
  int64_t* queries = flags.AddInt64("queries", 20, "sample queries to run");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  // ---- Figure 1: pixels -> blobs -> descriptors. ----
  bw::Stopwatch watch;
  bw::blobworld::DatasetParams params;
  params.num_images = static_cast<size_t>(*images);
  params.seed = 11;
  const bw::blobworld::BlobDataset dataset =
      bw::blobworld::GenerateDataset(params);  // full pixel pipeline.
  std::printf("segmented %zu images into %zu blobs in %.1fs "
              "(%.1f blobs/image)\n",
              dataset.num_images(), dataset.num_blobs(),
              watch.ElapsedSeconds(),
              double(dataset.num_blobs()) / double(dataset.num_images()));

  // ---- Build the query pipeline (Figure 2). ----
  watch.Restart();
  bw::blobworld::PipelineOptions options;
  options.reduced_dim = 5;
  options.am_candidates = 200;
  options.answer_size = 20;
  options.index.am = "xjb";
  options.index.xjb_x = 0;  // auto-select X.
  auto pipeline = bw::blobworld::Pipeline::Build(&dataset, options);
  BW_CHECK_MSG(pipeline.ok(), pipeline.status().ToString());
  std::printf("pipeline ready in %.1fs (index height %d)\n\n",
              watch.ElapsedSeconds(),
              (*pipeline)->index().tree().Shape().height);

  // ---- Run sample queries and measure recall vs. the full query. ----
  const auto foci = bw::blobworld::SampleQueryBlobs(
      dataset, static_cast<size_t>(*queries), 99);
  double recall_sum = 0.0;
  uint64_t leaf_ios = 0;
  for (uint32_t focus : foci) {
    auto recall = (*pipeline)->QueryRecall(focus);
    BW_CHECK_MSG(recall.ok(), recall.status().ToString());
    recall_sum += *recall;
    auto answer = (*pipeline)->Query(focus);
    leaf_ios += answer->am_stats.leaf_accesses;
  }
  std::printf("two-stage query vs exhaustive ranking over %zu queries:\n",
              foci.size());
  std::printf("  average recall@%zu: %.2f\n", options.answer_size,
              recall_sum / double(foci.size()));
  std::printf("  average AM leaf I/Os per query: %.1f\n\n",
              double(leaf_ios) / double(foci.size()));

  // ---- Figure 3: weighted query on one blob. ----
  const uint32_t query_blob = foci[0];
  const auto& blob = dataset.blob(query_blob);
  std::printf("query blob %u (image %u): texture=%.2f size=%.2f at "
              "(%.2f, %.2f)\n",
              query_blob, blob.image, blob.texture, blob.size, blob.x,
              blob.y);

  bw::blobworld::QueryWeights weights;
  weights.color = 1.0;     // very important
  weights.texture = 0.3;   // so-so
  weights.location = 0.0;  // not important
  auto answer = (*pipeline)->Query(query_blob, weights);
  BW_CHECK_MSG(answer.ok(), answer.status().ToString());
  std::printf("top matches (color=1.0, texture=0.3, location=0):\n");
  size_t shown = 0;
  for (const auto& r : answer->images) {
    std::printf("  image %-5u score %.5f (best blob %u)\n", r.image, r.score,
                r.best_blob);
    if (++shown == 8) break;
  }
  return 0;
}
