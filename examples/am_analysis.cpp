// amdb-style access-method analysis from the command line: load a
// Blobworld-like workload onto any of the six access methods and print
// the Table-1 loss metrics (excess coverage, utilization, clustering)
// plus the tree shape — the workflow of Figure 5 of the paper.
//
//   $ ./am_analysis --am jb --blobs 10000 --queries 200

#include <cstdio>

#include "amdb/analysis.h"
#include "amdb/node_report.h"
#include "blobworld/dataset.h"
#include "blobworld/pipeline.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  std::string* am = flags.AddString(
      "am", "rtree", "access method: rtree|sstree|srtree|amap|jb|xjb");
  int64_t* blobs = flags.AddInt64("blobs", 10000, "blobs to index");
  int64_t* queries = flags.AddInt64("queries", 200, "workload queries");
  int64_t* k = flags.AddInt64("k", 200, "neighbors per query");
  bool* bulk = flags.AddBool("bulk", true, "bulk load (STR) vs insert load");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  // Data: direct synthetic blobs, SVD-reduced to 5-D.
  bw::blobworld::DatasetParams params;
  params.num_images = static_cast<size_t>(*blobs) / 5 + 1;
  params.within_cluster_sigma = 0.5;
  params.direct_noise = 0.02;
  const auto dataset = bw::blobworld::GenerateDatasetDirect(params);
  bw::linalg::SvdReducer reducer;
  BW_CHECK_OK(reducer.Fit(dataset.Histograms(), 5));
  const auto vectors = reducer.ProjectAll(dataset.Histograms(), 5);

  // Index.
  bw::core::IndexBuildOptions options;
  options.am = *am;
  options.bulk_load = *bulk;
  auto index = bw::core::BuildIndex(vectors, options);
  if (!index.ok()) {
    std::fprintf(stderr, "BuildIndex: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // Structural sanity, as amdb's debugger would check.
  bw::Status valid = (*index)->tree().Validate();
  std::printf("tree validation: %s\n", valid.ToString().c_str());

  // Workload + analysis.
  const auto foci = bw::blobworld::SampleQueryBlobs(
      dataset, static_cast<size_t>(*queries), 42);
  const auto workload = bw::amdb::Workload::NnOverFoci(
      vectors, foci, static_cast<size_t>(*k));
  auto report = bw::amdb::AnalyzeWorkload((*index)->tree(), workload);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== amdb analysis: %s (%s-loaded) ===\n%s", am->c_str(),
              *bulk ? "bulk" : "insertion", report->ToString().c_str());

  // The node-level view: the leaves drawing the most false hits are
  // where a better bounding predicate would pay off.
  auto traces = bw::amdb::ExecuteWorkload((*index)->tree(), workload);
  BW_CHECK_MSG(traces.ok(), traces.status().ToString());
  const auto nodes =
      bw::amdb::AttributeNodeLosses((*index)->tree(), *traces);
  std::printf("\nworst leaves by excess accesses:\n%s",
              bw::amdb::RenderWorstNodes(nodes, 8).c_str());
  return 0;
}
