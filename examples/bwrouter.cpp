// bwrouter: the scatter-gather shard router as a standalone binary.
// Serves the same wire protocol as bwserver (same clients, same admin
// tooling) but answers every query by merging budgeted best-first
// streams from a fleet of STR-partitioned shards, with replica
// failover and fault-budgeted degraded answers (src/shard/router.h).
//
// Remote fleet — shards are bwserver processes started with matching
// corpus flags and --shards/--shard_index:
//
//   bwserver --port 4830 --durable /tmp/s0 --blobs 8000 --shards 3 --shard_index 0
//   bwserver --port 4831 --durable /tmp/s1 --blobs 8000 --shards 3 --shard_index 1
//   bwserver --port 4832 --durable /tmp/s2 --blobs 8000 --shards 3 --shard_index 2
//   bwrouter --port 4821 --blobs 8000 \
//            --endpoints "127.0.0.1:4830;127.0.0.1:4831;127.0.0.1:4832"
//
// --endpoints groups replicas with ',' inside a shard and separates
// shards with ';' ("hostA:1,hostB:1;hostC:2" = two shards, the first
// with two replicas). The router recomputes the STR partition from the
// same deterministic corpus flags (--blobs/--dim/--seed) the shard
// servers used, so its routing boxes match the fleet's slices without
// any map-file exchange.
//
// Local fleet — no endpoints: the router builds the whole sharded
// deployment in-process under --durable (demo / single-box mode):
//
//   bwrouter --port 4821 --blobs 8000 --local_shards 3 --replicas 2 \
//            --durable /tmp/bwfleet

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "blobworld/dataset.h"
#include "linalg/reducer.h"
#include "net/server.h"
#include "shard/fleet.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bw::Result<std::vector<bw::geom::Vec>> SyntheticVectors(size_t blobs,
                                                        size_t dim,
                                                        uint64_t seed) {
  bw::blobworld::DatasetParams params;
  params.num_images = blobs;
  params.seed = seed;
  const bw::blobworld::BlobDataset dataset =
      bw::blobworld::GenerateDatasetDirect(params);
  bw::linalg::SvdReducer reducer;
  BW_RETURN_IF_ERROR(reducer.Fit(dataset.Histograms(), dim));
  return reducer.ProjectAll(dataset.Histograms(), dim);
}

/// "--endpoints a,b;c" -> {{a,b},{c}}: shards split on ';', replicas
/// on ','.
std::vector<std::vector<std::string>> ParseEndpoints(
    const std::string& spec) {
  std::vector<std::vector<std::string>> shards;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    const std::string group = spec.substr(start, semi - start);
    if (!group.empty()) {
      std::vector<std::string> replicas;
      size_t rs = 0;
      while (rs <= group.size()) {
        size_t comma = group.find(',', rs);
        if (comma == std::string::npos) comma = group.size();
        const std::string endpoint = group.substr(rs, comma - rs);
        if (!endpoint.empty()) replicas.push_back(endpoint);
        rs = comma + 1;
      }
      if (!replicas.empty()) shards.push_back(std::move(replicas));
    }
    start = semi + 1;
  }
  return shards;
}

bw::Result<std::pair<std::string, uint16_t>> SplitHostPort(
    const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return bw::Status::InvalidArgument("endpoint wants host:port, got '" +
                                       endpoint + "'");
  }
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port >= 65536) {
    return bw::Status::InvalidArgument("bad port in endpoint '" + endpoint +
                                       "'");
  }
  return std::make_pair(endpoint.substr(0, colon),
                        static_cast<uint16_t>(port));
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* port = flags.AddInt64("port", 4821, "TCP port (0 = ephemeral)");
  std::string* bind = flags.AddString("bind", "127.0.0.1", "bind address");
  std::string* endpoints = flags.AddString(
      "endpoints", "",
      "remote fleet: ';'-separated shards, ','-separated replicas "
      "('' = build a local fleet instead)");
  int64_t* blobs =
      flags.AddInt64("blobs", 8000, "synthetic collection size");
  std::string* am = flags.AddString("am", "xjb", "access method (local fleet)");
  int64_t* dim = flags.AddInt64("dim", 5, "reduced dimensionality");
  int64_t* seed = flags.AddInt64("seed", 7, "synthetic dataset seed");
  int64_t* local_shards =
      flags.AddInt64("local_shards", 3, "shards in a local fleet");
  int64_t* replicas =
      flags.AddInt64("replicas", 1, "replicas per shard in a local fleet");
  std::string* durable = flags.AddString(
      "durable", "/tmp/bwfleet", "directory for local-fleet shard indexes");
  int64_t* fault_budget = flags.AddInt64(
      "fault_budget", 1,
      "dead shards one query tolerates before failing (0 = fail closed)");
  int64_t* probe_interval_ms = flags.AddInt64(
      "probe_interval_ms", 500, "replica health-probe period (0 = off)");
  int64_t* probe_backoff_max = flags.AddInt64(
      "probe_backoff_max", 8,
      "max sweeps skipped between probes of a repeatedly dead replica");
  int64_t* catchup_interval_ms = flags.AddInt64(
      "catchup_interval_ms", 1000,
      "stale-replica WAL catch-up period (0 = off)");
  bool* hedge = flags.AddBool(
      "hedge", true,
      "hedge slow replica reads against a sibling replica");
  double* hedge_quantile = flags.AddDouble(
      "hedge_quantile", 0.99,
      "per-backend latency quantile that arms the hedge timer");
  int64_t* hedge_floor_us = flags.AddInt64(
      "hedge_floor_us", 1000, "minimum hedge delay");
  int64_t* hedge_cap_us = flags.AddInt64(
      "hedge_cap_us", 200000, "maximum hedge delay");
  bool* breaker = flags.AddBool(
      "breaker", true,
      "per-backend circuit breakers on error/latency-outlier streaks");
  int64_t* breaker_cooldown_ms = flags.AddInt64(
      "breaker_cooldown_ms", 1000,
      "open-breaker cooldown before a half-open trial");
  int64_t* jitter_seed = flags.AddInt64(
      "jitter_seed", 0,
      "seed for probe/hedge/backoff jitter (deterministic schedules)");
  int64_t* batch_size = flags.AddInt64(
      "batch_size", 32, "results per streamed frame from remote shards");
  int64_t* workers =
      flags.AddInt64("workers", 4, "query workers per local-fleet shard");
  int64_t* io_threads = flags.AddInt64("io_threads", 1, "epoll loops");
  int64_t* dispatch_threads =
      flags.AddInt64("dispatch_threads", 4, "request dispatch threads");
  int64_t* max_inflight = flags.AddInt64(
      "max_inflight", 32, "per-connection in-flight request quota");
  int64_t* idle_timeout_ms =
      flags.AddInt64("idle_timeout_ms", 30000, "idle connection reap");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  bw::shard::RouterOptions router_options;
  router_options.fault_budget = static_cast<size_t>(*fault_budget);
  router_options.probe_interval =
      std::chrono::milliseconds(*probe_interval_ms);
  router_options.probe_backoff_max =
      static_cast<uint32_t>(*probe_backoff_max);
  router_options.catchup_interval =
      std::chrono::milliseconds(*catchup_interval_ms);
  router_options.hedge = *hedge;
  router_options.hedge_quantile = *hedge_quantile;
  router_options.hedge_delay_floor_us = static_cast<uint64_t>(*hedge_floor_us);
  router_options.hedge_delay_cap_us = static_cast<uint64_t>(*hedge_cap_us);
  router_options.breaker.enabled = *breaker;
  router_options.breaker.cooldown_us =
      static_cast<uint64_t>(*breaker_cooldown_ms) * 1000;
  router_options.jitter_seed = static_cast<uint64_t>(*jitter_seed);

  std::unique_ptr<bw::shard::ShardFleet> fleet;          // local mode.
  std::unique_ptr<bw::shard::Router> remote_router;      // remote mode.
  bw::shard::Router* router = nullptr;

  if (endpoints->empty()) {
    // --- Local fleet: shards built and served in-process --------------
    auto vectors = SyntheticVectors(static_cast<size_t>(*blobs),
                                    static_cast<size_t>(*dim),
                                    static_cast<uint64_t>(*seed));
    BW_CHECK_MSG(vectors.ok(), vectors.status().ToString());
    std::filesystem::create_directories(*durable);
    bw::shard::FleetOptions fleet_options;
    fleet_options.num_shards = static_cast<size_t>(*local_shards);
    fleet_options.replicas_per_shard = static_cast<size_t>(*replicas);
    fleet_options.build.am = *am;
    fleet_options.build.xjb_x = 0;
    fleet_options.service.num_workers = static_cast<size_t>(*workers);
    fleet_options.service.write.enabled = true;
    fleet_options.router = router_options;
    auto built = bw::shard::ShardFleet::Build(*vectors, *durable,
                                              fleet_options);
    BW_CHECK_MSG(built.ok(), built.status().ToString());
    fleet = std::move(*built);
    router = fleet->router();
    std::printf("bwrouter: local fleet, %zu shards x %lld replicas over "
                "%lld blobs (%s)\n",
                fleet->num_shards(), (long long)*replicas, (long long)*blobs,
                am->c_str());
  } else {
    // --- Remote fleet: recompute the STR partition the shard servers
    // used (same corpus flags => same slices), then dial endpoints.
    auto vectors = SyntheticVectors(static_cast<size_t>(*blobs),
                                    static_cast<size_t>(*dim),
                                    static_cast<uint64_t>(*seed));
    BW_CHECK_MSG(vectors.ok(), vectors.status().ToString());
    const std::vector<std::vector<std::string>> groups =
        ParseEndpoints(*endpoints);
    BW_CHECK_MSG(!groups.empty(), "--endpoints parsed to zero shards");
    const bw::shard::Partition partition =
        bw::shard::PartitionByStr(*vectors, groups.size());
    std::vector<bw::shard::Router::Shard> shards(groups.size());
    for (size_t s = 0; s < groups.size(); ++s) {
      for (const std::string& endpoint : groups[s]) {
        auto host_port = SplitHostPort(endpoint);
        BW_CHECK_MSG(host_port.ok(), host_port.status().ToString());
        bw::net::ClientOptions client_options;
        client_options.peer = "bwrouter";
        client_options.features =
            bw::net::kFeatureStreaming | bw::net::kFeatureRouter;
        auto backend = std::make_unique<bw::shard::RemoteShardBackend>(
            host_port->first, host_port->second, client_options);
        backend->set_frontier_batch_size(static_cast<uint32_t>(*batch_size));
        shards[s].replicas.push_back(std::move(backend));
      }
    }
    remote_router = std::make_unique<bw::shard::Router>(
        bw::shard::ShardMap((*vectors)[0].dim(), partition.bounds),
        std::move(shards), router_options);
    router = remote_router.get();
    std::printf("bwrouter: remote fleet, %zu shards (%s)\n", groups.size(),
                endpoints->c_str());
  }

  // --- Serve the router behind the standard wire front end ------------
  bw::net::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(*port);
  server_options.bind_address = *bind;
  server_options.io_threads = static_cast<size_t>(*io_threads);
  server_options.dispatch_threads = static_cast<size_t>(*dispatch_threads);
  server_options.quota.max_inflight = static_cast<size_t>(*max_inflight);
  server_options.idle_timeout = std::chrono::milliseconds(*idle_timeout_ms);
  bw::net::Server server(router, server_options);
  bw::Status started = server.Start();
  BW_CHECK_MSG(started.ok(), started.ToString());
  std::printf("bwrouter listening on %s:%u (%zu shards, fault budget %lld)\n",
              bind->c_str(), server.port(), router->num_shards(),
              (long long)*fault_budget);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  server.Shutdown();
  const bw::net::NetStats net = server.stats();
  const bw::shard::RouterStats rs = router->stats();
  std::printf("served %llu requests over %llu connections; "
              "%llu queries: %llu shard visits, %llu pruned, "
              "%llu failovers, %llu degraded; "
              "%llu catch-ups (%llu WAL batches, %llu snapshots)\n",
              (unsigned long long)net.requests,
              (unsigned long long)net.accepted,
              (unsigned long long)rs.queries,
              (unsigned long long)rs.shards_visited,
              (unsigned long long)rs.shards_pruned,
              (unsigned long long)rs.failovers,
              (unsigned long long)rs.degraded_queries,
              (unsigned long long)rs.catchups,
              (unsigned long long)rs.wal_batches_shipped,
              (unsigned long long)rs.snapshots_shipped);
  std::printf("tail tolerance: %llu hedges (%llu won), "
              "breakers %llu opened / %llu half-opened / %llu closed, "
              "%llu budget-exhausted queries\n",
              (unsigned long long)rs.hedges_attempted,
              (unsigned long long)rs.hedges_won,
              (unsigned long long)rs.breaker_opens,
              (unsigned long long)rs.breaker_half_opens,
              (unsigned long long)rs.breaker_closes,
              (unsigned long long)rs.budget_exhausted);
  return 0;
}
