// Reproduces the pictures behind the paper's Figures 10-12: renders the
// leaf level of 2-D trees — points, MBRs, MAP rectangle pairs, jagged
// bites — as SVG files you can open in a browser.
//
//   $ ./visualize_leaves --out_dir /tmp
//   -> /tmp/leaves_rtree.svg   (Fig. 10: MBRs with empty corners)
//      /tmp/leaves_amap.svg    (Fig. 11: two-rectangle MAP BPs)
//      /tmp/leaves_jb.svg      (Fig. 12: MBRs with corner bites)
//      /tmp/leaves_sstree.svg  (bounding spheres, for contrast)

#include <cstdio>

#include "amdb/visualize.h"
#include "blobworld/dataset.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  std::string* out_dir = flags.AddString("out_dir", ".", "output directory");
  int64_t* blobs = flags.AddInt64("blobs", 4000, "blobs to index");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  // 2-D data, because 5-D data cannot be visualized (the paper makes the
  // same concession for its Figure 10).
  bw::blobworld::DatasetParams params;
  params.num_images = static_cast<size_t>(*blobs) / 5 + 1;
  params.within_cluster_sigma = 0.8;
  params.seed = 21;
  const auto dataset = bw::blobworld::GenerateDatasetDirect(params);
  bw::linalg::SvdReducer reducer;
  BW_CHECK_OK(reducer.Fit(dataset.Histograms(), 2));
  const auto vectors = reducer.ProjectAll(dataset.Histograms(), 2);
  std::printf("indexing %zu blobs in 2-D\n", vectors.size());

  for (const char* am : {"rtree", "amap", "jb", "sstree"}) {
    bw::core::IndexBuildOptions options;
    options.am = am;
    options.page_bytes = 1024;  // small pages -> many visible leaves.
    auto index = bw::core::BuildIndex(vectors, options);
    BW_CHECK_MSG(index.ok(), index.status().ToString());

    bw::amdb::VisualizeOptions viz;
    viz.max_leaves = 40;
    const std::string path =
        *out_dir + "/leaves_" + am + ".svg";
    bw::Status written =
        bw::amdb::WriteLeavesSvg((*index)->tree(), path, viz);
    BW_CHECK_MSG(written.ok(), written.ToString());
    std::printf("wrote %s (height %d, %llu leaves total)\n", path.c_str(),
                (*index)->tree().height(),
                (unsigned long long)(*index)->tree().Shape().LeafNodes());
  }
  return 0;
}
