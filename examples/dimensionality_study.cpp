// Dimensionality study (the Section 3 methodology in miniature): how
// many SVD components does a blob color histogram really need? Prints
// the singular-value spectrum and the recall of reduced-vector search
// against full-vector search, for a freshly generated collection.
//
//   $ ./dimensionality_study [--blobs N]

#include <algorithm>
#include <cstdio>

#include "blobworld/dataset.h"
#include "blobworld/pipeline.h"
#include "blobworld/ranker.h"
#include "linalg/reducer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* blobs = flags.AddInt64("blobs", 8000, "blobs to generate");
  int64_t* queries = flags.AddInt64("queries", 50, "queries to average");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  bw::blobworld::DatasetParams params;
  params.num_images = static_cast<size_t>(*blobs) / 5 + 1;
  params.seed = 3;
  const auto dataset = bw::blobworld::GenerateDatasetDirect(params);
  std::printf("collection: %zu blobs, %zu images\n", dataset.num_blobs(),
              dataset.num_images());

  bw::linalg::SvdReducer reducer;
  BW_CHECK_OK(reducer.Fit(dataset.Histograms(), 20));

  std::printf("\nsingular-value spectrum (top 20):\n  ");
  const auto& sv = reducer.singular_values();
  for (size_t i = 0; i < sv.size(); ++i) {
    std::printf("%.1f%s", sv[i], i + 1 == sv.size() ? "\n" : " ");
  }
  std::printf("cumulative explained variance:\n");
  for (size_t d : {1, 2, 3, 4, 5, 6, 8, 10, 20}) {
    std::printf("  %2zu components: %5.1f%%\n", d,
                100.0 * reducer.ExplainedVarianceRatio(d));
  }

  // Recall of reduced top-40 blob sets vs the full ranking.
  auto ranker = bw::blobworld::FullRanker::Create(&dataset);
  BW_CHECK_MSG(ranker.ok(), ranker.status().ToString());
  const auto foci = bw::blobworld::SampleQueryBlobs(
      dataset, static_cast<size_t>(*queries), 17);
  const auto full20 = reducer.ProjectAll(dataset.Histograms(), 20);

  std::printf("\nrecall of 200 reduced-space candidates vs full top-40:\n");
  for (size_t d : {1, 2, 3, 5, 8, 20}) {
    double recall_sum = 0.0;
    for (uint32_t focus : foci) {
      const auto truth = ranker->RankAllImages(focus, 40);
      // Exact 200-NN in d-D space, mapped to images.
      std::vector<std::pair<double, uint32_t>> scored;
      scored.reserve(full20.size());
      const bw::geom::Vec q = full20[focus].Truncated(d);
      for (uint32_t b = 0; b < full20.size(); ++b) {
        scored.emplace_back(q.DistanceSquaredTo(full20[b].Truncated(d)), b);
      }
      std::sort(scored.begin(), scored.end());
      std::vector<bw::blobworld::ImageId> images;
      std::vector<bool> seen(dataset.num_images() + 1, false);
      for (const auto& [dist, b] : scored) {
        (void)dist;
        const auto image = dataset.blob(b).image;
        if (!seen[image]) {
          seen[image] = true;
          images.push_back(image);
          if (images.size() == 200) break;
        }
      }
      recall_sum += bw::blobworld::RecallAgainst(truth, images);
    }
    std::printf("  %2zu-D: %.2f\n", d, recall_sum / double(foci.size()));
  }
  std::printf("\nthe curve should flatten around 5 components — the basis\n"
              "for the paper's choice of 5-D index vectors.\n");
  return 0;
}
