// net_smoke: the CI driver for a live bwserver. One binary, four acts:
//
//   1. pipelined k-NN queries awaited out of order (the wire's whole
//      point: one connection, many requests in flight);
//   2. one insert + readback + delete over the wire (ack ⇒ durable,
//      so this needs a --durable server);
//   3. a rude client: submit big streams, read a few bytes, slam the
//      connection shut mid-stream;
//   4. prove the server shrugged it off: fresh connection, health
//      check, one more query.
//
// Exits 0 only if every act passes. CI runs it against bwserver, then
// SIGTERMs the server and checks the drain completes with exit 0.
//
//   net_smoke --connect 127.0.0.1:4821 [--mutate] [--dim 5]

#include <cstdio>
#include <cstdlib>

#include <random>
#include <string>
#include <vector>

#include <sys/socket.h>

#include "net/client.h"
#include "util/flags.h"

namespace {

bw::geom::Vec RandomQuery(std::mt19937& rng, size_t dim) {
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  std::vector<float> coords(dim);
  for (float& c : coords) c = unit(rng);
  return bw::geom::Vec(std::move(coords));
}

std::unique_ptr<bw::net::Client> MustConnect(const std::string& host,
                                             uint16_t port) {
  auto client = bw::net::Client::Connect(host, port);
  BW_CHECK_MSG(client.ok(), client.status().ToString());
  return std::move(*client);
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  std::string* connect =
      flags.AddString("connect", "127.0.0.1:4821", "host:port of bwserver");
  int64_t* dim = flags.AddInt64("dim", 5, "query dimensionality");
  int64_t* queries = flags.AddInt64("queries", 32, "pipelined query count");
  int64_t* window = flags.AddInt64("window", 8, "pipeline window");
  bool* mutate = flags.AddBool(
      "mutate", false, "exercise insert/delete (needs a --durable server)");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  const size_t colon = connect->rfind(':');
  BW_CHECK_MSG(colon != std::string::npos, "--connect wants host:port");
  const std::string host = connect->substr(0, colon);
  const int port = std::atoi(connect->c_str() + colon + 1);
  BW_CHECK_MSG(port > 0 && port < 65536, "--connect wants a valid port");

  std::mt19937 rng(42);

  // --- Act 1: pipelined queries, awaited newest-first ---------------------
  {
    auto client = MustConnect(host, static_cast<uint16_t>(port));
    size_t completed = 0;
    std::vector<uint64_t> inflight;
    for (int64_t q = 0; q < *queries; ++q) {
      auto id = client->SubmitKnn(RandomQuery(rng, *dim), 10);
      BW_CHECK_MSG(id.ok(), id.status().ToString());
      inflight.push_back(*id);
      if (inflight.size() < static_cast<size_t>(*window) &&
          q + 1 < *queries) {
        continue;
      }
      while (!inflight.empty()) {  // newest first: exercises frame parking
        auto reply = client->AwaitQuery(inflight.back());
        inflight.pop_back();
        BW_CHECK_MSG(reply.ok(), reply.status().ToString());
        BW_CHECK_MSG(reply->ok(), reply->status.ToString());
        BW_CHECK_MSG(reply->neighbors.size() == 10, "short k-NN result");
        ++completed;
      }
    }
    std::printf("act 1: %zu pipelined queries ok (window %lld)\n", completed,
                (long long)*window);
  }

  // --- Act 2: one mutation, durable round trip ----------------------------
  if (*mutate) {
    auto client = MustConnect(host, static_cast<uint16_t>(port));
    const bw::geom::Vec point = RandomQuery(rng, *dim);
    constexpr uint64_t kRid = 990001;
    auto ack = client->Insert(point, kRid);
    BW_CHECK_MSG(ack.ok(), ack.status().ToString());
    BW_CHECK_MSG(ack->ok(), ack->status.ToString());
    BW_CHECK_MSG(ack->tag > 0, "insert ack carries no commit tag");
    auto read = client->Knn(point, 1);
    BW_CHECK_MSG(read.ok(), read.status().ToString());
    BW_CHECK_MSG(read->ok() && read->neighbors.size() == 1 &&
                     read->neighbors[0].rid == kRid,
                 "inserted rid not the nearest neighbor of its own point");
    auto gone = client->Remove(point, kRid);
    BW_CHECK_MSG(gone.ok(), gone.status().ToString());
    BW_CHECK_MSG(gone->ok(), gone->status.ToString());
    std::printf("act 2: insert/readback/delete ok (commit tag %llu)\n",
                (unsigned long long)ack->tag);
  }

  // --- Act 3: die mid-stream ----------------------------------------------
  {
    auto client = MustConnect(host, static_cast<uint16_t>(port));
    for (int q = 0; q < 4; ++q) {
      auto id = client->SubmitKnn(RandomQuery(rng, *dim), 2000);
      BW_CHECK_MSG(id.ok(), id.status().ToString());
    }
    char sip[128];
    (void)recv(client->fd(), sip, sizeof(sip), 0);
    // Destructor closes the socket with four streams still in flight.
    std::printf("act 3: closed mid-stream after sipping a few bytes\n");
  }

  // --- Act 4: the server is unbothered ------------------------------------
  {
    auto client = MustConnect(host, static_cast<uint16_t>(port));
    auto health = client->Health();
    BW_CHECK_MSG(health.ok(), health.status().ToString());
    auto reply = client->Knn(RandomQuery(rng, *dim), 5);
    BW_CHECK_MSG(reply.ok(), reply.status().ToString());
    BW_CHECK_MSG(reply->ok(), reply->status.ToString());
    std::printf("act 4: server healthy after the rude client (uptime %.1fs)\n",
                health->uptime_seconds);
  }

  std::printf("net_smoke: all acts passed\n");
  return 0;
}
