// bwchaos: bw::net::ChaosProxy as a standalone binary, for parking a
// deterministic fault injector between any wire-protocol client and
// server from a shell script (the CI chaos-net stage does exactly
// this). No root, tc, or iptables needed:
//
//   bwserver --port 4830 ... &
//   bwchaos --listen_port 4840 --target 127.0.0.1:4830 \
//           --seed 42 --delay_prob 0.2 --delay_ms 10 \
//           --drop_frame_prob 0.02 --blackhole_prob 0.01 &
//   net_smoke --port 4840        # every byte now crosses the chaos
//
// The fault schedule is a pure function of --seed and the connection
// order, so a failing run replays bit-identically. Counters print at
// shutdown (SIGINT/SIGTERM).

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "net/chaos_proxy.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* listen_port =
      flags.AddInt64("listen_port", 4840, "proxy port (0 = ephemeral)");
  std::string* target = flags.AddString(
      "target", "127.0.0.1:4830", "host:port the proxy relays to");
  int64_t* seed =
      flags.AddInt64("seed", 0, "fault-schedule seed (deterministic)");
  double* delay_prob = flags.AddDouble(
      "delay_prob", 0.0, "per-read probability of added latency");
  int64_t* delay_ms =
      flags.AddInt64("delay_ms", 20, "latency added per delayed read");
  double* drop_frame_prob = flags.AddDouble(
      "drop_frame_prob", 0.0,
      "per-read probability of truncate-then-close (a cut frame)");
  double* reset_prob = flags.AddDouble(
      "reset_prob", 0.0, "per-connection probability of reset at accept");
  double* blackhole_prob = flags.AddDouble(
      "blackhole_prob", 0.0,
      "per-read probability a direction goes silent (one-way partition)");
  int64_t* max_connections =
      flags.AddInt64("max_connections", 256, "accept cap");
  int64_t* brownout_start_ms = flags.AddInt64(
      "brownout_start_ms", 0,
      "brownout window start, relative to proxy start");
  int64_t* brownout_duration_ms = flags.AddInt64(
      "brownout_duration_ms", 0,
      "brownout window length (0 = no brownout)");
  int64_t* brownout_delay_ms = flags.AddInt64(
      "brownout_delay_ms", 200,
      "base latency spike per browned-out read (+ up to 25% seeded jitter)");
  int64_t* brownout_trickle_bytes = flags.AddInt64(
      "brownout_trickle_bytes", 0,
      "trickle browned-out reads in chunks of this size (0 = one spike)");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  const size_t colon = target->rfind(':');
  const int target_port =
      colon == std::string::npos ? 0 : std::atoi(target->c_str() + colon + 1);
  if (colon == std::string::npos || target_port <= 0 || target_port >= 65536) {
    std::fprintf(stderr, "bwchaos: --target wants host:port, got '%s'\n",
                 target->c_str());
    return 2;
  }

  bw::net::ChaosOptions options;
  options.seed = static_cast<uint64_t>(*seed);
  options.delay_prob = *delay_prob;
  options.delay_ms = static_cast<uint32_t>(*delay_ms);
  options.drop_frame_prob = *drop_frame_prob;
  options.reset_prob = *reset_prob;
  options.blackhole_prob = *blackhole_prob;
  options.max_connections = static_cast<size_t>(*max_connections);
  options.brownout_start_ms = static_cast<uint64_t>(*brownout_start_ms);
  options.brownout_duration_ms = static_cast<uint64_t>(*brownout_duration_ms);
  options.brownout_delay_ms = static_cast<uint32_t>(*brownout_delay_ms);
  options.brownout_trickle_bytes =
      static_cast<size_t>(*brownout_trickle_bytes);

  bw::net::ChaosProxy proxy;
  bw::Status started =
      proxy.Start(static_cast<uint16_t>(*listen_port), target->substr(0, colon),
                  static_cast<uint16_t>(target_port), options);
  if (!started.ok()) {
    std::fprintf(stderr, "bwchaos: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("bwchaos relaying 127.0.0.1:%u -> %s "
              "(seed %llu, delay %.3f/%ums, drop %.3f, reset %.3f, "
              "blackhole %.3f)\n",
              proxy.port(), target->c_str(), (unsigned long long)*seed,
              *delay_prob, (unsigned)*delay_ms, *drop_frame_prob, *reset_prob,
              *blackhole_prob);
  if (*brownout_duration_ms > 0) {
    std::printf("bwchaos brownout: [%lld, %lld) ms, +%lldms per read, "
                "trickle %lld bytes\n",
                (long long)*brownout_start_ms,
                (long long)(*brownout_start_ms + *brownout_duration_ms),
                (long long)*brownout_delay_ms,
                (long long)*brownout_trickle_bytes);
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  proxy.Stop();
  const bw::net::ChaosStats s = proxy.stats();
  std::printf("bwchaos: %llu connections, %llu resets, %llu delays, "
              "%llu truncations, %llu blackholes, %llu brownout reads, "
              "%llu bytes relayed\n",
              (unsigned long long)s.connections, (unsigned long long)s.resets,
              (unsigned long long)s.delays, (unsigned long long)s.truncations,
              (unsigned long long)s.blackholes,
              (unsigned long long)s.brownout_reads,
              (unsigned long long)s.bytes_relayed);
  return 0;
}
