// bwserver: the Blobworld network front end as a standalone binary.
// Builds (or loads) an index, wraps it in a QueryService, and serves
// the wire protocol (src/net/wire.h) over TCP until SIGTERM/SIGINT,
// then drains in-flight streams and exits cleanly — the deployment
// shape every downstream scaling direction (sharding, replicas)
// assumes.
//
//   bwserver --port 4821 --blobs 8000 --am xjb --workers 4
//   bwserver --port 4821 --index idx.bwix
//   bwserver --port 4821 --durable /tmp/bw --blobs 8000   # writable
//
// With --durable PREFIX the index is built durably at PREFIX.bwpf /
// PREFIX.bwwal and online insert/delete requests are honored; without
// it the service is read-only and mutations answer InvalidArgument.
//
// With --shards N --shard_index I the server builds and serves only its
// STR slice of the synthetic corpus, preserving *global* RIDs — the
// shard-fleet member behind bwrouter. Every shard server (and the
// router) must be started with identical --blobs/--dim/--seed so the
// deterministic partition agrees across the fleet. Requires --durable.

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "blobworld/dataset.h"
#include "core/durable_index.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/partitioner.h"
#include "storage/store.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bw::Result<std::vector<bw::geom::Vec>> SyntheticVectors(size_t blobs,
                                                        size_t dim,
                                                        uint64_t seed) {
  bw::blobworld::DatasetParams params;
  params.num_images = blobs;
  params.seed = seed;
  const bw::blobworld::BlobDataset dataset =
      bw::blobworld::GenerateDatasetDirect(params);
  bw::linalg::SvdReducer reducer;
  BW_RETURN_IF_ERROR(reducer.Fit(dataset.Histograms(), dim));
  return reducer.ProjectAll(dataset.Histograms(), dim);
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* port = flags.AddInt64("port", 4821, "TCP port (0 = ephemeral)");
  std::string* bind = flags.AddString("bind", "127.0.0.1", "bind address");
  std::string* index_path =
      flags.AddString("index", "", "serve this saved index ('' = synthetic)");
  std::string* durable = flags.AddString(
      "durable", "",
      "build a durable, writable index at PREFIX.bwpf/.bwwal ('' = "
      "read-only in-memory index)");
  int64_t* blobs =
      flags.AddInt64("blobs", 8000, "synthetic collection size");
  std::string* am = flags.AddString("am", "xjb", "access method");
  int64_t* dim = flags.AddInt64("dim", 5, "reduced dimensionality");
  int64_t* seed = flags.AddInt64("seed", 7, "synthetic dataset seed");
  int64_t* workers = flags.AddInt64("workers", 4, "query worker threads");
  int64_t* queue_depth =
      flags.AddInt64("queue_depth", 128, "service admission queue");
  int64_t* io_threads = flags.AddInt64("io_threads", 1, "epoll loops");
  int64_t* dispatch_threads =
      flags.AddInt64("dispatch_threads", 4, "request dispatch threads");
  int64_t* max_inflight = flags.AddInt64(
      "max_inflight", 32, "per-connection in-flight request quota");
  double* max_results_per_sec = flags.AddDouble(
      "max_results_per_sec", 0, "per-connection results/sec quota (0 = off)");
  int64_t* idle_timeout_ms =
      flags.AddInt64("idle_timeout_ms", 30000, "idle connection reap");
  int64_t* fault_budget = flags.AddInt64(
      "fault_budget", 0, "per-query degraded-read budget (0 = fail closed)");
  int64_t* shards = flags.AddInt64(
      "shards", 0, "serve one STR shard of the corpus (0 = whole corpus)");
  int64_t* shard_index =
      flags.AddInt64("shard_index", 0, "which shard this server is");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  // --- Index -------------------------------------------------------------
  std::unique_ptr<bw::core::BuiltIndex> built;
  std::unique_ptr<bw::core::DurableIndex> durable_index;
  if (!index_path->empty()) {
    auto loaded = bw::core::LoadIndex(*index_path);
    BW_CHECK_MSG(loaded.ok(), loaded.status().ToString());
    built = std::move(*loaded);
    std::printf("loaded %s: %llu entries, height %d\n", index_path->c_str(),
                (unsigned long long)built->tree().size(),
                built->tree().height());
  } else {
    auto vectors = SyntheticVectors(static_cast<size_t>(*blobs),
                                    static_cast<size_t>(*dim),
                                    static_cast<uint64_t>(*seed));
    BW_CHECK_MSG(vectors.ok(), vectors.status().ToString());
    bw::core::IndexBuildOptions build;
    build.am = *am;
    build.xjb_x = 0;
    if (*shards > 0) {
      // Shard-fleet member: build this server's STR slice with global
      // RIDs so router answers merge bit-for-bit with an unsharded
      // index over the same corpus.
      BW_CHECK_MSG(!durable->empty(), "--shards requires --durable PREFIX");
      BW_CHECK_MSG(*shard_index >= 0 && *shard_index < *shards,
                   "--shard_index out of range");
      const bw::shard::Partition partition = bw::shard::PartitionByStr(
          *vectors, static_cast<size_t>(*shards));
      const size_t s = static_cast<size_t>(*shard_index);
      bw::storage::StoreOptions store_options;
      store_options.wal_segment_bytes = 8ull << 20;
      auto index = bw::shard::BuildShardIndex(
          partition.points[s], partition.rids[s], build, *durable + ".bwpf",
          *durable + ".bwwal", store_options);
      BW_CHECK_MSG(index.ok(), index.status().ToString());
      durable_index = std::move(*index);
      std::printf("built %s shard %lld/%lld: %zu of %lld blobs (durable)\n",
                  am->c_str(), (long long)*shard_index, (long long)*shards,
                  partition.points[s].size(), (long long)*blobs);
    } else if (durable->empty()) {
      auto index = bw::core::BuildIndex(*vectors, build);
      BW_CHECK_MSG(index.ok(), index.status().ToString());
      built = std::move(*index);
    } else {
      bw::storage::StoreOptions store_options;
      store_options.wal_segment_bytes = 8ull << 20;
      auto index = bw::core::BuildDurableIndex(
          *vectors, build, *durable + ".bwpf", *durable + ".bwwal",
          store_options);
      BW_CHECK_MSG(index.ok(), index.status().ToString());
      durable_index = std::move(*index);
    }
    if (*shards == 0) {
      std::printf("built %s over %lld synthetic blobs%s\n", am->c_str(),
                  (long long)*blobs,
                  durable->empty() ? "" : " (durable, writable)");
    }
  }

  // --- Service -----------------------------------------------------------
  bw::service::ServiceOptions service_options;
  service_options.num_workers = static_cast<size_t>(*workers);
  service_options.queue_capacity = static_cast<size_t>(*queue_depth);
  service_options.fault_budget = static_cast<size_t>(*fault_budget);
  if (durable_index) service_options.write.enabled = true;
  auto service =
      durable_index
          ? std::make_unique<bw::service::QueryService>(
                std::move(durable_index), service_options)
          : std::make_unique<bw::service::QueryService>(std::move(built),
                                                        service_options);

  // --- Server ------------------------------------------------------------
  bw::net::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(*port);
  server_options.bind_address = *bind;
  server_options.io_threads = static_cast<size_t>(*io_threads);
  server_options.dispatch_threads = static_cast<size_t>(*dispatch_threads);
  server_options.quota.max_inflight = static_cast<size_t>(*max_inflight);
  server_options.quota.max_results_per_sec = *max_results_per_sec;
  server_options.idle_timeout =
      std::chrono::milliseconds(*idle_timeout_ms);
  bw::net::Server server(service.get(), server_options);
  bw::Status started = server.Start();
  BW_CHECK_MSG(started.ok(), started.ToString());
  std::printf("bwserver listening on %s:%u (%zu workers, %lld dispatch)\n",
              bind->c_str(), server.port(),
              service->num_workers(), (long long)*dispatch_threads);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  server.Shutdown();
  const bw::net::NetStats net = server.stats();
  const bw::service::ServiceSnapshot snap = service->Snapshot();
  std::printf("served %llu requests (%llu responses) over %llu connections; "
              "shed %llu quota / %llu dispatch / %llu shutdown; "
              "%llu queries completed, p99 %llu us\n",
              (unsigned long long)net.requests,
              (unsigned long long)net.responses,
              (unsigned long long)net.accepted,
              (unsigned long long)net.shed_quota,
              (unsigned long long)net.shed_dispatch,
              (unsigned long long)net.shed_shutdown,
              (unsigned long long)snap.completed,
              (unsigned long long)snap.p99_latency_us);
  return 0;
}
