// Concurrent serving demo: many simulated users streaming "more results
// until I stop scrolling" queries against one shared index — the
// Blobworld front-end scenario the paper's NN cursor exists for.
//
// Three modes:
//
//   $ ./serve_demo                      # in-process: users call the
//                                       # QueryService directly
//   $ ./serve_demo --port 4821          # run the real network server
//                                       # until SIGINT/SIGTERM
//   $ ./serve_demo --connect 127.0.0.1:4821
//                                       # drive a live server with the
//                                       # same user mix over net::Client
//
// The in-process and --connect modes run the identical three request
// shapes (exact k-NN, radius-budgeted streams, deadline-capped streams),
// so diffing their output shows exactly what the wire adds: distinct
// shed codes, per-connection quotas, and streamed result batches.

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <thread>
#include <vector>

#include "blobworld/dataset.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

std::vector<bw::geom::Vec> BuildVectors() {
  bw::blobworld::DatasetParams params;
  params.num_images = 1000;
  params.seed = 7;
  const bw::blobworld::BlobDataset dataset =
      bw::blobworld::GenerateDatasetDirect(params);
  bw::linalg::SvdReducer reducer;
  BW_CHECK_OK(reducer.Fit(dataset.Histograms(), 5));
  return reducer.ProjectAll(dataset.Histograms(), 5);
}

std::unique_ptr<bw::core::BuiltIndex> BuildDemoIndex(
    const std::vector<bw::geom::Vec>& vectors) {
  bw::core::IndexBuildOptions build;
  build.am = "xjb";
  build.xjb_x = 0;
  auto index = bw::core::BuildIndex(vectors, build);
  BW_CHECK_MSG(index.ok(), index.status().ToString());
  std::printf("index: %s over %zu blobs, height %d\n", build.am.c_str(),
              vectors.size(), (*index)->tree().height());
  return std::move(*index);
}

// The original in-process flow: eight users calling the service
// directly, no network between them and the worker pool.
int RunInProcess() {
  const std::vector<bw::geom::Vec> vectors = BuildVectors();
  auto index = BuildDemoIndex(vectors);

  bw::service::ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 32;
  options.worker_pool_pages = 64;
  bw::service::QueryService service(std::move(index), options);

  std::vector<std::thread> users;
  for (size_t u = 0; u < 8; ++u) {
    users.emplace_back([&service, &vectors, u] {
      const bw::geom::Vec& focus = vectors[(u * 131) % vectors.size()];
      if (u % 3 == 0) {
        auto response = service.Knn(focus, 20);
        BW_CHECK_MSG(response.ok(), response.status().ToString());
        std::printf("user %zu: top-20 in %.0f us (%llu leaf I/Os)\n", u,
                    response->metrics.latency_us,
                    (unsigned long long)response->metrics.leaf_accesses);
      } else if (u % 3 == 1) {
        bw::service::StreamOptions stream;
        stream.budget_radius = 0.05;
        auto future = service.SubmitStream(focus, stream);
        BW_CHECK_MSG(future.ok(), future.status().ToString());
        auto response = future->get();
        BW_CHECK_MSG(response.ok(), response.status().ToString());
        std::printf("user %zu: %zu blobs within r=%.2f in %.0f us\n", u,
                    response->neighbors.size(), stream.budget_radius,
                    response->metrics.latency_us);
      } else {
        bw::service::StreamOptions stream;
        stream.max_results = 50;
        stream.deadline_us = 200;
        auto future = service.SubmitStream(focus, stream);
        BW_CHECK_MSG(future.ok(), future.status().ToString());
        auto response = future->get();
        BW_CHECK_MSG(response.ok(), response.status().ToString());
        std::printf("user %zu: %zu results before the %.0f us deadline%s\n",
                    u, response->neighbors.size(), stream.deadline_us,
                    response->metrics.truncated ? " (truncated)" : "");
      }
    });
  }
  for (auto& t : users) t.join();

  const bw::service::ServiceSnapshot snap = service.Snapshot();
  std::printf(
      "\nservice: %llu completed (%llu rejected), p50 %llu us, p95 %llu us, "
      "p99 %llu us, pool hit rate %.0f%%\n",
      (unsigned long long)snap.completed, (unsigned long long)snap.rejected,
      (unsigned long long)snap.p50_latency_us,
      (unsigned long long)snap.p95_latency_us,
      (unsigned long long)snap.p99_latency_us,
      snap.pool_hits + snap.pool_misses > 0
          ? 100.0 * static_cast<double>(snap.pool_hits) /
                static_cast<double>(snap.pool_hits + snap.pool_misses)
          : 0.0);
  return 0;
}

// --port: the same index and service, fronted by the real epoll server.
int RunServer(uint16_t port) {
  const std::vector<bw::geom::Vec> vectors = BuildVectors();
  auto index = BuildDemoIndex(vectors);

  bw::service::ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 32;
  options.worker_pool_pages = 64;
  bw::service::QueryService service(std::move(index), options);

  bw::net::ServerOptions server_options;
  server_options.port = port;
  bw::net::Server server(&service, server_options);
  BW_CHECK_OK(server.Start());
  std::printf("serve_demo listening on 127.0.0.1:%u — drive it with\n"
              "  ./serve_demo --connect 127.0.0.1:%u\n",
              server.port(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Shutdown();
  const bw::net::NetStats net = server.stats();
  std::printf("served %llu requests over %llu connections\n",
              (unsigned long long)net.requests,
              (unsigned long long)net.accepted);
  return 0;
}

// --connect: the eight-user mix, but every request crosses the wire.
// One Client per user — the client is deliberately not thread-safe;
// concurrency comes from connections, like real front-end processes.
int RunClients(const std::string& host, uint16_t port) {
  const std::vector<bw::geom::Vec> vectors = BuildVectors();

  std::vector<std::thread> users;
  for (size_t u = 0; u < 8; ++u) {
    users.emplace_back([&vectors, &host, port, u] {
      auto client = bw::net::Client::Connect(host, port);
      BW_CHECK_MSG(client.ok(), client.status().ToString());
      const bw::geom::Vec& focus = vectors[(u * 131) % vectors.size()];
      if (u % 3 == 0) {
        auto reply = (*client)->Knn(focus, 20);
        BW_CHECK_MSG(reply.ok(), reply.status().ToString());
        BW_CHECK_MSG(reply->ok(), reply->status.ToString());
        std::printf("user %zu: top-20 over the wire in %.0f us server-side\n",
                    u, reply->server_latency_us);
      } else if (u % 3 == 1) {
        auto reply = (*client)->Range(focus, 0.05);
        BW_CHECK_MSG(reply.ok(), reply.status().ToString());
        BW_CHECK_MSG(reply->ok(), reply->status.ToString());
        std::printf("user %zu: %zu blobs within r=0.05 over the wire\n", u,
                    reply->neighbors.size());
      } else {
        bw::net::QueryLimits limits;
        limits.deadline_us = 200;
        auto reply = (*client)->Knn(focus, 50, limits);
        BW_CHECK_MSG(reply.ok(), reply.status().ToString());
        BW_CHECK_MSG(reply->ok(), reply->status.ToString());
        std::printf("user %zu: %zu results before the 200 us deadline%s\n",
                    u, reply->neighbors.size(),
                    reply->truncated ? " (truncated)" : "");
      }
    });
  }
  for (auto& t : users) t.join();

  // Service-wide view, over the wire this time.
  auto client = bw::net::Client::Connect(host, port);
  BW_CHECK_MSG(client.ok(), client.status().ToString());
  auto health = (*client)->Health();
  BW_CHECK_MSG(health.ok(), health.status().ToString());
  std::printf("\nserver health: write_state=%u generation=%llu "
              "pages_quarantined=%llu uptime=%.1fs\n",
              health->write_state, (unsigned long long)health->generation,
              (unsigned long long)health->pages_quarantined,
              health->uptime_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* port = flags.AddInt64("port", 0, "serve on this port until ^C");
  std::string* connect = flags.AddString(
      "connect", "", "host:port of a live server to drive over the wire");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  if (!connect->empty()) {
    const size_t colon = connect->rfind(':');
    BW_CHECK_MSG(colon != std::string::npos, "--connect wants host:port");
    const std::string host = connect->substr(0, colon);
    const int p = std::atoi(connect->c_str() + colon + 1);
    BW_CHECK_MSG(p > 0 && p < 65536, "--connect wants a valid port");
    return RunClients(host, static_cast<uint16_t>(p));
  }
  if (*port > 0) return RunServer(static_cast<uint16_t>(*port));
  return RunInProcess();
}
