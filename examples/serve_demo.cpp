// Concurrent serving demo: many simulated users streaming "more results
// until I stop scrolling" queries against one shared index — the
// Blobworld front-end scenario the paper's NN cursor exists for, run
// through the bw::service::QueryService thread pool.
//
//   $ ./serve_demo
//
// Builds a small synthetic collection, starts a 4-worker service with a
// bounded admission queue, then mixes three request shapes concurrently:
// exact k-NN, radius-budgeted streams, and deadline-capped streams.

#include <cstdio>
#include <thread>
#include <vector>

#include "blobworld/dataset.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"
#include "service/query_service.h"

int main() {
  // 1. Data + index, exactly as in quickstart.
  bw::blobworld::DatasetParams params;
  params.num_images = 1000;
  params.seed = 7;
  const bw::blobworld::BlobDataset dataset =
      bw::blobworld::GenerateDatasetDirect(params);
  bw::linalg::SvdReducer reducer;
  BW_CHECK_OK(reducer.Fit(dataset.Histograms(), 5));
  const std::vector<bw::geom::Vec> vectors =
      reducer.ProjectAll(dataset.Histograms(), 5);

  bw::core::IndexBuildOptions build;
  build.am = "xjb";
  build.xjb_x = 0;
  auto index = bw::core::BuildIndex(vectors, build);
  BW_CHECK_MSG(index.ok(), index.status().ToString());
  std::printf("index: %s over %zu blobs, height %d\n", build.am.c_str(),
              vectors.size(), (*index)->tree().height());

  // 2. Start the service: 4 workers, each with a private 64-page LRU
  //    pool; a 32-deep admission queue rejects overload with a Status.
  bw::service::ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 32;
  options.worker_pool_pages = 64;
  bw::service::QueryService service(std::move(*index), options);

  // 3. Eight concurrent "users", mixing request shapes.
  std::vector<std::thread> users;
  for (size_t u = 0; u < 8; ++u) {
    users.emplace_back([&service, &vectors, u] {
      const bw::geom::Vec& focus = vectors[(u * 131) % vectors.size()];
      if (u % 3 == 0) {
        // Exact top-20.
        auto response = service.Knn(focus, 20);
        BW_CHECK_MSG(response.ok(), response.status().ToString());
        std::printf("user %zu: top-20 in %.0f us (%llu leaf I/Os)\n", u,
                    response->metrics.latency_us,
                    (unsigned long long)response->metrics.leaf_accesses);
      } else if (u % 3 == 1) {
        // Stream everything within a distance budget: the cursor stops
        // the moment its frontier proves nothing closer remains.
        bw::service::StreamOptions stream;
        stream.budget_radius = 0.05;
        auto future = service.SubmitStream(focus, stream);
        BW_CHECK_MSG(future.ok(), future.status().ToString());
        auto response = future->get();
        BW_CHECK_MSG(response.ok(), response.status().ToString());
        std::printf("user %zu: %zu blobs within r=%.2f in %.0f us\n", u,
                    response->neighbors.size(), stream.budget_radius,
                    response->metrics.latency_us);
      } else {
        // Scroll with a deadline: whatever arrives in 200 us, nearest
        // first; metrics.truncated says whether the deadline cut it off.
        bw::service::StreamOptions stream;
        stream.max_results = 50;
        stream.deadline_us = 200;
        auto future = service.SubmitStream(focus, stream);
        BW_CHECK_MSG(future.ok(), future.status().ToString());
        auto response = future->get();
        BW_CHECK_MSG(response.ok(), response.status().ToString());
        std::printf("user %zu: %zu results before the %.0f us deadline%s\n",
                    u, response->neighbors.size(), stream.deadline_us,
                    response->metrics.truncated ? " (truncated)" : "");
      }
    });
  }
  for (auto& t : users) t.join();

  // 4. Service-wide view.
  const bw::service::ServiceSnapshot snap = service.Snapshot();
  std::printf(
      "\nservice: %llu completed (%llu rejected), p50 %llu us, p95 %llu us, "
      "p99 %llu us, pool hit rate %.0f%%\n",
      (unsigned long long)snap.completed, (unsigned long long)snap.rejected,
      (unsigned long long)snap.p50_latency_us,
      (unsigned long long)snap.p95_latency_us,
      (unsigned long long)snap.p99_latency_us,
      snap.pool_hits + snap.pool_misses > 0
          ? 100.0 * static_cast<double>(snap.pool_hits) /
                static_cast<double>(snap.pool_hits + snap.pool_misses)
          : 0.0);
  return 0;
}
