// Quickstart: build a customized Blobworld access method over synthetic
// blob features and run a nearest-neighbor query.
//
//   $ ./quickstart
//
// Walks the core public API end to end: dataset generation, SVD
// reduction, index construction (XJB — the AM the paper recommends for
// the production system), and k-NN search with I/O accounting.

#include <cstdio>

#include "blobworld/dataset.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"

int main() {
  // 1. A small synthetic image collection (~5000 blobs).
  bw::blobworld::DatasetParams params;
  params.num_images = 1000;
  params.seed = 7;
  const bw::blobworld::BlobDataset dataset =
      bw::blobworld::GenerateDatasetDirect(params);
  std::printf("dataset: %zu blobs from %zu images (218-D histograms)\n",
              dataset.num_blobs(), dataset.num_images());

  // 2. Reduce the 218-D color histograms to 5-D via SVD (Section 3 of
  //    the paper: 5 dimensions are enough).
  bw::linalg::SvdReducer reducer;
  BW_CHECK_OK(reducer.Fit(dataset.Histograms(), 5));
  const std::vector<bw::geom::Vec> vectors =
      reducer.ProjectAll(dataset.Histograms(), 5);
  std::printf("SVD: 5 components capture %.0f%% of variance\n",
              100.0 * reducer.ExplainedVarianceRatio(5));

  // 3. Build the access method. Options: rtree, sstree, srtree, amap,
  //    jb, xjb. xjb_x = 0 auto-selects the largest X that does not add
  //    a tree level (the paper's future-work item).
  bw::core::IndexBuildOptions options;
  options.am = "xjb";
  options.xjb_x = 0;
  auto index = bw::core::BuildIndex(vectors, options);
  BW_CHECK_MSG(index.ok(), index.status().ToString());
  const auto shape = (*index)->tree().Shape();
  std::printf("index: %s, height %d, %llu nodes (%llu leaves)\n",
              options.am.c_str(), shape.height,
              (unsigned long long)shape.TotalNodes(),
              (unsigned long long)shape.LeafNodes());

  // 4. Query: the 10 blobs most similar to blob #0.
  bw::gist::TraversalStats stats;
  auto neighbors = (*index)->Knn(vectors[0], 10, &stats);
  BW_CHECK_MSG(neighbors.ok(), neighbors.status().ToString());

  std::printf("\n10 nearest blobs to blob 0 (image %u):\n",
              dataset.blob(0).image);
  for (const auto& n : *neighbors) {
    std::printf("  blob %-6llu image %-5u distance %.4f\n",
                (unsigned long long)n.rid,
                dataset.blob(static_cast<size_t>(n.rid)).image, n.distance);
  }
  std::printf("\nquery cost: %llu leaf + %llu inner page accesses\n",
              (unsigned long long)stats.leaf_accesses,
              (unsigned long long)stats.internal_accesses);
  return 0;
}
